//! Error type for the ORM layer.

use std::fmt;
use synapse_db::DbError;
use synapse_model::ModelError;

/// Errors raised by ORM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrmError {
    /// The underlying engine failed.
    Db(DbError),
    /// The model layer rejected data.
    Model(ModelError),
    /// The record being saved/updated does not exist.
    RecordNotFound {
        /// Model name.
        model: String,
        /// Stringified id.
        id: String,
    },
    /// An application callback aborted the operation.
    CallbackAborted(String),
    /// A Synapse-level restriction was violated (read-only subscription,
    /// decorator rules, unpublished attribute, …).
    Restriction(String),
}

impl fmt::Display for OrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrmError::Db(e) => write!(f, "database error: {e}"),
            OrmError::Model(e) => write!(f, "model error: {e}"),
            OrmError::RecordNotFound { model, id } => {
                write!(f, "record not found: {model}#{id}")
            }
            OrmError::CallbackAborted(m) => write!(f, "callback aborted: {m}"),
            OrmError::Restriction(m) => write!(f, "restriction violated: {m}"),
        }
    }
}

impl std::error::Error for OrmError {}

impl From<DbError> for OrmError {
    fn from(e: DbError) -> Self {
        OrmError::Db(e)
    }
}

impl From<ModelError> for OrmError {
    fn from(e: ModelError) -> Self {
        OrmError::Model(e)
    }
}
