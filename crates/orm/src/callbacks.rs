//! Active-model callbacks.
//!
//! MVC frameworks let developers hook `before`/`after` callbacks on every
//! persistence operation (§2: "active models"). Synapse re-purposes them on
//! subscribers for application-specific processing of replicated updates
//! (§3.1) — e.g. a mailer's `after_create`, or an observer translating a
//! replicated `Friendship` row into graph edges (Example 2).

use crate::error::OrmError;
use crate::orm::Orm;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use synapse_model::Record;

/// When a callback fires relative to the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallbackPoint {
    /// Before the object is persisted.
    BeforeCreate,
    /// After the object is persisted.
    AfterCreate,
    /// Before an update is applied.
    BeforeUpdate,
    /// After an update is applied.
    AfterUpdate,
    /// Before an object is destroyed.
    BeforeDestroy,
    /// After an object is destroyed.
    AfterDestroy,
}

/// Context passed to callbacks.
pub struct CallbackCtx<'a> {
    /// The ORM the operation runs on, for further reads/writes (e.g. the
    /// Example 2 observer adds graph edges from its callback).
    pub orm: &'a Orm,
    /// `true` while the Synapse subscriber is bootstrapping (§4.4) — the
    /// paper's `Synapse.bootstrap?` predicate, used to suppress effects
    /// like welcome emails during catch-up (Fig. 2).
    pub bootstrap: bool,
}

/// A registered callback body.
pub type Callback =
    Arc<dyn for<'a> Fn(&mut CallbackCtx<'a>, &mut Record) -> Result<(), OrmError> + Send + Sync>;

/// Per-model callback registry.
#[derive(Default)]
pub struct CallbackRegistry {
    hooks: RwLock<HashMap<(String, CallbackPoint), Vec<Callback>>>,
}

impl CallbackRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `f` to run at `point` for `model`.
    pub fn register<F>(&self, model: &str, point: CallbackPoint, f: F)
    where
        F: for<'a> Fn(&mut CallbackCtx<'a>, &mut Record) -> Result<(), OrmError>
            + Send
            + Sync
            + 'static,
    {
        self.hooks
            .write()
            .entry((model.to_owned(), point))
            .or_default()
            .push(Arc::new(f));
    }

    /// Runs all callbacks for `(model, point)` in registration order.
    pub fn run(
        &self,
        model: &str,
        point: CallbackPoint,
        ctx: &mut CallbackCtx<'_>,
        record: &mut Record,
    ) -> Result<(), OrmError> {
        let hooks: Vec<Callback> = {
            let map = self.hooks.read();
            match map.get(&(model.to_owned(), point)) {
                Some(v) => v.clone(),
                None => return Ok(()),
            }
        };
        for hook in hooks {
            hook(ctx, record)?;
        }
        Ok(())
    }

    /// Number of callbacks registered for a model across all points.
    pub fn count_for(&self, model: &str) -> usize {
        self.hooks
            .read()
            .iter()
            .filter(|((m, _), _)| m == model)
            .map(|(_, v)| v.len())
            .sum()
    }
}
