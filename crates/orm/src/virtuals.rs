//! Virtual attributes: programmer-provided getters and setters for
//! attributes that are not in the DB schema (§3.1).
//!
//! The paper's Example 3 (Sub3b) subscribes to MongoDB's array-typed
//! `interests` field through a virtual attribute whose setter explodes the
//! array into rows of a separate SQL `interests` table. On the publisher
//! side, virtual attribute *getters* let services publish computed fields.

use crate::error::OrmError;
use crate::orm::Orm;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use synapse_model::{Record, Value};

/// Getter: computes the published value from the record.
pub type VirtualGetter = Arc<dyn Fn(&Orm, &Record) -> Value + Send + Sync>;
/// Setter: consumes an incoming value on the subscriber (may perform its
/// own ORM writes, like Sub3b's `Interest.add_or_remove`).
pub type VirtualSetter =
    Arc<dyn Fn(&Orm, &mut Record, Value) -> Result<(), OrmError> + Send + Sync>;

/// A virtual attribute definition (getter, setter, or both).
#[derive(Clone, Default)]
pub struct VirtualAttr {
    /// Optional getter.
    pub getter: Option<VirtualGetter>,
    /// Optional setter.
    pub setter: Option<VirtualSetter>,
}

/// Per-model registry of virtual attributes.
#[derive(Default)]
pub struct VirtualRegistry {
    attrs: RwLock<HashMap<(String, String), VirtualAttr>>,
}

impl VirtualRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a getter for `model.field`.
    pub fn getter<F>(&self, model: &str, field: &str, f: F)
    where
        F: Fn(&Orm, &Record) -> Value + Send + Sync + 'static,
    {
        let mut attrs = self.attrs.write();
        attrs
            .entry((model.to_owned(), field.to_owned()))
            .or_default()
            .getter = Some(Arc::new(f));
    }

    /// Registers a setter for `model.field`.
    pub fn setter<F>(&self, model: &str, field: &str, f: F)
    where
        F: Fn(&Orm, &mut Record, Value) -> Result<(), OrmError> + Send + Sync + 'static,
    {
        let mut attrs = self.attrs.write();
        attrs
            .entry((model.to_owned(), field.to_owned()))
            .or_default()
            .setter = Some(Arc::new(f));
    }

    /// Looks up the getter for `model.field`.
    pub fn get_getter(&self, model: &str, field: &str) -> Option<VirtualGetter> {
        self.attrs
            .read()
            .get(&(model.to_owned(), field.to_owned()))
            .and_then(|a| a.getter.clone())
    }

    /// Looks up the setter for `model.field`.
    pub fn get_setter(&self, model: &str, field: &str) -> Option<VirtualSetter> {
        self.attrs
            .read()
            .get(&(model.to_owned(), field.to_owned()))
            .and_then(|a| a.setter.clone())
    }

    /// Whether `model.field` is declared virtual (getter or setter).
    pub fn is_virtual(&self, model: &str, field: &str) -> bool {
        self.attrs
            .read()
            .contains_key(&(model.to_owned(), field.to_owned()))
    }
}
