//! The query-interception surface.
//!
//! Synapse's "Query Intercept" module (Fig. 6(a)) sits between the ORM and
//! the DB driver. In this reproduction the [`Orm`](crate::Orm) routes every
//! operation through registered [`QueryObserver`]s:
//!
//! * reads that return objects invoke [`QueryObserver::on_read`] — how the
//!   publisher discovers *read dependencies* implicitly (§4.2: "Synapse
//!   always infers the correct set of dependencies when encountering read
//!   queries that return objects"); aggregations (counts) are deliberately
//!   *not* reported, matching the paper's observation that they are not true
//!   dependencies;
//! * writes are wrapped by [`QueryObserver::around_write`]: the observer
//!   receives the [`WriteIntent`] *before* the query executes (so it can
//!   lock the write dependency), runs the provided thunk to perform the
//!   actual query, and sees the written post-images afterwards.

use crate::error::OrmError;
use crate::orm::Orm;
use std::collections::BTreeMap;
use synapse_model::{Id, Record, Value};

/// Kind of a write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// A new object is created.
    Create,
    /// An existing object's attributes change.
    Update,
    /// An object is destroyed.
    Delete,
}

impl WriteKind {
    /// Wire-format operation name (Fig. 6(b): `"operation": "update"`).
    pub fn wire_name(self) -> &'static str {
        match self {
            WriteKind::Create => "create",
            WriteKind::Update => "update",
            WriteKind::Delete => "destroy",
        }
    }
}

/// A write about to be executed: everything known before the query runs.
///
/// ORM operations are object-level, so the intent always pins down the
/// single object being written (the paper unrolls multi-object updates into
/// single-object updates for the same reason, §4.2).
#[derive(Debug, Clone)]
pub struct WriteIntent {
    /// Kind of write.
    pub kind: WriteKind,
    /// Model name.
    pub model: String,
    /// Primary key of the object being written.
    pub id: Id,
    /// For updates: the attribute changes; empty otherwise.
    pub changes: BTreeMap<String, Value>,
}

/// The thunk that performs the underlying engine write and returns the
/// written record's post-image (pre-image for deletes).
pub type WriteExec<'a> = dyn FnMut() -> Result<Record, OrmError> + 'a;

/// Interception hooks. Synapse's publisher implements this trait; tests use
/// it to assert on interception behaviour.
pub trait QueryObserver: Send + Sync {
    /// Called after any read query that returned objects.
    fn on_read(&self, _orm: &Orm, _records: &[Record]) {}

    /// Wraps a write. The default implementation simply executes it.
    ///
    /// Implementations must call `exec` exactly once on the success path;
    /// not calling it aborts the write, and the error returned propagates
    /// to the application.
    fn around_write(
        &self,
        _orm: &Orm,
        _intent: &WriteIntent,
        exec: &mut WriteExec<'_>,
    ) -> Result<Record, OrmError> {
        exec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_match_fig6b() {
        assert_eq!(WriteKind::Create.wire_name(), "create");
        assert_eq!(WriteKind::Update.wire_name(), "update");
        assert_eq!(WriteKind::Delete.wire_name(), "destroy");
    }
}
