//! The replication flag.
//!
//! Subscriber workers apply *other services'* writes locally; those applies
//! must bypass ownership restrictions and must not be re-published. The
//! flag is scoped to the direct persistence call only: active-model
//! callbacks run with it cleared, because code inside callbacks is
//! application code — a decorator's callback updating its decoration
//! attributes must publish normally (§3.1).

use std::cell::Cell;

thread_local! {
    static REPLICATING: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the replication flag set.
pub fn with_replication_flag<R>(f: impl FnOnce() -> R) -> R {
    let previous = REPLICATING.with(|r| r.replace(true));
    let out = f();
    REPLICATING.with(|r| r.set(previous));
    out
}

/// Runs `f` with the replication flag cleared (used around callbacks).
pub fn without_replication_flag<R>(f: impl FnOnce() -> R) -> R {
    let previous = REPLICATING.with(|r| r.replace(false));
    let out = f();
    REPLICATING.with(|r| r.set(previous));
    out
}

/// Whether the current thread is applying replicated updates.
pub fn is_replicating() -> bool {
    REPLICATING.with(|r| r.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_nests_and_restores() {
        assert!(!is_replicating());
        with_replication_flag(|| {
            assert!(is_replicating());
            without_replication_flag(|| assert!(!is_replicating()));
            assert!(is_replicating());
        });
        assert!(!is_replicating());
    }
}
