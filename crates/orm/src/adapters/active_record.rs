//! ActiveRecord adapter: the SQL family (PostgreSQL, MySQL, Oracle).
//!
//! Vendor differences handled here:
//!
//! * **Strict schemas** — `define_model` installs the column list and
//!   secondary indexes on the relational engine, so writes of undeclared
//!   columns fail as they would in SQL.
//! * **No array/document types** — array and map attributes are flattened
//!   to their JSON text on write (the paper's Example 3, Sub3a: "flatten
//!   the array and store it as text"). Fields declared with
//!   [`ActiveRecordAdapter::serialize_field`] (Rails's `serialize
//!   :interests`) are decoded back into structured values on read.
//! * **`RETURNING *`** comes from the engine profile: PostgreSQL and Oracle
//!   echo written rows; MySQL takes the inherited read-back path.

use crate::adapter::Adapter;
use crate::error::OrmError;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use synapse_db::relational::RelationalDb;
use synapse_db::{profiles, Engine, LatencyModel, Row};
use synapse_model::{wire, Id, ModelSchema, Record, Value};

/// The SQL adapter. See the module docs.
pub struct ActiveRecordAdapter {
    engine: Arc<RelationalDb>,
    /// `(model, field)` pairs to decode from JSON text on read.
    serialized: RwLock<HashSet<(String, String)>>,
}

impl ActiveRecordAdapter {
    /// Creates the adapter over a fresh engine for `vendor`
    /// (`postgresql`, `mysql`, or `oracle`).
    ///
    /// # Panics
    ///
    /// Panics on a non-SQL vendor name.
    pub fn new(vendor: &str, latency: LatencyModel) -> Self {
        let engine = match vendor {
            "postgresql" => profiles::postgresql(latency),
            "mysql" => profiles::mysql(latency),
            "oracle" => profiles::oracle(latency),
            other => panic!("{other} is not a SQL vendor"),
        };
        Self::over(Arc::new(engine))
    }

    /// Creates the adapter over an existing engine (shared with tests).
    pub fn over(engine: Arc<RelationalDb>) -> Self {
        ActiveRecordAdapter {
            engine,
            serialized: RwLock::new(HashSet::new()),
        }
    }

    /// Declares `model.field` as serialized: structured values round-trip
    /// through their JSON text (Rails's `serialize`).
    pub fn serialize_field(&self, model: &str, field: &str) {
        self.serialized
            .write()
            .insert((model.to_owned(), field.to_owned()));
    }

    /// Access to the concrete engine (tests, stats).
    pub fn relational(&self) -> &RelationalDb {
        &self.engine
    }
}

impl Adapter for ActiveRecordAdapter {
    fn orm_name(&self) -> &'static str {
        "ActiveRecord"
    }

    fn engine(&self) -> &dyn Engine {
        &*self.engine
    }

    fn define_model(&self, schema: &ModelSchema) -> Result<(), OrmError> {
        let table = self.table_for(&schema.name);
        let columns: Vec<&str> = schema.fields.keys().map(String::as_str).collect();
        self.engine.define_columns(&table, &columns);
        for field in schema.fields.values() {
            if field.indexed {
                self.engine.create_index(&table, &field.name);
            }
        }
        Ok(())
    }

    fn encode_attrs(&self, _schema: &ModelSchema, attrs: &BTreeMap<String, Value>) -> Row {
        attrs
            .iter()
            .map(|(k, v)| {
                let stored = match v {
                    // SQL has no array/document columns: store JSON text.
                    Value::Array(_) | Value::Map(_) => Value::Str(wire::encode(v)),
                    other => other.clone(),
                };
                (k.clone(), stored)
            })
            .collect()
    }

    fn decode_row(&self, schema: &ModelSchema, id: Id, row: Row) -> Record {
        let serialized = self.serialized.read();
        let attrs: BTreeMap<String, Value> = row
            .into_iter()
            .map(|(k, v)| {
                let decoded = if serialized.contains(&(schema.name.clone(), k.clone())) {
                    match &v {
                        Value::Str(text) => wire::decode(text).unwrap_or(v),
                        _ => v,
                    }
                } else {
                    v
                };
                (k, decoded)
            })
            .collect();
        let mut record = Record::with_attrs(schema.name.clone(), id, attrs);
        record.types = schema.type_chain();
        record
    }
}
