//! Stretcher adapter: Elasticsearch.
//!
//! Vendor differences handled here:
//!
//! * **Analyzers** — [`StretcherAdapter::set_analyzer`] mirrors Sub1b's
//!   `property :name, analyzer: :simple` (Fig. 4);
//! * **Search** — [`StretcherAdapter::search`] exposes scored full-text
//!   queries over subscribed data (Table 1: "aggregations and analytics").

use crate::adapter::Adapter;
use crate::error::OrmError;
use std::sync::Arc;
use synapse_db::search::{Analyzer, SearchDb};
use synapse_db::{profiles, Engine, LatencyModel, Query, QueryResult};
use synapse_model::{Id, Value};

/// The Elasticsearch adapter. See the module docs.
pub struct StretcherAdapter {
    engine: Arc<SearchDb>,
}

impl StretcherAdapter {
    /// Creates the adapter over a fresh Elasticsearch-profile engine.
    pub fn new(latency: LatencyModel) -> Self {
        StretcherAdapter {
            engine: Arc::new(profiles::elasticsearch(latency)),
        }
    }

    /// Declares the analyzer for `model.field`.
    pub fn set_analyzer(&self, model: &str, field: &str, analyzer: Analyzer) {
        self.engine
            .set_analyzer(&self.table_for(model), field, analyzer);
    }

    /// Full-text search on an analyzed field; returns `(id, score)` pairs,
    /// best first.
    pub fn search(
        &self,
        model: &str,
        field: &str,
        text: &str,
        limit: usize,
    ) -> Result<Vec<(Id, f64)>, OrmError> {
        match self.engine.execute(&Query::Search {
            table: self.table_for(model),
            field: field.to_owned(),
            text: text.to_owned(),
            limit,
        })? {
            QueryResult::SearchHits(hits) => Ok(hits),
            _ => Ok(Vec::new()),
        }
    }

    /// Terms aggregation over a stored field: `(value, doc_count)` buckets.
    pub fn aggregate(&self, model: &str, field: &str) -> Result<Vec<(Value, u64)>, OrmError> {
        match self.engine.execute(&Query::Aggregate {
            table: self.table_for(model),
            field: field.to_owned(),
        })? {
            QueryResult::Buckets(buckets) => Ok(buckets),
            _ => Ok(Vec::new()),
        }
    }
}

impl Adapter for StretcherAdapter {
    fn orm_name(&self) -> &'static str {
        "Stretcher"
    }

    fn engine(&self) -> &dyn Engine {
        &*self.engine
    }
}
