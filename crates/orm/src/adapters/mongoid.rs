//! Mongoid adapter: MongoDB and TokuMX.
//!
//! The document family is the easy case the paper highlights (§3.3,
//! Example 1): schemaless collections store any record verbatim, writes
//! echo the written document (findAndModify-style), and nothing needs
//! translating. Everything is inherited from the trait defaults.

use crate::adapter::Adapter;
use std::sync::Arc;
use synapse_db::document::DocumentDb;
use synapse_db::{profiles, Engine, LatencyModel};

/// The document adapter. See the module docs.
pub struct MongoidAdapter {
    engine: Arc<DocumentDb>,
}

impl MongoidAdapter {
    /// Creates the adapter over a fresh engine for `vendor`
    /// (`mongodb` or `tokumx`).
    ///
    /// # Panics
    ///
    /// Panics on a non-Mongoid vendor name.
    pub fn new(vendor: &str, latency: LatencyModel) -> Self {
        let engine = match vendor {
            "mongodb" => profiles::mongodb(latency),
            "tokumx" => profiles::tokumx(latency),
            other => panic!("{other} is not a Mongoid vendor"),
        };
        MongoidAdapter {
            engine: Arc::new(engine),
        }
    }
}

impl Adapter for MongoidAdapter {
    fn orm_name(&self) -> &'static str {
        "Mongoid"
    }

    fn engine(&self) -> &dyn Engine {
        &*self.engine
    }
}
