//! Cequel adapter: Cassandra.
//!
//! Vendor differences handled here:
//!
//! * **No `RETURNING`** — the engine reports affected ids only, so every
//!   write takes the inherited read-back path (§4.1's "additional query"
//!   protocol; the paper calls it "safe but somewhat more expensive").
//! * **Logged batches** — [`CequelAdapter::batch_write`] applies several
//!   writes atomically, which the Synapse subscriber uses to persist
//!   multi-operation messages with "the highest level of isolation and
//!   atomicity the underlying DB permits" (§4.2).

use crate::adapter::Adapter;
use crate::error::OrmError;
use std::sync::Arc;
use synapse_db::columnar::ColumnarDb;
use synapse_db::{profiles, Engine, LatencyModel, Query};

/// The Cassandra adapter. See the module docs.
pub struct CequelAdapter {
    engine: Arc<ColumnarDb>,
}

impl CequelAdapter {
    /// Creates the adapter over a fresh Cassandra-profile engine.
    pub fn new(latency: LatencyModel) -> Self {
        CequelAdapter {
            engine: Arc::new(profiles::cassandra(latency)),
        }
    }

    /// Applies `writes` as one atomic logged batch.
    pub fn batch_write(&self, writes: Vec<Query>) -> Result<(), OrmError> {
        self.engine.execute(&Query::Batch(writes))?;
        Ok(())
    }

    /// Access to the concrete engine (tests, LSM counters).
    pub fn columnar(&self) -> &ColumnarDb {
        &self.engine
    }
}

impl Adapter for CequelAdapter {
    fn orm_name(&self) -> &'static str {
        "Cequel"
    }

    fn engine(&self) -> &dyn Engine {
        &*self.engine
    }
}
