//! Neo4j adapter: the property-graph store.
//!
//! Vendor differences handled here:
//!
//! * **Labels, not tables** — nodes are stored under the model name itself
//!   (`User`), not a pluralized table name;
//! * **Edges** — [`Neo4jAdapter::add_edge`] / [`Neo4jAdapter::remove_edge`]
//!   are what Example 2's `Friendship` observer calls from its
//!   `after_create` / `after_destroy` callbacks, and
//!   [`Neo4jAdapter::traverse`] serves the recommendation engine's
//!   friends-of-friends queries.

use crate::adapter::Adapter;
use crate::error::OrmError;
use std::sync::Arc;
use synapse_db::graph::GraphDb;
use synapse_db::{profiles, Engine, LatencyModel, Query, QueryResult};
use synapse_model::Id;

/// The graph adapter. See the module docs.
pub struct Neo4jAdapter {
    engine: Arc<GraphDb>,
}

impl Neo4jAdapter {
    /// Creates the adapter over a fresh Neo4j-profile engine.
    pub fn new(latency: LatencyModel) -> Self {
        Neo4jAdapter {
            engine: Arc::new(profiles::neo4j(latency)),
        }
    }

    /// Adds an (undirected) edge under `label`.
    pub fn add_edge(&self, label: &str, from: Id, to: Id) -> Result<(), OrmError> {
        self.engine.execute(&Query::AddEdge {
            label: label.to_owned(),
            from,
            to,
        })?;
        Ok(())
    }

    /// Removes an edge under `label`.
    pub fn remove_edge(&self, label: &str, from: Id, to: Id) -> Result<(), OrmError> {
        self.engine.execute(&Query::RemoveEdge {
            label: label.to_owned(),
            from,
            to,
        })?;
        Ok(())
    }

    /// Breadth-first traversal up to `depth` hops from `from`.
    pub fn traverse(&self, label: &str, from: Id, depth: usize) -> Result<Vec<Id>, OrmError> {
        match self.engine.execute(&Query::Traverse {
            label: label.to_owned(),
            from,
            depth,
        })? {
            QueryResult::Ids(ids) => Ok(ids),
            _ => Ok(Vec::new()),
        }
    }

    /// Access to the concrete engine (tests, edge counters).
    pub fn graph(&self) -> &GraphDb {
        &self.engine
    }
}

impl Adapter for Neo4jAdapter {
    fn orm_name(&self) -> &'static str {
        "Neo4j"
    }

    fn engine(&self) -> &dyn Engine {
        &*self.engine
    }

    /// Graph stores use the label (model name) directly.
    fn table_for(&self, model: &str) -> String {
        model.to_owned()
    }
}
