//! Per-vendor ORM adapters — one per row of Table 3.
//!
//! | Adapter | ORM mirrored | Engines |
//! |---|---|---|
//! | [`ActiveRecordAdapter`] | ActiveRecord | PostgreSQL, MySQL, Oracle |
//! | [`MongoidAdapter`] | Mongoid | MongoDB, TokuMX |
//! | [`CequelAdapter`] | Cequel | Cassandra |
//! | [`StretcherAdapter`] | Stretcher | Elasticsearch |
//! | [`Neo4jAdapter`] | Neo4j.rb | Neo4j |
//! | [`NoBrainerAdapter`] | NoBrainer | RethinkDB |
//!
//! Most adapter code is inherited from [`Adapter`](crate::Adapter)'s default
//! methods; the overrides below are each vendor's genuine differences,
//! mirroring the paper's finding that per-DB support is a few dozen to a few
//! hundred lines (§4.6). `table1_support_matrix` and `table3_loc` in the
//! bench crate report on these files.

pub mod active_record;
pub mod cequel;
pub mod mongoid;
pub mod neo4j;
pub mod nobrainer;
pub mod stretcher;

pub use active_record::ActiveRecordAdapter;
pub use cequel::CequelAdapter;
pub use mongoid::MongoidAdapter;
pub use neo4j::Neo4jAdapter;
pub use nobrainer::NoBrainerAdapter;
pub use stretcher::StretcherAdapter;

use crate::adapter::Adapter;
use std::sync::Arc;
use synapse_db::ephemeral::EphemeralDb;
use synapse_db::{Engine, LatencyModel};

/// Adapter for DB-less models (ephemerals/observers, §3.1): generic CRUD
/// over the no-op engine.
pub struct EphemeralAdapter {
    engine: Arc<EphemeralDb>,
}

impl EphemeralAdapter {
    /// Creates the adapter and its engine.
    pub fn new() -> Self {
        EphemeralAdapter {
            engine: Arc::new(EphemeralDb::new()),
        }
    }
}

impl Default for EphemeralAdapter {
    fn default() -> Self {
        Self::new()
    }
}

impl Adapter for EphemeralAdapter {
    fn orm_name(&self) -> &'static str {
        "Ephemeral"
    }

    fn engine(&self) -> &dyn Engine {
        &*self.engine
    }
}

/// Constructs the adapter conventionally paired with `vendor` (Table 3).
///
/// # Panics
///
/// Panics on an unknown vendor name.
pub fn for_vendor(vendor: &str, latency: LatencyModel) -> Arc<dyn Adapter> {
    match vendor {
        "postgresql" | "mysql" | "oracle" => Arc::new(ActiveRecordAdapter::new(vendor, latency)),
        "mongodb" | "tokumx" => Arc::new(MongoidAdapter::new(vendor, latency)),
        "cassandra" => Arc::new(CequelAdapter::new(latency)),
        "elasticsearch" => Arc::new(StretcherAdapter::new(latency)),
        "neo4j" => Arc::new(Neo4jAdapter::new(latency)),
        "rethinkdb" => Arc::new(NoBrainerAdapter::new(latency)),
        "ephemeral" => Arc::new(EphemeralAdapter::new()),
        other => panic!("unknown vendor {other}"),
    }
}
