//! NoBrainer adapter: RethinkDB.
//!
//! RethinkDB is a document store with write echo (Table 3 lists it as
//! subscriber-only); the trait defaults cover it entirely.

use crate::adapter::Adapter;
use std::sync::Arc;
use synapse_db::document::DocumentDb;
use synapse_db::{profiles, Engine, LatencyModel};

/// The RethinkDB adapter. See the module docs.
pub struct NoBrainerAdapter {
    engine: Arc<DocumentDb>,
}

impl NoBrainerAdapter {
    /// Creates the adapter over a fresh RethinkDB-profile engine.
    pub fn new(latency: LatencyModel) -> Self {
        NoBrainerAdapter {
            engine: Arc::new(profiles::rethinkdb(latency)),
        }
    }
}

impl Adapter for NoBrainerAdapter {
    fn orm_name(&self) -> &'static str {
        "NoBrainer"
    }

    fn engine(&self) -> &dyn Engine {
        &*self.engine
    }
}
