//! The ORM facade: dynamic CRUD with callbacks, observers, associations.

use crate::adapter::Adapter;
use crate::callbacks::{CallbackCtx, CallbackPoint, CallbackRegistry};
use crate::error::OrmError;
use crate::observer::{QueryObserver, WriteExec, WriteIntent, WriteKind};
use crate::virtuals::VirtualRegistry;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use synapse_db::query::OrderBy;
use synapse_db::{DbFaults, EngineStats, Filter};
use synapse_model::{AssociationKind, Id, IdGenerator, ModelSchema, Record, SchemaSet, Value};

/// Attribute changes for an update: field name → new value.
pub type Changes = BTreeMap<String, Value>;

/// One service's ORM: schemas, CRUD, callbacks, virtual attributes, and the
/// interception surface Synapse hooks into.
///
/// # Examples
///
/// ```
/// use synapse_db::LatencyModel;
/// use synapse_model::{vmap, ModelSchema};
/// use synapse_orm::adapters::MongoidAdapter;
/// use synapse_orm::Orm;
/// use std::sync::Arc;
///
/// let orm = Orm::new("pub1", Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())));
/// orm.define_model(ModelSchema::open("User")).unwrap();
/// let user = orm.create("User", vmap! { "name" => "alice" }).unwrap();
/// let found = orm.find("User", user.id).unwrap().unwrap();
/// assert_eq!(found.get("name").as_str(), Some("alice"));
/// ```
pub struct Orm {
    app: String,
    adapter: Arc<dyn Adapter>,
    schemas: RwLock<SchemaSet>,
    callbacks: CallbackRegistry,
    virtuals: VirtualRegistry,
    observers: RwLock<Vec<Arc<dyn QueryObserver>>>,
    idgens: Mutex<HashMap<String, Arc<IdGenerator>>>,
    bootstrap: AtomicBool,
    faults: DbFaults,
    /// Writes that entered the observer chain (the ORM-intercept point of
    /// the telemetry plane) and reads fanned out to observers.
    writes_intercepted: AtomicU64,
    reads_observed: AtomicU64,
}

impl Orm {
    /// Creates an ORM for app `app` over `adapter`.
    pub fn new(app: impl Into<String>, adapter: Arc<dyn Adapter>) -> Self {
        Orm {
            app: app.into(),
            adapter,
            schemas: RwLock::new(SchemaSet::new()),
            callbacks: CallbackRegistry::new(),
            virtuals: VirtualRegistry::new(),
            observers: RwLock::new(Vec::new()),
            idgens: Mutex::new(HashMap::new()),
            bootstrap: AtomicBool::new(false),
            faults: DbFaults::new(),
            writes_intercepted: AtomicU64::new(0),
            reads_observed: AtomicU64::new(0),
        }
    }

    /// Writes that entered the observer chain since construction.
    pub fn writes_intercepted(&self) -> u64 {
        self.writes_intercepted.load(Ordering::Relaxed)
    }

    /// Read results fanned out to observers since construction.
    pub fn reads_observed(&self) -> u64 {
        self.reads_observed.load(Ordering::Relaxed)
    }

    /// Arming panel for db-level fault injection on this ORM's write path.
    /// The returned handle shares state with the ORM; see
    /// [`synapse_db::DbFaults`].
    pub fn db_faults(&self) -> DbFaults {
        self.faults.clone()
    }

    /// The owning application's name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The adapter in use.
    pub fn adapter(&self) -> &Arc<dyn Adapter> {
        &self.adapter
    }

    /// Underlying engine statistics.
    pub fn engine_stats(&self) -> EngineStats {
        self.adapter.engine().stats()
    }

    /// Declares a model and creates its backing storage.
    pub fn define_model(&self, schema: ModelSchema) -> Result<(), OrmError> {
        self.adapter.define_model(&schema)?;
        self.schemas.write().define(schema);
        Ok(())
    }

    /// Looks up a model's schema.
    pub fn schema(&self, model: &str) -> Result<ModelSchema, OrmError> {
        Ok(self.schemas.read().get(model)?.clone())
    }

    /// Names of all defined models.
    pub fn model_names(&self) -> Vec<String> {
        self.schemas
            .read()
            .model_names()
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    /// Registers an active-model callback.
    pub fn on<F>(&self, model: &str, point: CallbackPoint, f: F)
    where
        F: for<'a> Fn(&mut CallbackCtx<'a>, &mut Record) -> Result<(), OrmError>
            + Send
            + Sync
            + 'static,
    {
        self.callbacks.register(model, point, f);
    }

    /// The virtual-attribute registry.
    pub fn virtuals(&self) -> &VirtualRegistry {
        &self.virtuals
    }

    /// Registers a query observer (Synapse's publisher, a test probe, …).
    pub fn observe(&self, observer: Arc<dyn QueryObserver>) {
        self.observers.write().push(observer);
    }

    /// Sets the Synapse bootstrap flag exposed to callbacks (§4.4).
    pub fn set_bootstrap(&self, on: bool) {
        self.bootstrap.store(on, Ordering::SeqCst);
    }

    /// The paper's `Synapse.bootstrap?` predicate.
    pub fn is_bootstrap(&self) -> bool {
        self.bootstrap.load(Ordering::SeqCst)
    }

    fn idgen(&self, model: &str) -> Arc<IdGenerator> {
        self.idgens
            .lock()
            .entry(model.to_owned())
            .or_insert_with(|| Arc::new(IdGenerator::new()))
            .clone()
    }

    /// Runs a model's callbacks directly, without persistence. Used by
    /// Synapse for *observer* models (§3.1), which react to replicated
    /// updates through callbacks but never store the data.
    pub fn run_model_callbacks(
        &self,
        model: &str,
        point: CallbackPoint,
        record: &mut Record,
    ) -> Result<(), OrmError> {
        self.run_callbacks(model, point, record)
    }

    fn run_callbacks(
        &self,
        model: &str,
        point: CallbackPoint,
        record: &mut Record,
    ) -> Result<(), OrmError> {
        let mut ctx = CallbackCtx {
            orm: self,
            bootstrap: self.is_bootstrap(),
        };
        // Callbacks are application code even when triggered by a
        // replicated apply: run them with the replication flag cleared so
        // e.g. a decorator's callback publishes its decorations normally.
        crate::flags::without_replication_flag(|| {
            self.callbacks.run(model, point, &mut ctx, record)
        })
    }

    /// Threads a write through every registered observer's `around_write`,
    /// innermost performing the actual engine write.
    fn run_write(
        &self,
        intent: &WriteIntent,
        exec: &mut WriteExec<'_>,
    ) -> Result<Record, OrmError> {
        // Fault gate first: an injected transient error fails the write
        // before any observer runs, so no version bump or publication
        // happens for a write the database refused.
        self.faults.gate_write()?;
        self.writes_intercepted.fetch_add(1, Ordering::Relaxed);
        let observers: Vec<Arc<dyn QueryObserver>> = self.observers.read().clone();
        self.run_write_chain(&observers, intent, exec)
    }

    fn run_write_chain(
        &self,
        observers: &[Arc<dyn QueryObserver>],
        intent: &WriteIntent,
        exec: &mut WriteExec<'_>,
    ) -> Result<Record, OrmError> {
        match observers.split_first() {
            None => exec(),
            Some((first, rest)) => {
                let mut inner = |orm: &Orm| orm.run_write_chain(rest, intent, exec);
                let mut thunk = || inner(self);
                first.around_write(self, intent, &mut thunk)
            }
        }
    }

    fn notify_read(&self, records: &[Record]) {
        if records.is_empty() {
            return;
        }
        self.reads_observed
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        for observer in self.observers.read().iter() {
            observer.on_read(self, records);
        }
    }

    /// Creates a new object with a freshly allocated id.
    pub fn create(&self, model: &str, attrs: Value) -> Result<Record, OrmError> {
        let id = self.idgen(model).next_id();
        self.create_with_id(model, id, attrs)
    }

    /// Creates a new object with an explicit id (replication, fixtures).
    pub fn create_with_id(&self, model: &str, id: Id, attrs: Value) -> Result<Record, OrmError> {
        let schema = self.schema(model)?;
        self.idgen(model).observe(id);
        let attrs = match attrs {
            Value::Map(m) => m,
            Value::Null => BTreeMap::new(),
            other => {
                return Err(OrmError::Model(synapse_model::ModelError::Malformed(
                    format!("create attrs must be a map, got {}", other.type_name()),
                )))
            }
        };
        let mut record = Record::with_attrs(model.to_owned(), id, attrs);
        record.types = schema.type_chain();
        self.run_callbacks(model, CallbackPoint::BeforeCreate, &mut record)?;
        schema.check_attrs(record.attrs.iter())?;
        let intent = WriteIntent {
            kind: WriteKind::Create,
            model: model.to_owned(),
            id,
            changes: record.attrs.clone(),
        };
        let adapter = self.adapter.clone();
        let record_ref = &record;
        let schema_ref = &schema;
        let mut stored = self.run_write(&intent, &mut || adapter.insert(schema_ref, record_ref))?;
        self.run_callbacks(model, CallbackPoint::AfterCreate, &mut stored)?;
        Ok(stored)
    }

    /// Applies attribute changes to an existing object.
    pub fn update(&self, model: &str, id: Id, changes: Value) -> Result<Record, OrmError> {
        let schema = self.schema(model)?;
        let changes = match changes {
            Value::Map(m) => m,
            other => {
                return Err(OrmError::Model(synapse_model::ModelError::Malformed(
                    format!("update changes must be a map, got {}", other.type_name()),
                )))
            }
        };
        let current = self
            .adapter
            .find(&schema, id)?
            .ok_or_else(|| OrmError::RecordNotFound {
                model: model.to_owned(),
                id: id.to_string(),
            })?;
        let mut merged = current.clone();
        for (k, v) in &changes {
            merged.attrs.insert(k.clone(), v.clone());
        }
        self.run_callbacks(model, CallbackPoint::BeforeUpdate, &mut merged)?;
        schema.check_attrs(merged.attrs.iter())?;
        // The intent carries the *caller's* changes (not the merged image):
        // Synapse's restriction checks need to know which attributes the
        // application actually touched (§3.1: subscribers may only update
        // their own decoration attributes).
        let intent = WriteIntent {
            kind: WriteKind::Update,
            model: model.to_owned(),
            id,
            changes,
        };
        let adapter = self.adapter.clone();
        let attrs_ref = &merged.attrs;
        let schema_ref = &schema;
        let mut stored =
            self.run_write(&intent, &mut || adapter.update(schema_ref, id, attrs_ref))?;
        self.run_callbacks(model, CallbackPoint::AfterUpdate, &mut stored)?;
        Ok(stored)
    }

    /// Destroys an object, returning its final image.
    pub fn destroy(&self, model: &str, id: Id) -> Result<Record, OrmError> {
        let schema = self.schema(model)?;
        let mut pre = self
            .adapter
            .find(&schema, id)?
            .ok_or_else(|| OrmError::RecordNotFound {
                model: model.to_owned(),
                id: id.to_string(),
            })?;
        self.run_callbacks(model, CallbackPoint::BeforeDestroy, &mut pre)?;
        let intent = WriteIntent {
            kind: WriteKind::Delete,
            model: model.to_owned(),
            id,
            changes: BTreeMap::new(),
        };
        let adapter = self.adapter.clone();
        let schema_ref = &schema;
        let pre_ref = &pre;
        let mut removed = self.run_write(&intent, &mut || {
            Ok(adapter
                .delete(schema_ref, id)?
                .unwrap_or_else(|| pre_ref.clone()))
        })?;
        self.run_callbacks(model, CallbackPoint::AfterDestroy, &mut removed)?;
        Ok(removed)
    }

    /// Fetches one object, notifying observers of the read (the implicit
    /// read-dependency discovery of §4.2).
    pub fn find(&self, model: &str, id: Id) -> Result<Option<Record>, OrmError> {
        let schema = self.schema(model)?;
        let found = self.adapter.find(&schema, id)?;
        if let Some(r) = &found {
            self.notify_read(std::slice::from_ref(r));
        }
        Ok(found)
    }

    /// Fetches all objects where `field == value`.
    pub fn where_eq(
        &self,
        model: &str,
        field: &str,
        value: impl Into<Value>,
    ) -> Result<Vec<Record>, OrmError> {
        let schema = self.schema(model)?;
        let records = self.adapter.select(
            &schema,
            Filter::Eq(field.to_owned(), value.into()),
            None,
            None,
        )?;
        self.notify_read(&records);
        Ok(records)
    }

    /// Fetches all objects of a model in id order.
    pub fn all(&self, model: &str) -> Result<Vec<Record>, OrmError> {
        let schema = self.schema(model)?;
        let records = self.adapter.select(
            &schema,
            Filter::All,
            Some(OrderBy {
                field: "id".into(),
                ascending: true,
            }),
            None,
        )?;
        self.notify_read(&records);
        Ok(records)
    }

    /// Fetches up to `limit` objects of a model whose id is strictly
    /// greater than `after`, ordered by id ascending. This is the paged
    /// read behind bootstrap's chunked object copy: each chunk picks up
    /// where the previous watermark left off.
    pub fn all_after(&self, model: &str, after: Id, limit: usize) -> Result<Vec<Record>, OrmError> {
        let schema = self.schema(model)?;
        let records = self.adapter.select(
            &schema,
            Filter::IdAfter(after),
            Some(OrderBy {
                field: "id".into(),
                ascending: true,
            }),
            Some(limit),
        )?;
        self.notify_read(&records);
        Ok(records)
    }

    /// Counts objects of a model. Counts are aggregations, not true
    /// dependencies (§4.2), so observers are *not* notified.
    pub fn count(&self, model: &str) -> Result<u64, OrmError> {
        let schema = self.schema(model)?;
        self.adapter.count(&schema, Filter::All)
    }

    /// Navigates an association declared on the record's model.
    ///
    /// * `belongs_to` returns zero or one record;
    /// * `has_many` returns all records of the target model whose
    ///   conventional foreign key (`<model>_id`, lowercased) equals this
    ///   record's id.
    pub fn related(&self, record: &Record, assoc_name: &str) -> Result<Vec<Record>, OrmError> {
        let schema = self.schema(&record.model)?;
        let assoc = schema
            .associations
            .get(assoc_name)
            .ok_or_else(|| {
                OrmError::Model(synapse_model::ModelError::UnknownField {
                    model: record.model.clone(),
                    field: assoc_name.to_owned(),
                })
            })?
            .clone();
        match assoc.kind {
            AssociationKind::BelongsTo => {
                let fk = record.get(&assoc.foreign_key());
                match fk.as_int() {
                    Some(raw) => Ok(self
                        .find(&assoc.target, Id(raw as u64))?
                        .into_iter()
                        .collect()),
                    None => Ok(Vec::new()),
                }
            }
            AssociationKind::HasMany => {
                let fk = format!("{}_id", record.model.to_lowercase());
                self.where_eq(&assoc.target, &fk, Value::Int(record.id.raw() as i64))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{ActiveRecordAdapter, MongoidAdapter};
    use parking_lot::Mutex as PMutex;
    use synapse_db::LatencyModel;
    use synapse_model::{varray, vmap, FieldType};

    fn mongo_orm() -> Orm {
        let orm = Orm::new(
            "test_app",
            Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
        );
        orm.define_model(ModelSchema::open("User")).unwrap();
        orm.define_model(ModelSchema::open("Post")).unwrap();
        orm
    }

    fn sql_orm(vendor: &str) -> (Orm, Arc<ActiveRecordAdapter>) {
        let adapter = Arc::new(ActiveRecordAdapter::new(vendor, LatencyModel::off()));
        let orm = Orm::new("test_app", adapter.clone());
        orm.define_model(
            ModelSchema::new("User")
                .typed_field("name", FieldType::Str)
                .typed_field("interests", FieldType::Any),
        )
        .unwrap();
        (orm, adapter)
    }

    #[test]
    fn create_allocates_increasing_ids() {
        let orm = mongo_orm();
        let a = orm.create("User", vmap! { "name" => "a" }).unwrap();
        let b = orm.create("User", vmap! { "name" => "b" }).unwrap();
        assert!(b.id > a.id);
    }

    #[test]
    fn injected_db_fault_fails_one_write_transiently() {
        use synapse_db::DbError;
        let orm = mongo_orm();
        orm.db_faults().inject_write_errors(1);
        let err = orm.create("User", vmap! { "name" => "a" }).unwrap_err();
        assert!(matches!(err, OrmError::Db(DbError::Unavailable)));
        // The fault is transient: the next write goes through, and reads
        // were never affected.
        let u = orm.create("User", vmap! { "name" => "a" }).unwrap();
        assert!(orm.find("User", u.id).unwrap().is_some());
        assert_eq!(orm.db_faults().stats().write_errors_injected, 1);
    }

    #[test]
    fn create_with_id_advances_the_generator() {
        let orm = mongo_orm();
        orm.create_with_id("User", Id(100), vmap! {}).unwrap();
        let next = orm.create("User", vmap! {}).unwrap();
        assert!(next.id > Id(100));
    }

    #[test]
    fn update_merges_changes() {
        let orm = mongo_orm();
        let u = orm
            .create("User", vmap! { "name" => "a", "likes" => 0 })
            .unwrap();
        let u2 = orm.update("User", u.id, vmap! { "likes" => 5 }).unwrap();
        assert_eq!(u2.get("likes").as_int(), Some(5));
        assert_eq!(u2.get("name").as_str(), Some("a"), "untouched field kept");
    }

    #[test]
    fn update_missing_record_errors() {
        let orm = mongo_orm();
        assert!(matches!(
            orm.update("User", Id(404), vmap! { "x" => 1 }),
            Err(OrmError::RecordNotFound { .. })
        ));
    }

    #[test]
    fn destroy_returns_final_image() {
        let orm = mongo_orm();
        let u = orm.create("User", vmap! { "name" => "gone" }).unwrap();
        let removed = orm.destroy("User", u.id).unwrap();
        assert_eq!(removed.get("name").as_str(), Some("gone"));
        assert!(orm.find("User", u.id).unwrap().is_none());
    }

    #[test]
    fn callbacks_fire_in_order_and_can_mutate() {
        let orm = mongo_orm();
        let log: Arc<PMutex<Vec<&'static str>>> = Arc::new(PMutex::new(Vec::new()));
        let l1 = log.clone();
        orm.on("User", CallbackPoint::BeforeCreate, move |_, r| {
            l1.lock().push("before");
            r.set("normalized", true);
            Ok(())
        });
        let l2 = log.clone();
        orm.on("User", CallbackPoint::AfterCreate, move |_, _| {
            l2.lock().push("after");
            Ok(())
        });
        let u = orm.create("User", vmap! { "name" => "x" }).unwrap();
        assert_eq!(*log.lock(), vec!["before", "after"]);
        assert_eq!(u.get("normalized").as_bool(), Some(true));
    }

    #[test]
    fn aborting_before_create_prevents_the_write() {
        let orm = mongo_orm();
        orm.on("User", CallbackPoint::BeforeCreate, |_, _| {
            Err(OrmError::CallbackAborted("validation failed".into()))
        });
        assert!(orm.create("User", vmap! {}).is_err());
        assert_eq!(orm.count("User").unwrap(), 0);
    }

    #[test]
    fn callbacks_see_bootstrap_flag() {
        let orm = mongo_orm();
        let seen: Arc<PMutex<Vec<bool>>> = Arc::new(PMutex::new(Vec::new()));
        let s = seen.clone();
        orm.on("User", CallbackPoint::AfterCreate, move |ctx, _| {
            s.lock().push(ctx.bootstrap);
            Ok(())
        });
        orm.create("User", vmap! {}).unwrap();
        orm.set_bootstrap(true);
        orm.create("User", vmap! {}).unwrap();
        assert_eq!(*seen.lock(), vec![false, true]);
    }

    struct Probe {
        reads: PMutex<Vec<String>>,
        writes: PMutex<Vec<(WriteKind, String, Id)>>,
    }

    impl QueryObserver for Probe {
        fn on_read(&self, _orm: &Orm, records: &[Record]) {
            let mut reads = self.reads.lock();
            for r in records {
                reads.push(format!("{}/{}", r.model, r.id));
            }
        }

        fn around_write(
            &self,
            _orm: &Orm,
            intent: &WriteIntent,
            exec: &mut WriteExec<'_>,
        ) -> Result<Record, OrmError> {
            self.writes
                .lock()
                .push((intent.kind, intent.model.clone(), intent.id));
            exec()
        }
    }

    #[test]
    fn observers_see_reads_and_writes() {
        let orm = mongo_orm();
        let probe = Arc::new(Probe {
            reads: PMutex::new(Vec::new()),
            writes: PMutex::new(Vec::new()),
        });
        orm.observe(probe.clone());
        let u = orm.create("User", vmap! { "name" => "a" }).unwrap();
        orm.find("User", u.id).unwrap();
        orm.update("User", u.id, vmap! { "name" => "b" }).unwrap();
        orm.destroy("User", u.id).unwrap();
        assert_eq!(
            *probe.writes.lock(),
            vec![
                (WriteKind::Create, "User".to_owned(), u.id),
                (WriteKind::Update, "User".to_owned(), u.id),
                (WriteKind::Delete, "User".to_owned(), u.id),
            ]
        );
        assert_eq!(*probe.reads.lock(), vec![format!("User/{}", u.id)]);
    }

    #[test]
    fn counts_are_not_read_dependencies() {
        let orm = mongo_orm();
        let probe = Arc::new(Probe {
            reads: PMutex::new(Vec::new()),
            writes: PMutex::new(Vec::new()),
        });
        orm.create("User", vmap! {}).unwrap();
        orm.observe(probe.clone());
        orm.count("User").unwrap();
        assert!(probe.reads.lock().is_empty());
    }

    #[test]
    fn sql_flattens_arrays_to_text_and_serialize_restores_them() {
        let (orm, adapter) = sql_orm("postgresql");
        let interests = varray!["cats", "dogs"];
        let u = orm
            .create(
                "User",
                vmap! { "name" => "a", "interests" => interests.clone() },
            )
            .unwrap();
        // Without `serialize`, the stored value is the flattened text.
        assert_eq!(
            u.get("interests").as_str(),
            Some(r#"["cats","dogs"]"#),
            "Sub3a behaviour: array flattened to text"
        );
        // With `serialize`, reads restore the structured value.
        adapter.serialize_field("User", "interests");
        let found = orm.find("User", u.id).unwrap().unwrap();
        assert_eq!(found.get("interests"), &interests);
    }

    #[test]
    fn mysql_read_back_path_produces_full_images() {
        let (orm, _) = sql_orm("mysql");
        let u = orm.create("User", vmap! { "name" => "a" }).unwrap();
        assert_eq!(u.get("name").as_str(), Some("a"));
        let u2 = orm.update("User", u.id, vmap! { "name" => "b" }).unwrap();
        assert_eq!(u2.get("name").as_str(), Some("b"));
        let gone = orm.destroy("User", u.id).unwrap();
        assert_eq!(
            gone.get("name").as_str(),
            Some("b"),
            "pre-image via pre-read"
        );
    }

    #[test]
    fn sql_rejects_undeclared_columns() {
        let (orm, _) = sql_orm("postgresql");
        assert!(orm.create("User", vmap! { "ghost" => 1 }).is_err());
    }

    #[test]
    fn associations_navigate_both_directions() {
        let orm = Orm::new(
            "app",
            Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
        );
        orm.define_model(ModelSchema::open("User").has_many("posts", "Post"))
            .unwrap();
        orm.define_model(ModelSchema::open("Post").belongs_to("user", "User"))
            .unwrap();
        let u = orm.create("User", vmap! { "name" => "a" }).unwrap();
        let p = orm
            .create("Post", vmap! { "user_id" => u.id.raw(), "body" => "hi" })
            .unwrap();
        let posts = orm.related(&u, "posts").unwrap();
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].id, p.id);
        let authors = orm.related(&p, "user").unwrap();
        assert_eq!(authors.len(), 1);
        assert_eq!(authors[0].id, u.id);
    }

    #[test]
    fn create_rejects_non_map_attrs() {
        let orm = mongo_orm();
        assert!(orm.create("User", Value::from(3)).is_err());
    }
}
