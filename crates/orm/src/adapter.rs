//! The adapter trait: generic CRUD over a concrete engine.
//!
//! "Although different ORMs may offer different APIs, at a minimum they
//! must provide a way to create, update, and delete the objects in the DB"
//! (§2). The default method bodies implement exactly that minimum against
//! the [`Engine`] query AST — including the read-back protocol for engines
//! without `RETURNING *` (§4.1) — so concrete adapters only override where
//! their vendor genuinely differs. This is why Table 3's per-DB line counts
//! are small, and the reproduction preserves that property.

use crate::error::OrmError;
use std::collections::BTreeMap;
use synapse_db::query::OrderBy;
use synapse_db::{DbError, Engine, Filter, Query, QueryResult, Row};
use synapse_model::{Id, ModelSchema, Record, Value};

/// A vendor adapter. See the module docs.
pub trait Adapter: Send + Sync {
    /// Name of the ORM this adapter mirrors (Table 3), e.g. `ActiveRecord`.
    fn orm_name(&self) -> &'static str;

    /// The engine this adapter drives.
    fn engine(&self) -> &dyn Engine;

    /// Table/collection/label name for a model. Default: Rails-style
    /// lowercased plural (`User` → `users`).
    fn table_for(&self, model: &str) -> String {
        let mut t = model.to_lowercase();
        t.push('s');
        t
    }

    /// Creates the model's backing table and any engine-specific schema
    /// artifacts (columns, indexes, analyzers).
    fn define_model(&self, schema: &ModelSchema) -> Result<(), OrmError> {
        self.engine().execute(&Query::CreateTable {
            table: self.table_for(&schema.name),
        })?;
        Ok(())
    }

    /// Translates attribute values into the engine's storable row form.
    /// Default: verbatim.
    fn encode_attrs(&self, _schema: &ModelSchema, attrs: &BTreeMap<String, Value>) -> Row {
        attrs.clone()
    }

    /// Translates a stored row back into a record. Default: verbatim.
    fn decode_row(&self, schema: &ModelSchema, id: Id, row: Row) -> Record {
        let mut record = Record::with_attrs(schema.name.clone(), id, row);
        record.types = schema.type_chain();
        record
    }

    /// Inserts a record, returning the stored image.
    fn insert(&self, schema: &ModelSchema, record: &Record) -> Result<Record, OrmError> {
        let table = self.table_for(&schema.name);
        let row = self.encode_attrs(schema, &record.attrs);
        let res = self.engine().execute(&Query::Insert {
            table: table.clone(),
            id: record.id,
            row,
        })?;
        self.written_image(schema, &table, record.id, res)
    }

    /// Applies attribute changes to one object, returning the post-image.
    fn update(
        &self,
        schema: &ModelSchema,
        id: Id,
        changes: &BTreeMap<String, Value>,
    ) -> Result<Record, OrmError> {
        let table = self.table_for(&schema.name);
        let set = self.encode_attrs(schema, changes);
        let res = self.engine().execute(&Query::Update {
            table: table.clone(),
            filter: Filter::ById(id),
            set,
            unset: Vec::new(),
        })?;
        if res.affected_ids().is_empty() {
            return Err(OrmError::RecordNotFound {
                model: schema.name.clone(),
                id: id.to_string(),
            });
        }
        self.written_image(schema, &table, id, res)
    }

    /// Deletes one object, returning its pre-image when it existed.
    fn delete(&self, schema: &ModelSchema, id: Id) -> Result<Option<Record>, OrmError> {
        let table = self.table_for(&schema.name);
        // Engines without RETURNING cannot echo the deleted row, and reading
        // back after deletion is impossible — so pre-read (§4.1's "additional
        // query", issued before the write for deletes).
        let pre = if self.engine().capabilities().returning {
            None
        } else {
            self.find(schema, id)?
        };
        let res = self.engine().execute(&Query::Delete {
            table,
            filter: Filter::ById(id),
        })?;
        match res {
            QueryResult::Rows(mut rows) => Ok(if rows.is_empty() {
                None
            } else {
                let (rid, row) = rows.swap_remove(0);
                Some(self.decode_row(schema, rid, row))
            }),
            QueryResult::AffectedIds(ids) => Ok(if ids.is_empty() { None } else { pre }),
            _ => Err(OrmError::Db(DbError::Unsupported("delete result shape"))),
        }
    }

    /// Fetches one object by primary key.
    fn find(&self, schema: &ModelSchema, id: Id) -> Result<Option<Record>, OrmError> {
        let res = read_or_empty(self.engine().execute(&Query::Select {
            table: self.table_for(&schema.name),
            filter: Filter::ById(id),
            order: None,
            limit: Some(1),
        }))?;
        Ok(res
            .into_rows()?
            .into_iter()
            .next()
            .map(|(rid, row)| self.decode_row(schema, rid, row)))
    }

    /// Fetches objects matching a filter.
    fn select(
        &self,
        schema: &ModelSchema,
        filter: Filter,
        order: Option<OrderBy>,
        limit: Option<usize>,
    ) -> Result<Vec<Record>, OrmError> {
        let res = read_or_empty(self.engine().execute(&Query::Select {
            table: self.table_for(&schema.name),
            filter,
            order,
            limit,
        }))?;
        Ok(res
            .into_rows()?
            .into_iter()
            .map(|(rid, row)| self.decode_row(schema, rid, row))
            .collect())
    }

    /// Counts objects matching a filter.
    fn count(&self, schema: &ModelSchema, filter: Filter) -> Result<u64, OrmError> {
        match self.engine().execute(&Query::Count {
            table: self.table_for(&schema.name),
            filter,
        }) {
            Ok(res) => Ok(res.into_count()?),
            Err(DbError::NoSuchTable(_)) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Resolves a write result into the written record, reading the row
    /// back when the engine lacks `RETURNING *` (§4.1).
    fn written_image(
        &self,
        schema: &ModelSchema,
        table: &str,
        id: Id,
        res: QueryResult,
    ) -> Result<Record, OrmError> {
        match res {
            QueryResult::Rows(mut rows) if !rows.is_empty() => {
                let (rid, row) = rows.swap_remove(0);
                Ok(self.decode_row(schema, rid, row))
            }
            QueryResult::AffectedIds(_) | QueryResult::Rows(_) => {
                let rows = self
                    .engine()
                    .execute(&Query::Select {
                        table: table.to_owned(),
                        filter: Filter::ById(id),
                        order: None,
                        limit: Some(1),
                    })?
                    .into_rows()?;
                match rows.into_iter().next() {
                    Some((rid, row)) => Ok(self.decode_row(schema, rid, row)),
                    None => Err(OrmError::RecordNotFound {
                        model: schema.name.clone(),
                        id: id.to_string(),
                    }),
                }
            }
            _ => Err(OrmError::Db(DbError::Unsupported("write result shape"))),
        }
    }
}

/// Document-style stores return empty results for unknown collections, but
/// the relational engine errors; normalize reads of a missing table to an
/// empty result so `find`/`select` behave uniformly before any write.
fn read_or_empty(res: Result<QueryResult, DbError>) -> Result<QueryResult, OrmError> {
    match res {
        Ok(r) => Ok(r),
        Err(DbError::NoSuchTable(_)) => Ok(QueryResult::Rows(Vec::new())),
        Err(e) => Err(e.into()),
    }
}
