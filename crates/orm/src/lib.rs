//! Dynamic ORM layer with per-engine adapters and query interception.
//!
//! Synapse "leverages ORMs to abstract most DB specific logic" (§4.1): the
//! ORM is where objects are created, updated, destroyed, and reflected upon,
//! and the layer between the ORM and the DB driver is where Synapse's query
//! interceptor sits. This crate provides:
//!
//! * [`Orm`] — the object interface: CRUD on dynamic [`Record`]s, model
//!   schemas, associations, active-model callbacks
//!   (`before`/`after` × `create`/`update`/`destroy`), and virtual
//!   attributes;
//! * [`adapters`] — one adapter per ORM of Table 3 (ActiveRecord, Mongoid,
//!   Cequel, Stretcher, Neo4j, NoBrainer), each translating generic CRUD to
//!   its engine's query AST and handling vendor quirks: `RETURNING`-less
//!   engines read written rows back (§4.1), SQL flattens array attributes to
//!   text (§3.3 Example 3), search engines configure analyzers, the graph
//!   adapter exposes edges;
//! * [`QueryObserver`] — the interception surface: every read of records
//!   and every write (with its pre-declared intent, so write dependencies
//!   can be locked *before* the query runs, §4.2) flows through registered
//!   observers. Synapse's publisher is exactly such an observer.
//!
//! [`Record`]: synapse_model::Record

pub mod adapter;
pub mod adapters;
pub mod callbacks;
pub mod error;
pub mod flags;
pub mod observer;
pub mod orm;
pub mod virtuals;

pub use adapter::Adapter;
pub use callbacks::{CallbackCtx, CallbackPoint};
pub use error::OrmError;
pub use flags::{is_replicating, with_replication_flag, without_replication_flag};
pub use observer::{QueryObserver, WriteExec, WriteIntent, WriteKind};
pub use orm::{Changes, Orm};
pub use virtuals::VirtualAttr;
