//! The append-only segmented write-ahead log under the broker.
//!
//! Every queue mutation that must survive a process crash — enqueue, ack,
//! dead-letter, decommission, reinstate, and periodic per-queue
//! checkpoints — is framed and appended here before (or atomically with)
//! the in-memory state change. Recovery is a pure fold over the log:
//! re-open the directory, replay every decodable frame, and rebuild the
//! queues.
//!
//! # Segment format
//!
//! The log is a directory of fixed-name segment files
//! (`segment-00000000.wal`, `segment-00000001.wal`, …), each beginning
//! with a 16-byte header: the 8-byte magic `SYNWAL01` followed by the
//! segment index as a little-endian `u64`. After the header come
//! length-prefixed, CRC-framed entries:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! A frame whose length overruns the file, whose CRC mismatches, or whose
//! payload fails to decode marks the *torn tail*: replay stops there, the
//! file is truncated back to the last good frame, and the drop is counted.
//! Torn tails are expected — they are what a crash mid-append leaves
//! behind — and recovery must treat them as "these records never
//! happened", which is safe because an entry is only acknowledged upward
//! after its append returns.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] controls when appends are flushed to stable storage:
//! never (`Off`), every `n` appends (`Interval`), or before every append
//! returns (`EveryWrite`). The distinction only matters across a *power
//! failure*; a mere process crash loses nothing that reached the OS. The
//! fault plane models power failure with
//! [`Wal::simulate_power_failure`], which discards everything after the
//! last synced offset — so a soak running `EveryWrite` asserts zero loss
//! of confirmed appends, while `Off`/`Interval` runs assert only the
//! at-least-once envelope (the publisher journal re-covers the lost
//! tail).
//!
//! # Checkpoints and GC
//!
//! A checkpoint is not a side file: it is a [`WalRecord::Checkpoint`]
//! entry per queue, written into a *fresh* segment
//! ([`Wal::begin_checkpoint`] rolls first). Replay applies a checkpoint
//! by *replacing* the queue's pending state, so entries that interleave
//! between the roll and the checkpoint write are absorbed (they
//! happened-before the checkpoint under the queue lock and are therefore
//! contained in it). Once every queue's checkpoint is written *and
//! synced*, all strictly older segments are unreferenced and
//! [`Wal::gc_before`] deletes them. A crash anywhere in that protocol is
//! safe: the old segments are still on disk until the sync completes.

use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Magic bytes opening every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"SYNWAL01";
/// Segment header: magic + little-endian segment index.
const SEGMENT_HEADER_LEN: u64 = 16;
/// Frame header: payload length + payload CRC.
const FRAME_HEADER_LEN: u64 = 8;
/// Upper bound on a single frame payload; anything larger is treated as
/// corruption rather than allocated.
const MAX_FRAME_LEN: u32 = 64 << 20;

/// When appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (fastest; a power failure may lose the whole tail).
    Off,
    /// Fsync every `n` appends (and on segment roll).
    Interval(u32),
    /// Fsync before every append returns (a confirmed append is durable).
    EveryWrite,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(64)
    }
}

/// Configuration of a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one reaches this size.
    pub segment_max_bytes: u64,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A config with the default segment size (256 KiB) and fsync policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_max_bytes: 256 << 10,
            fsync: FsyncPolicy::default(),
        }
    }

    /// Sets the segment roll threshold.
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes;
        self
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }
}

/// A position in the log: segment index and byte offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct LogPos {
    /// Segment index.
    pub segment: u64,
    /// Byte offset within the segment (header included).
    pub offset: u64,
}

/// One durable log record. Queue names and payloads are owned strings —
/// the WAL is the cold path; the hot path shares allocations up to the
/// encode buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A message copy admitted to `queue` under delivery tag `tag`.
    Enqueue {
        /// Queue the copy was admitted to.
        queue: String,
        /// Per-queue monotonic delivery tag — the durable message id.
        tag: u64,
        /// Exchange (publisher app) the copy arrived through.
        exchange: String,
        /// Marshalled message payload.
        payload: String,
        /// Publisher origin stamp riding the envelope (0 = unstamped).
        origin_nanos: u64,
    },
    /// Tags consumed by acks on `queue` (batch-capable).
    Ack {
        /// Queue the acks apply to.
        queue: String,
        /// Acked delivery tags.
        tags: Vec<u64>,
    },
    /// An unacked delivery routed to `queue`'s dead-letter store.
    DeadLetter {
        /// Queue the delivery belonged to.
        queue: String,
        /// The dead-lettered delivery tag.
        tag: u64,
    },
    /// `queue` was decommissioned; its backlog was discarded.
    QueueKilled {
        /// The decommissioned queue.
        queue: String,
    },
    /// `queue` was reinstated empty after a decommission.
    QueueReinstated {
        /// The reinstated queue.
        queue: String,
    },
    /// Point-in-time state of one queue; replay *replaces* the queue's
    /// pending/dead state with it (older entries are absorbed).
    Checkpoint {
        /// The checkpointed queue.
        queue: String,
        /// Whether the queue was decommissioned at checkpoint time.
        decommissioned: bool,
        /// Next delivery tag to assign.
        next_tag: u64,
        /// Pending (ready + unacked) deliveries:
        /// `(tag, exchange, payload, origin_nanos, redelivered)`.
        pending: Vec<(u64, String, String, u64, bool)>,
        /// Dead-lettered deliveries: `(tag, exchange, payload, origin_nanos)`.
        dead: Vec<(u64, String, String, u64)>,
    },
}

const TAG_ENQUEUE: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_DEAD_LETTER: u8 = 3;
const TAG_QUEUE_KILLED: u8 = 4;
const TAG_QUEUE_REINSTATED: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;

impl WalRecord {
    /// Appends the record's wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Enqueue {
                queue,
                tag,
                exchange,
                payload,
                origin_nanos,
            } => {
                out.push(TAG_ENQUEUE);
                put_str(out, queue);
                put_u64(out, *tag);
                put_str(out, exchange);
                put_str(out, payload);
                put_u64(out, *origin_nanos);
            }
            WalRecord::Ack { queue, tags } => {
                out.push(TAG_ACK);
                put_str(out, queue);
                put_u32(out, tags.len() as u32);
                for t in tags {
                    put_u64(out, *t);
                }
            }
            WalRecord::DeadLetter { queue, tag } => {
                out.push(TAG_DEAD_LETTER);
                put_str(out, queue);
                put_u64(out, *tag);
            }
            WalRecord::QueueKilled { queue } => {
                out.push(TAG_QUEUE_KILLED);
                put_str(out, queue);
            }
            WalRecord::QueueReinstated { queue } => {
                out.push(TAG_QUEUE_REINSTATED);
                put_str(out, queue);
            }
            WalRecord::Checkpoint {
                queue,
                decommissioned,
                next_tag,
                pending,
                dead,
            } => {
                out.push(TAG_CHECKPOINT);
                put_str(out, queue);
                out.push(u8::from(*decommissioned));
                put_u64(out, *next_tag);
                put_u32(out, pending.len() as u32);
                for (tag, exchange, payload, origin, redelivered) in pending {
                    put_u64(out, *tag);
                    put_str(out, exchange);
                    put_str(out, payload);
                    put_u64(out, *origin);
                    out.push(u8::from(*redelivered));
                }
                put_u32(out, dead.len() as u32);
                for (tag, exchange, payload, origin) in dead {
                    put_u64(out, *tag);
                    put_str(out, exchange);
                    put_str(out, payload);
                    put_u64(out, *origin);
                }
            }
        }
    }

    /// The record's wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one record from `bytes`; `None` on any malformation. Fully
    /// bounds-checked — arbitrary input never panics (the torn-tail
    /// property relies on this).
    pub fn decode(bytes: &[u8]) -> Option<WalRecord> {
        let mut r = ByteReader::new(bytes);
        let record = match r.take_u8()? {
            TAG_ENQUEUE => WalRecord::Enqueue {
                queue: r.take_str()?,
                tag: r.take_u64()?,
                exchange: r.take_str()?,
                payload: r.take_str()?,
                origin_nanos: r.take_u64()?,
            },
            TAG_ACK => {
                let queue = r.take_str()?;
                let n = r.take_u32()? as usize;
                // Cap before allocating: a corrupt count must not OOM.
                if n > bytes.len() {
                    return None;
                }
                let mut tags = Vec::with_capacity(n);
                for _ in 0..n {
                    tags.push(r.take_u64()?);
                }
                WalRecord::Ack { queue, tags }
            }
            TAG_DEAD_LETTER => WalRecord::DeadLetter {
                queue: r.take_str()?,
                tag: r.take_u64()?,
            },
            TAG_QUEUE_KILLED => WalRecord::QueueKilled {
                queue: r.take_str()?,
            },
            TAG_QUEUE_REINSTATED => WalRecord::QueueReinstated {
                queue: r.take_str()?,
            },
            TAG_CHECKPOINT => {
                let queue = r.take_str()?;
                let decommissioned = r.take_u8()? != 0;
                let next_tag = r.take_u64()?;
                let n_pending = r.take_u32()? as usize;
                if n_pending > bytes.len() {
                    return None;
                }
                let mut pending = Vec::with_capacity(n_pending);
                for _ in 0..n_pending {
                    pending.push((
                        r.take_u64()?,
                        r.take_str()?,
                        r.take_str()?,
                        r.take_u64()?,
                        r.take_u8()? != 0,
                    ));
                }
                let n_dead = r.take_u32()? as usize;
                if n_dead > bytes.len() {
                    return None;
                }
                let mut dead = Vec::with_capacity(n_dead);
                for _ in 0..n_dead {
                    dead.push((r.take_u64()?, r.take_str()?, r.take_str()?, r.take_u64()?));
                }
                WalRecord::Checkpoint {
                    queue,
                    decommissioned,
                    next_tag,
                    pending,
                    dead,
                }
            }
            _ => return None,
        };
        // Trailing garbage means the frame length lied about the payload.
        if r.remaining() != 0 {
            return None;
        }
        Some(record)
    }
}

/// Little-endian `u32` append.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian `u64` append.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed UTF-8 string append.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked sequential reader over a byte slice; every `take_*`
/// returns `None` instead of panicking on underrun.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let bytes = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let bytes = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Option<String> {
        let len = self.take_u32()? as usize;
        let end = self.pos.checked_add(len)?;
        let bytes = self.bytes.get(self.pos..end)?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// IEEE CRC-32 (the Ethernet/zlib polynomial), table-driven; the table is
/// built at compile time so the hot path is one lookup per byte.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for b in bytes {
        crc = TABLE[((crc ^ *b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Counters over one [`Wal`]'s lifetime (replay counters cover the
/// `open` that produced it).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended (frames included).
    pub bytes_appended: u64,
    /// Fsyncs issued.
    pub fsyncs: u64,
    /// Segment rolls (checkpoint rolls included).
    pub segments_rolled: u64,
    /// Whole segment files removed by GC.
    pub segments_removed: u64,
    /// Entries replayed at open.
    pub replayed_entries: u64,
    /// Torn/corrupt frames dropped (and truncated) at open.
    pub torn_entries_dropped: u64,
    /// Fsyncs swallowed by the armed dropped-fsync fault.
    pub fsyncs_dropped: u64,
}

/// Summary of the replay performed by [`Wal::open`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Records decoded and returned.
    pub entries_replayed: u64,
    /// Torn/corrupt frames dropped (the file was truncated back).
    pub torn_entries_dropped: u64,
    /// Bytes scanned across all segments.
    pub bytes_scanned: u64,
}

#[derive(Debug)]
struct WalInner {
    file: File,
    segment: u64,
    /// Write offset in the active segment (header included).
    offset: u64,
    /// Offset known durable (advanced by fsync; reset on roll).
    synced_offset: u64,
    /// Appends since the last fsync (for `FsyncPolicy::Interval`).
    unsynced_appends: u32,
    /// Reusable frame-encode buffer.
    buf: Vec<u8>,
}

/// The segmented write-ahead log. Internally locked; share via `Arc`.
#[derive(Debug)]
pub struct Wal {
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    /// Set once a crash fault fired (or a real IO error poisoned the
    /// log); every later append fails fast.
    poisoned: AtomicBool,
    /// Fault arming: the next append writes only this many frame bytes,
    /// then poisons (kill mid-append). `u64::MAX` = disarmed.
    partial_append_keep: AtomicU64,
    /// Fault arming: swallow the next `n` fsyncs (dropped-fsync fault).
    drop_fsyncs: AtomicU64,
    appends: AtomicU64,
    bytes_appended: AtomicU64,
    fsyncs: AtomicU64,
    fsyncs_dropped: AtomicU64,
    segments_rolled: AtomicU64,
    segments_removed: AtomicU64,
    replayed_entries: AtomicU64,
    torn_entries_dropped: AtomicU64,
}

/// Error returned by appends after the log was poisoned by a crash fault.
fn poisoned_err() -> io::Error {
    io::Error::other("wal poisoned by injected crash fault")
}

fn segment_path(dir: &std::path::Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.wal"))
}

fn write_segment_header(file: &mut File, index: u64) -> io::Result<()> {
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    header[..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..].copy_from_slice(&index.to_le_bytes());
    file.write_all(&header)
}

impl Wal {
    /// Opens (or creates) the log at `cfg.dir`, replaying every decodable
    /// record. Returns the live log, the replayed records in append
    /// order, and the replay summary. A torn tail is truncated away; a
    /// corrupt frame in a non-final segment also stops replay there
    /// (nothing after a hole can be trusted to apply in order).
    pub fn open(cfg: WalConfig) -> io::Result<(Wal, Vec<WalRecord>, ReplaySummary)> {
        fs::create_dir_all(&cfg.dir)?;
        let mut indexes: Vec<u64> = fs::read_dir(&cfg.dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let index = name
                    .strip_prefix("segment-")?
                    .strip_suffix(".wal")?
                    .parse()
                    .ok()?;
                Some(index)
            })
            .collect();
        indexes.sort_unstable();

        let mut records = Vec::new();
        let mut summary = ReplaySummary::default();
        let mut stop = false;
        for (i, &index) in indexes.iter().enumerate() {
            if stop {
                // A hole mid-log: later segments cannot be applied in
                // order, so they are dropped (counted, not silently).
                summary.torn_entries_dropped += 1;
                let _ = fs::remove_file(segment_path(&cfg.dir, index));
                continue;
            }
            let is_last = i == indexes.len() - 1;
            let path = segment_path(&cfg.dir, index);
            let bytes = fs::read(&path)?;
            summary.segments_scanned += 1;
            summary.bytes_scanned += bytes.len() as u64;
            let good_end = replay_segment(&bytes, index, &mut records, &mut summary);
            if (good_end as u64) < bytes.len() as u64 {
                // Torn/corrupt tail: truncate the file back to the last
                // good frame and stop trusting anything after it.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(good_end as u64)?;
                file.sync_all()?;
                if !is_last {
                    stop = true;
                }
            }
        }
        summary.entries_replayed = records.len() as u64;

        // Append to the last surviving segment, or start segment 0.
        let active = indexes.last().copied().unwrap_or(0);
        let path = segment_path(&cfg.dir, active);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut offset = file.metadata()?.len();
        if offset < SEGMENT_HEADER_LEN {
            file.set_len(0)?;
            write_segment_header(&mut file, active)?;
            file.sync_all()?;
            offset = SEGMENT_HEADER_LEN;
        }

        let wal = Wal {
            inner: Mutex::new(WalInner {
                file,
                segment: active,
                offset,
                // Everything read back from disk is treated as durable.
                synced_offset: offset,
                unsynced_appends: 0,
                buf: Vec::with_capacity(256),
            }),
            cfg,
            poisoned: AtomicBool::new(false),
            partial_append_keep: AtomicU64::new(u64::MAX),
            drop_fsyncs: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            bytes_appended: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fsyncs_dropped: AtomicU64::new(0),
            segments_rolled: AtomicU64::new(0),
            segments_removed: AtomicU64::new(0),
            replayed_entries: AtomicU64::new(summary.entries_replayed),
            torn_entries_dropped: AtomicU64::new(summary.torn_entries_dropped),
        };
        Ok((wal, records, summary))
    }

    /// The log directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.cfg.dir
    }

    /// Appends one record, framed and (per policy) fsynced. Returns the
    /// position the frame was written at.
    pub fn append(&self, record: &WalRecord) -> io::Result<LogPos> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        let mut inner = self.inner.lock();
        if inner.offset >= self.cfg.segment_max_bytes.max(SEGMENT_HEADER_LEN + 1) {
            self.roll_locked(&mut inner)?;
        }
        let mut buf = std::mem::take(&mut inner.buf);
        buf.clear();
        // Reserve the frame header, encode in place, then backfill.
        buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN as usize]);
        record.encode_into(&mut buf);
        let payload_len = (buf.len() as u64 - FRAME_HEADER_LEN) as u32;
        let crc = crc32(&buf[FRAME_HEADER_LEN as usize..]);
        buf[..4].copy_from_slice(&payload_len.to_le_bytes());
        buf[4..8].copy_from_slice(&crc.to_le_bytes());

        // Kill-mid-append fault: write a strict prefix of the frame, then
        // die. The torn frame is exactly what a crashed process leaves.
        let keep = self.partial_append_keep.swap(u64::MAX, Ordering::AcqRel);
        if keep != u64::MAX {
            let cut = (keep as usize).min(buf.len().saturating_sub(1));
            let result = inner.file.write_all(&buf[..cut]).and_then(|_| inner.file.sync_all());
            inner.buf = buf;
            self.poisoned.store(true, Ordering::Release);
            result?;
            return Err(poisoned_err());
        }

        let write = inner.file.write_all(&buf);
        let frame_len = buf.len() as u64;
        inner.buf = buf;
        if let Err(e) = write {
            self.poisoned.store(true, Ordering::Release);
            return Err(e);
        }
        let pos = LogPos {
            segment: inner.segment,
            offset: inner.offset,
        };
        inner.offset += frame_len;
        inner.unsynced_appends += 1;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_appended.fetch_add(frame_len, Ordering::Relaxed);
        match self.cfg.fsync {
            FsyncPolicy::Off => {}
            FsyncPolicy::EveryWrite => self.sync_locked(&mut inner)?,
            FsyncPolicy::Interval(n) => {
                if inner.unsynced_appends >= n.max(1) {
                    self.sync_locked(&mut inner)?;
                }
            }
        }
        Ok(pos)
    }

    /// Forces an fsync of the active segment (subject to the armed
    /// dropped-fsync fault).
    pub fn sync(&self) -> io::Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner)
    }

    fn sync_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        // Dropped-fsync fault: report success without making anything
        // durable — the reordering a lying disk/controller produces.
        let mut armed = self.drop_fsyncs.load(Ordering::Acquire);
        while armed > 0 {
            match self.drop_fsyncs.compare_exchange(
                armed,
                armed - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.fsyncs_dropped.fetch_add(1, Ordering::Relaxed);
                    inner.unsynced_appends = 0;
                    return Ok(());
                }
                Err(observed) => armed = observed,
            }
        }
        inner.file.sync_all()?;
        inner.synced_offset = inner.offset;
        inner.unsynced_appends = 0;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn roll_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        // Closing segments are always made fully durable, so only the
        // active segment can ever hold an unsynced tail.
        inner.file.sync_all()?;
        let next = inner.segment + 1;
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.cfg.dir, next))?;
        write_segment_header(&mut file, next)?;
        file.sync_all()?;
        inner.file = file;
        inner.segment = next;
        inner.offset = SEGMENT_HEADER_LEN;
        inner.synced_offset = SEGMENT_HEADER_LEN;
        inner.unsynced_appends = 0;
        self.segments_rolled.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Current append position.
    pub fn position(&self) -> LogPos {
        let inner = self.inner.lock();
        LogPos {
            segment: inner.segment,
            offset: inner.offset,
        }
    }

    /// Rolls to a fresh segment and returns its index — the checkpoint
    /// boundary: checkpoint records written after this land at or past
    /// the returned segment, so once they are synced every strictly older
    /// segment is garbage.
    pub fn begin_checkpoint(&self) -> io::Result<u64> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        let mut inner = self.inner.lock();
        self.roll_locked(&mut inner)?;
        Ok(inner.segment)
    }

    /// Deletes every segment file with index < `segment`. Returns how
    /// many were removed. Call only after the checkpoint records covering
    /// them are synced.
    pub fn gc_before(&self, segment: u64) -> io::Result<u64> {
        let active = self.inner.lock().segment;
        let mut removed = 0u64;
        for entry in fs::read_dir(&self.cfg.dir)? {
            let entry = entry?;
            let Some(name) = entry.file_name().into_string().ok() else {
                continue;
            };
            let Some(index) = name
                .strip_prefix("segment-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            if index < segment.min(active) {
                fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        self.segments_removed.fetch_add(removed, Ordering::Relaxed);
        Ok(removed)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            segments_rolled: self.segments_rolled.load(Ordering::Relaxed),
            segments_removed: self.segments_removed.load(Ordering::Relaxed),
            replayed_entries: self.replayed_entries.load(Ordering::Relaxed),
            torn_entries_dropped: self.torn_entries_dropped.load(Ordering::Relaxed),
            fsyncs_dropped: self.fsyncs_dropped.load(Ordering::Relaxed),
        }
    }

    /// Whether a crash fault (or IO error) has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Crash fault: the next append writes only the first `keep_bytes`
    /// of its frame (clamped to a strict prefix), then fails and poisons
    /// the log — a process killed mid-append.
    pub fn inject_partial_append(&self, keep_bytes: u64) {
        self.partial_append_keep.store(keep_bytes, Ordering::Release);
    }

    /// Crash fault: the next `n` fsyncs report success without syncing,
    /// so a later power failure loses more than the policy promises.
    pub fn inject_drop_fsyncs(&self, n: u64) {
        self.drop_fsyncs.fetch_add(n, Ordering::AcqRel);
    }

    /// Crash fault: power failure. Everything after the last *actually
    /// synced* offset of the active segment is discarded (closed segments
    /// are synced on roll and survive whole), and the log is poisoned.
    /// Reopen the directory to recover.
    pub fn simulate_power_failure(&self) -> io::Result<()> {
        let inner = self.inner.lock();
        self.poisoned.store(true, Ordering::Release);
        let path = segment_path(&self.cfg.dir, inner.segment);
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(inner.synced_offset)?;
        file.sync_all()?;
        Ok(())
    }
}

/// Replays one segment's bytes into `records`; returns the byte offset
/// just past the last good frame (truncation point for a torn tail).
fn replay_segment(
    bytes: &[u8],
    expected_index: u64,
    records: &mut Vec<WalRecord>,
    summary: &mut ReplaySummary,
) -> usize {
    let header_len = SEGMENT_HEADER_LEN as usize;
    if bytes.len() < header_len
        || &bytes[..8] != SEGMENT_MAGIC
        || u64::from_le_bytes(bytes[8..16].try_into().expect("len checked")) != expected_index
    {
        summary.torn_entries_dropped += 1;
        return 0;
    }
    let mut pos = header_len;
    loop {
        let Some(frame_header) = bytes.get(pos..pos + FRAME_HEADER_LEN as usize) else {
            if pos < bytes.len() {
                summary.torn_entries_dropped += 1;
            }
            return pos;
        };
        let len = u32::from_le_bytes(frame_header[..4].try_into().expect("len checked"));
        let crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("len checked"));
        if len > MAX_FRAME_LEN {
            summary.torn_entries_dropped += 1;
            return pos;
        }
        let start = pos + FRAME_HEADER_LEN as usize;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            summary.torn_entries_dropped += 1;
            return pos;
        };
        if crc32(payload) != crc {
            summary.torn_entries_dropped += 1;
            return pos;
        }
        let Some(record) = WalRecord::decode(payload) else {
            summary.torn_entries_dropped += 1;
            return pos;
        };
        records.push(record);
        pos = start + len as usize;
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Fresh unique directory under the system temp dir (no external
    /// tempfile crate in this workspace).
    pub(crate) fn temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "synapse-wal-{label}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn enqueue(queue: &str, tag: u64, payload: &str) -> WalRecord {
        WalRecord::Enqueue {
            queue: queue.into(),
            tag,
            exchange: "x".into(),
            payload: payload.into(),
            origin_nanos: 7,
        }
    }

    #[test]
    fn records_round_trip() {
        let samples = vec![
            enqueue("q", 3, "body"),
            WalRecord::Ack {
                queue: "q".into(),
                tags: vec![1, 2, 9],
            },
            WalRecord::DeadLetter {
                queue: "q".into(),
                tag: 4,
            },
            WalRecord::QueueKilled { queue: "q".into() },
            WalRecord::QueueReinstated { queue: "q".into() },
            WalRecord::Checkpoint {
                queue: "q".into(),
                decommissioned: true,
                next_tag: 10,
                pending: vec![(5, "x".into(), "p".into(), 1, true)],
                dead: vec![(2, "x".into(), "poison".into(), 0)],
            },
        ];
        for record in samples {
            let encoded = record.encode();
            assert_eq!(WalRecord::decode(&encoded), Some(record));
        }
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let encoded = enqueue("q", 1, "body").encode();
        for cut in 0..encoded.len() {
            assert_eq!(WalRecord::decode(&encoded[..cut]), None, "cut at {cut}");
        }
        let mut padded = encoded;
        padded.push(0);
        assert_eq!(WalRecord::decode(&padded), None);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = temp_dir("replay");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::Off);
        let (wal, records, _) = Wal::open(cfg.clone()).unwrap();
        assert!(records.is_empty());
        for i in 0..20u64 {
            wal.append(&enqueue("q", i, &format!("m{i}"))).unwrap();
        }
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 20);
        assert_eq!(summary.torn_entries_dropped, 0);
        for (i, record) in replayed.iter().enumerate() {
            assert_eq!(record, &enqueue("q", i as u64, &format!("m{i}")));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_replay_spans_them() {
        let dir = temp_dir("roll");
        let cfg = WalConfig::new(&dir)
            .segment_max_bytes(128)
            .fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..50u64 {
            wal.append(&enqueue("q", i, "padpadpadpad")).unwrap();
        }
        assert!(wal.stats().segments_rolled >= 2);
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 50);
        assert!(summary.segments_scanned >= 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..10u64 {
            wal.append(&enqueue("q", i, "payload")).unwrap();
        }
        drop(wal);
        // Chop a few bytes off the tail: the final frame is torn.
        let path = segment_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (_, replayed, summary) = Wal::open(cfg.clone()).unwrap();
        assert_eq!(replayed.len(), 9, "the torn final frame is dropped");
        assert_eq!(summary.torn_entries_dropped, 1);
        // The truncation is persistent: a second reopen is clean.
        let (_, again, summary2) = Wal::open(cfg).unwrap();
        assert_eq!(again.len(), 9);
        assert_eq!(summary2.torn_entries_dropped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_append_fault_tears_exactly_one_frame() {
        let dir = temp_dir("partial");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..5u64 {
            wal.append(&enqueue("q", i, "survivor")).unwrap();
        }
        wal.inject_partial_append(6);
        assert!(wal.append(&enqueue("q", 99, "torn")).is_err());
        assert!(wal.is_poisoned());
        assert!(wal.append(&enqueue("q", 100, "after")).is_err());
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 5, "only confirmed appends replay");
        assert_eq!(summary.torn_entries_dropped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn power_failure_respects_fsync_policy() {
        // EveryWrite: nothing confirmed is lost.
        let dir = temp_dir("power-every");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..8u64 {
            wal.append(&enqueue("q", i, "durable")).unwrap();
        }
        wal.simulate_power_failure().unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 8);
        let _ = fs::remove_dir_all(&dir);

        // Off: the whole unsynced tail is lost.
        let dir = temp_dir("power-off");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..8u64 {
            wal.append(&enqueue("q", i, "volatile")).unwrap();
        }
        wal.simulate_power_failure().unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert!(replayed.is_empty(), "unsynced appends do not survive power loss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_fsyncs_lose_the_lying_window_on_power_failure() {
        let dir = temp_dir("dropfsync");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..4u64 {
            wal.append(&enqueue("q", i, "synced")).unwrap();
        }
        wal.inject_drop_fsyncs(3);
        for i in 4..7u64 {
            wal.append(&enqueue("q", i, "lied-about")).unwrap();
        }
        assert_eq!(wal.stats().fsyncs_dropped, 3);
        wal.simulate_power_failure().unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 4, "the dropped-fsync window is lost");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_roll_and_gc_shrink_the_log() {
        let dir = temp_dir("gc");
        let cfg = WalConfig::new(&dir)
            .segment_max_bytes(256)
            .fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..40u64 {
            wal.append(&enqueue("q", i, "padpadpadpadpad")).unwrap();
        }
        let boundary = wal.begin_checkpoint().unwrap();
        wal.append(&WalRecord::Checkpoint {
            queue: "q".into(),
            decommissioned: false,
            next_tag: 41,
            pending: vec![(40, "x".into(), "live".into(), 0, false)],
            dead: vec![],
        })
        .unwrap();
        wal.sync().unwrap();
        let removed = wal.gc_before(boundary).unwrap();
        assert!(removed >= 1);
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(summary.segments_scanned, 1, "only the checkpoint segment survives");
        assert!(matches!(replayed[0], WalRecord::Checkpoint { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
