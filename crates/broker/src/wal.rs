//! The append-only segmented write-ahead log under the broker.
//!
//! Every queue mutation that must survive a process crash — enqueue, ack,
//! dead-letter, decommission, reinstate, and periodic per-queue
//! checkpoints — is framed and appended here before (or atomically with)
//! the in-memory state change. Recovery is a pure fold over the log:
//! re-open the directory, replay every decodable frame, and rebuild the
//! queues.
//!
//! # Segment format
//!
//! The log is a directory of fixed-name segment files
//! (`segment-00000000.wal`, `segment-00000001.wal`, …), each beginning
//! with a 16-byte header: the 8-byte magic `SYNWAL01` followed by the
//! segment index as a little-endian `u64`. After the header come
//! length-prefixed, CRC-framed entries:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! A frame whose length overruns the file, whose CRC mismatches, or whose
//! payload fails to decode marks the *torn tail*: replay stops there, the
//! file is truncated back to the last good frame, and the drop is counted.
//! Torn tails are expected — they are what a crash mid-append leaves
//! behind — and recovery must treat them as "these records never
//! happened", which is safe because an entry is only acknowledged upward
//! after its append returns.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] controls when appends are flushed to stable storage:
//! never (`Off`), every `n` appends (`Interval`), or before every append
//! returns (`EveryWrite`). The distinction only matters across a *power
//! failure*; a mere process crash loses nothing that reached the OS. The
//! fault plane models power failure with
//! [`Wal::simulate_power_failure`], which discards everything after the
//! last synced offset — so a soak running `EveryWrite` asserts zero loss
//! of confirmed appends, while `Off`/`Interval` runs assert only the
//! at-least-once envelope (the publisher journal re-covers the lost
//! tail).
//!
//! # Group commit
//!
//! With `group_commit` on (the default), appenders frame records into
//! thread-local buffers *outside* every WAL lock and stage them into a
//! shared batch under a short-lived staging lock. The first stager
//! becomes the *leader*: it takes the whole staged batch, releases the
//! staging lock (so the next epoch keeps filling), writes the batch with
//! one syscall and at most one policy fsync under the IO lock, then
//! publishes the batch's *commit epoch* and wakes the followers parked
//! on it. One lock hand-off and one fsync thereby amortize over every
//! record staged while the previous commit was in flight. Ack,
//! dead-letter, and lifecycle records ride a configurable non-blocking
//! lane ([`AckDurability::Relaxed`], the default): they are staged and
//! the call returns as soon as a leader is responsible for their epoch,
//! without waiting out the write or fsync — losing that staged tail in
//! a crash merely redelivers, which the at-least-once envelope already
//! allows. Setting `group_commit` to `false` restores the historical
//! one-lock per-record append path (kept as the bench baseline arm).
//!
//! # Checkpoints and GC
//!
//! A checkpoint is not a side file: it is a [`WalRecord::Checkpoint`]
//! entry per queue, written into a *fresh* segment
//! ([`Wal::begin_checkpoint`] rolls first). Replay applies a checkpoint
//! by *replacing* the queue's pending state, so entries that interleave
//! between the roll and the checkpoint write are absorbed (they
//! happened-before the checkpoint under the queue lock and are therefore
//! contained in it). Once every queue's checkpoint is written *and
//! synced*, all strictly older segments are unreferenced and
//! [`Wal::gc_before`] deletes them. A crash anywhere in that protocol is
//! safe: the old segments are still on disk until the sync completes.

use parking_lot::{Condvar, Mutex, MutexGuard};
use std::cell::RefCell;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;
use synapse_telemetry::{mono_nanos, Histogram, HistogramSnapshot};

/// Magic bytes opening every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"SYNWAL01";
/// Segment header: magic + little-endian segment index.
const SEGMENT_HEADER_LEN: u64 = 16;
/// Frame header: payload length + payload CRC.
const FRAME_HEADER_LEN: u64 = 8;
/// Upper bound on a single frame payload; anything larger is treated as
/// corruption rather than allocated.
const MAX_FRAME_LEN: u32 = 64 << 20;
/// Upper bound on how much of a segment is physically preallocated.
/// Oversized (or effectively unbounded, `u64::MAX`-in-tests) segment
/// configs get this much metadata-free runway; appends past it extend
/// the file normally and pay the journal again — correctness is
/// unaffected either way.
const PREALLOC_MAX_BYTES: u64 = 64 << 20;

/// When appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (fastest; a power failure may lose the whole tail).
    Off,
    /// Fsync every `n` appends (and on segment roll). Under group
    /// commit the unit of append is the committed *group*, so the
    /// interval counts groups there — the loss window is `n` groups,
    /// bounded in bytes by `n * group_max_bytes`.
    Interval(u32),
    /// Fsync before every append returns (a confirmed append is durable).
    EveryWrite,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(64)
    }
}

/// Durability class of ack/dead-letter/lifecycle records (enqueues are
/// always blocking: a publish confirmed upward must be on the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckDurability {
    /// Stage the record into the next group commit and return without
    /// waiting for the write or fsync (default). Losing the staged tail
    /// in a crash merely redelivers — at-least-once is preserved,
    /// exactly-once was never promised.
    #[default]
    Relaxed,
    /// Wait out the group commit (and its policy fsync) like an enqueue.
    Strict,
}

/// Configuration of a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one reaches this size.
    pub segment_max_bytes: u64,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Amortize appends through the leader/follower group-commit
    /// protocol. `false` restores the historical one-lock per-record
    /// append path (the bench baseline arm).
    pub group_commit: bool,
    /// Soft cap on staged-but-unwritten group-commit bytes: blocking
    /// appenders wait for the in-flight commit to drain before staging
    /// past it (the relaxed lane stages regardless).
    pub group_max_bytes: u64,
    /// How long a leader lingers over a batch of at most one frame,
    /// waiting for co-committers, before paying the write + fsync.
    /// Zero (the default) disables the linger.
    pub group_max_wait: Duration,
    /// Durability class of ack/dead-letter/lifecycle records.
    pub ack_durability: AckDurability,
}

impl WalConfig {
    /// A config with the default segment size (256 KiB), fsync policy,
    /// and group commit on with a 4 MiB staging cap and no linger.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_max_bytes: 256 << 10,
            fsync: FsyncPolicy::default(),
            group_commit: true,
            group_max_bytes: 4 << 20,
            group_max_wait: Duration::ZERO,
            ack_durability: AckDurability::default(),
        }
    }

    /// Sets the segment roll threshold.
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes;
        self
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Enables or disables the group-commit protocol.
    pub fn group_commit(mut self, enabled: bool) -> Self {
        self.group_commit = enabled;
        self
    }

    /// Sets the staged-bytes soft cap for group commit.
    pub fn group_max_bytes(mut self, bytes: u64) -> Self {
        self.group_max_bytes = bytes.max(1);
        self
    }

    /// Sets the leader linger for near-empty batches.
    pub fn group_max_wait(mut self, wait: Duration) -> Self {
        self.group_max_wait = wait;
        self
    }

    /// Sets the ack/dead-letter/lifecycle durability class.
    pub fn ack_durability(mut self, mode: AckDurability) -> Self {
        self.ack_durability = mode;
        self
    }
}

/// A position in the log: segment index and byte offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct LogPos {
    /// Segment index.
    pub segment: u64,
    /// Byte offset within the segment (header included).
    pub offset: u64,
}

/// One durable log record. Queue names and payloads are owned strings —
/// the WAL is the cold path; the hot path shares allocations up to the
/// encode buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A message copy admitted to `queue` under delivery tag `tag`.
    Enqueue {
        /// Queue the copy was admitted to.
        queue: String,
        /// Per-queue monotonic delivery tag — the durable message id.
        tag: u64,
        /// Exchange (publisher app) the copy arrived through.
        exchange: String,
        /// Marshalled message payload.
        payload: String,
        /// Publisher origin stamp riding the envelope (0 = unstamped).
        origin_nanos: u64,
    },
    /// Tags consumed by acks on `queue` (batch-capable).
    Ack {
        /// Queue the acks apply to.
        queue: String,
        /// Acked delivery tags.
        tags: Vec<u64>,
    },
    /// An unacked delivery routed to `queue`'s dead-letter store.
    DeadLetter {
        /// Queue the delivery belonged to.
        queue: String,
        /// The dead-lettered delivery tag.
        tag: u64,
    },
    /// `queue` was decommissioned; its backlog was discarded.
    QueueKilled {
        /// The decommissioned queue.
        queue: String,
    },
    /// `queue` was reinstated empty after a decommission.
    QueueReinstated {
        /// The reinstated queue.
        queue: String,
    },
    /// A bootstrap watermark marker injected into one partition of
    /// `queue`'s live stream (DBLog-style chunk interleaving). Replay
    /// resynthesizes the marker delivery — an unconsumed marker must
    /// survive a crash so a resumed bootstrap never mistakes a stale
    /// window for a closed one.
    Watermark {
        /// Queue the marker was admitted to.
        queue: String,
        /// Per-queue monotonic delivery tag (hint byte = partition).
        tag: u64,
        /// Bootstrap attempt the marker belongs to.
        session: u64,
        /// Chunk index within the attempt.
        chunk: u64,
        /// `false` = low watermark (window opens), `true` = high
        /// watermark (window closes).
        high: bool,
    },
    /// Point-in-time state of one queue; replay *replaces* the queue's
    /// pending/dead state with it (older entries are absorbed).
    Checkpoint {
        /// The checkpointed queue.
        queue: String,
        /// Whether the queue was decommissioned at checkpoint time.
        decommissioned: bool,
        /// Next delivery tag to assign.
        next_tag: u64,
        /// Pending (ready + unacked) deliveries:
        /// `(tag, exchange, payload, origin_nanos, redelivered)`.
        pending: Vec<(u64, String, String, u64, bool)>,
        /// Dead-lettered deliveries: `(tag, exchange, payload, origin_nanos)`.
        dead: Vec<(u64, String, String, u64)>,
    },
}

const TAG_ENQUEUE: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_DEAD_LETTER: u8 = 3;
const TAG_QUEUE_KILLED: u8 = 4;
const TAG_QUEUE_REINSTATED: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_WATERMARK: u8 = 7;

impl WalRecord {
    /// Appends the record's wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Enqueue {
                queue,
                tag,
                exchange,
                payload,
                origin_nanos,
            } => {
                out.push(TAG_ENQUEUE);
                put_str(out, queue);
                put_u64(out, *tag);
                put_str(out, exchange);
                put_str(out, payload);
                put_u64(out, *origin_nanos);
            }
            WalRecord::Ack { queue, tags } => {
                out.push(TAG_ACK);
                put_str(out, queue);
                put_u32(out, tags.len() as u32);
                for t in tags {
                    put_u64(out, *t);
                }
            }
            WalRecord::DeadLetter { queue, tag } => {
                out.push(TAG_DEAD_LETTER);
                put_str(out, queue);
                put_u64(out, *tag);
            }
            WalRecord::QueueKilled { queue } => {
                out.push(TAG_QUEUE_KILLED);
                put_str(out, queue);
            }
            WalRecord::QueueReinstated { queue } => {
                out.push(TAG_QUEUE_REINSTATED);
                put_str(out, queue);
            }
            WalRecord::Watermark {
                queue,
                tag,
                session,
                chunk,
                high,
            } => {
                out.push(TAG_WATERMARK);
                put_str(out, queue);
                put_u64(out, *tag);
                put_u64(out, *session);
                put_u64(out, *chunk);
                out.push(u8::from(*high));
            }
            WalRecord::Checkpoint {
                queue,
                decommissioned,
                next_tag,
                pending,
                dead,
            } => {
                out.push(TAG_CHECKPOINT);
                put_str(out, queue);
                out.push(u8::from(*decommissioned));
                put_u64(out, *next_tag);
                put_u32(out, pending.len() as u32);
                for (tag, exchange, payload, origin, redelivered) in pending {
                    put_u64(out, *tag);
                    put_str(out, exchange);
                    put_str(out, payload);
                    put_u64(out, *origin);
                    out.push(u8::from(*redelivered));
                }
                put_u32(out, dead.len() as u32);
                for (tag, exchange, payload, origin) in dead {
                    put_u64(out, *tag);
                    put_str(out, exchange);
                    put_str(out, payload);
                    put_u64(out, *origin);
                }
            }
        }
    }

    /// The record's wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one record from `bytes`; `None` on any malformation. Fully
    /// bounds-checked — arbitrary input never panics (the torn-tail
    /// property relies on this).
    pub fn decode(bytes: &[u8]) -> Option<WalRecord> {
        let mut r = ByteReader::new(bytes);
        let record = match r.take_u8()? {
            TAG_ENQUEUE => WalRecord::Enqueue {
                queue: r.take_str()?,
                tag: r.take_u64()?,
                exchange: r.take_str()?,
                payload: r.take_str()?,
                origin_nanos: r.take_u64()?,
            },
            TAG_ACK => {
                let queue = r.take_str()?;
                let n = r.take_u32()? as usize;
                // Cap before allocating: a corrupt count must not OOM.
                if n > bytes.len() {
                    return None;
                }
                let mut tags = Vec::with_capacity(n);
                for _ in 0..n {
                    tags.push(r.take_u64()?);
                }
                WalRecord::Ack { queue, tags }
            }
            TAG_DEAD_LETTER => WalRecord::DeadLetter {
                queue: r.take_str()?,
                tag: r.take_u64()?,
            },
            TAG_QUEUE_KILLED => WalRecord::QueueKilled {
                queue: r.take_str()?,
            },
            TAG_QUEUE_REINSTATED => WalRecord::QueueReinstated {
                queue: r.take_str()?,
            },
            TAG_WATERMARK => WalRecord::Watermark {
                queue: r.take_str()?,
                tag: r.take_u64()?,
                session: r.take_u64()?,
                chunk: r.take_u64()?,
                high: r.take_u8()? != 0,
            },
            TAG_CHECKPOINT => {
                let queue = r.take_str()?;
                let decommissioned = r.take_u8()? != 0;
                let next_tag = r.take_u64()?;
                let n_pending = r.take_u32()? as usize;
                if n_pending > bytes.len() {
                    return None;
                }
                let mut pending = Vec::with_capacity(n_pending);
                for _ in 0..n_pending {
                    pending.push((
                        r.take_u64()?,
                        r.take_str()?,
                        r.take_str()?,
                        r.take_u64()?,
                        r.take_u8()? != 0,
                    ));
                }
                let n_dead = r.take_u32()? as usize;
                if n_dead > bytes.len() {
                    return None;
                }
                let mut dead = Vec::with_capacity(n_dead);
                for _ in 0..n_dead {
                    dead.push((r.take_u64()?, r.take_str()?, r.take_str()?, r.take_u64()?));
                }
                WalRecord::Checkpoint {
                    queue,
                    decommissioned,
                    next_tag,
                    pending,
                    dead,
                }
            }
            _ => return None,
        };
        // Trailing garbage means the frame length lied about the payload.
        if r.remaining() != 0 {
            return None;
        }
        Some(record)
    }
}

/// Little-endian `u32` append.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian `u64` append.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed UTF-8 string append.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends one complete frame (`[len][crc][payload]`) for `record`.
/// Framing happens wherever the caller is — no WAL lock is involved.
pub fn frame_record_into(out: &mut Vec<u8>, record: &WalRecord) {
    let start = begin_frame(out);
    record.encode_into(out);
    finish_frame(out, start);
}

/// Appends an `Enqueue` frame straight from borrowed fields — the
/// hot-path equivalent of [`frame_record_into`] that skips materializing
/// owned strings for a [`WalRecord`].
pub fn frame_enqueue_into(
    out: &mut Vec<u8>,
    queue: &str,
    tag: u64,
    exchange: &str,
    payload: &str,
    origin_nanos: u64,
) {
    let start = begin_frame(out);
    out.push(TAG_ENQUEUE);
    put_str(out, queue);
    put_u64(out, tag);
    put_str(out, exchange);
    put_str(out, payload);
    put_u64(out, origin_nanos);
    finish_frame(out, start);
}

/// Reserves a frame header at the end of `out`; returns its offset for
/// [`finish_frame`].
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN as usize]);
    start
}

/// Backfills the length + CRC header of the frame opened at `frame_start`.
fn finish_frame(out: &mut [u8], frame_start: usize) {
    let payload_start = frame_start + FRAME_HEADER_LEN as usize;
    let len = (out.len() - payload_start) as u32;
    let crc = crc32(&out[payload_start..]);
    out[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
    out[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Bounds-checked sequential reader over a byte slice; every `take_*`
/// returns `None` instead of panicking on underrun.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let bytes = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let bytes = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Option<String> {
        let len = self.take_u32()? as usize;
        let end = self.pos.checked_add(len)?;
        let bytes = self.bytes.get(self.pos..end)?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// IEEE CRC-32 (the Ethernet/zlib polynomial), table-driven; the table is
/// built at compile time so the hot path is one lookup per byte.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for b in bytes {
        crc = TABLE[((crc ^ *b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Counters over one [`Wal`]'s lifetime (replay counters cover the
/// `open` that produced it).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended (frames included).
    pub bytes_appended: u64,
    /// Fsyncs issued.
    pub fsyncs: u64,
    /// Segment rolls (checkpoint rolls included).
    pub segments_rolled: u64,
    /// Whole segment files removed by GC.
    pub segments_removed: u64,
    /// Entries replayed at open.
    pub replayed_entries: u64,
    /// Torn/corrupt frames dropped (and truncated) at open.
    pub torn_entries_dropped: u64,
    /// Fsyncs swallowed by the armed dropped-fsync fault.
    pub fsyncs_dropped: u64,
    /// Group commits led (batches written; 0 with `group_commit` off).
    pub group_commits: u64,
}

/// Summary of the replay performed by [`Wal::open`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Records decoded and returned.
    pub entries_replayed: u64,
    /// Torn/corrupt frames dropped (the file was truncated back).
    pub torn_entries_dropped: u64,
    /// Bytes scanned across all segments.
    pub bytes_scanned: u64,
}

#[derive(Debug)]
struct WalInner {
    file: File,
    segment: u64,
    /// Write offset in the active segment (header included).
    offset: u64,
    /// Offset known durable (advanced by fsync; reset on roll).
    synced_offset: u64,
    /// Appends since the last fsync (for `FsyncPolicy::Interval` on the
    /// legacy per-record write path).
    unsynced_appends: u32,
    /// Committed groups since the last fsync was *initiated* (for
    /// `FsyncPolicy::Interval` under group commit). The group is the
    /// unit of append in that mode, so the interval counts groups —
    /// this is exactly the amortisation group commit exists to buy: a
    /// 64-frame epoch costs the same share of an fsync as a 1-frame
    /// one. The loss window becomes `n` groups (bounded in bytes by
    /// `n * group_max_bytes`) rather than `n` frames.
    unsynced_groups: u32,
}

/// A policy fsync owed for bytes already written, carried *out of* the
/// IO lock so the disk sync pipelines with the next epoch's write (and,
/// under `Interval`, with the appenders themselves). The dup'd handle
/// stays valid even if the active segment rolls while the sync runs;
/// `segment`/`offset` snapshot what the sync certifies durable.
struct PendingSync {
    file: File,
    segment: u64,
    offset: u64,
}

/// Staging state of the group-commit protocol, guarded by `Wal::group`.
/// The IO state (`WalInner`) is a separate lock that a leader acquires
/// only *after* releasing this one, so stagers keep filling the next
/// epoch while the current batch is being written and fsynced.
#[derive(Debug)]
struct GroupInner {
    /// Frames staged for the next commit (already framed: header + CRC).
    buf: Vec<u8>,
    /// Number of frames in `buf`.
    frames: u32,
    /// Epoch the currently staged bytes will commit in.
    staging_epoch: u64,
    /// Highest epoch fully written (and, per policy, fsynced).
    committed_epoch: u64,
    /// Whether some thread is currently leading a commit.
    leader_active: bool,
    /// Recycled batch buffer (swapped with `buf` each commit).
    spare: Vec<u8>,
}

thread_local! {
    /// Per-thread frame-encode buffer: records are framed here, outside
    /// every WAL lock, then copied into the staged batch under the
    /// (brief) group lock.
    static FRAME_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// How long a group-commit follower spins on the lock-free epoch mirror
/// before paying a futex park. Sized to comfortably cover a page-cache
/// batch write (a handful of microseconds); only blocking appenders spin,
/// the relaxed lane never waits at all.
const FOLLOWER_SPIN_NANOS: u64 = 30_000;

/// Staged bytes past which a relaxed-lane append self-elects as leader
/// instead of waiting for the next strict writer (clamped to
/// `group_max_bytes` for tiny configs).
const RELAXED_LEAD_BYTES: u64 = 16 << 10;

/// A group already this deep skips the configured linger — the write is
/// worth paying for without waiting on more stagers.
const GROUP_LINGER_FRAMES: u32 = 64;

/// The segmented write-ahead log. Internally locked; share via `Arc`.
#[derive(Debug)]
pub struct Wal {
    shared: Arc<WalShared>,
    /// Due interval syncs are handed to the background flusher through
    /// here; `None` when no flusher is running (non-group-commit
    /// configs, and policies whose syncs complete in the caller).
    sync_tx: Mutex<Option<mpsc::Sender<PendingSync>>>,
    /// The flusher itself, joined on drop so a closing log never
    /// abandons an fsync it already initiated.
    flusher: Option<std::thread::JoinHandle<()>>,
}

/// Everything the log actually is — shared between the public handle
/// and the background sync flusher. [`Wal`] derefs here, so the split
/// is invisible to every call site.
#[derive(Debug)]
pub struct WalShared {
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    /// Group-commit staging state; lock order is `group` before `inner`,
    /// and a leader drops `group` for the IO phase.
    group: Mutex<GroupInner>,
    /// Parks followers until their epoch commits (and backpressured
    /// stagers until the in-flight batch drains).
    group_cv: Condvar,
    /// Lock-free mirror of `GroupInner::committed_epoch` (published under
    /// the group lock): followers spin on this for the few microseconds a
    /// group write takes before paying a futex park.
    committed_cell: AtomicU64,
    /// True while a pipelined interval fsync is running off-lock. At
    /// most one is ever in flight: initiation is gated on this flag,
    /// so a slow disk accumulates sync *debt* (the interval counters
    /// keep growing) instead of a pileup of concurrent fsyncs all
    /// stalling the same inode.
    sync_inflight: AtomicBool,
    /// Set once a crash fault fired (or a real IO error poisoned the
    /// log); every later append fails fast.
    poisoned: AtomicBool,
    /// Fault arming: the next append writes only this many frame bytes,
    /// then poisons (kill mid-append). `u64::MAX` = disarmed.
    partial_append_keep: AtomicU64,
    /// Fault arming: swallow the next `n` fsyncs (dropped-fsync fault).
    drop_fsyncs: AtomicU64,
    appends: AtomicU64,
    bytes_appended: AtomicU64,
    fsyncs: AtomicU64,
    fsyncs_dropped: AtomicU64,
    segments_rolled: AtomicU64,
    segments_removed: AtomicU64,
    replayed_entries: AtomicU64,
    torn_entries_dropped: AtomicU64,
    group_commits: AtomicU64,
    /// Frames per group commit.
    group_size: Histogram,
    /// Nanoseconds followers spent parked waiting for their epoch.
    commit_wait: Histogram,
}

impl std::ops::Deref for Wal {
    type Target = WalShared;

    fn deref(&self) -> &WalShared {
        &self.shared
    }
}

/// Error returned by appends after the log was poisoned by a crash fault.
fn poisoned_err() -> io::Error {
    io::Error::other("wal poisoned by injected crash fault")
}

fn segment_path(dir: &std::path::Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.wal"))
}

fn write_segment_header(file: &mut File, index: u64) -> io::Result<()> {
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    header[..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..].copy_from_slice(&index.to_le_bytes());
    file.write_all(&header)
}

/// Physically zero-fills `file` from `from` to `len` and makes the
/// allocation durable, leaving the cursor at the start.
///
/// Segments are preallocated so the steady-state policy sync is a pure
/// data writeback: with the blocks and the file size already journaled,
/// `fdatasync` never has to commit metadata, and (decisively, for the
/// pipelined group-commit sync) never stalls concurrent appends to the
/// same inode behind a journal flush. The zeroes have to be *written*,
/// not `set_len`-sparse — a hole would defer extent allocation to the
/// first real append, dragging the journal right back into the hot
/// path. Appends then overwrite in place at the tracked offset (the
/// segment files are no longer opened `O_APPEND`), and replay treats an
/// all-zero tail as the clean end of the log.
/// How many bytes of a fresh segment to physically preallocate: the
/// roll threshold, floored at one header's worth and capped at
/// [`PREALLOC_MAX_BYTES`].
fn prealloc_capacity(segment_max_bytes: u64) -> u64 {
    segment_max_bytes.clamp(SEGMENT_HEADER_LEN + 1, PREALLOC_MAX_BYTES)
}

fn preallocate(file: &mut File, from: u64, len: u64) -> io::Result<()> {
    const CHUNK: usize = 64 << 10;
    if from < len {
        let zeros = vec![0u8; CHUNK.min((len - from) as usize)];
        file.seek(SeekFrom::Start(from))?;
        let mut left = len - from;
        while left > 0 {
            let n = left.min(zeros.len() as u64) as usize;
            file.write_all(&zeros[..n])?;
            left -= n as u64;
        }
        file.sync_all()?;
    }
    file.seek(SeekFrom::Start(0))?;
    Ok(())
}

impl Wal {
    /// Opens (or creates) the log at `cfg.dir`, replaying every decodable
    /// record. Returns the live log, the replayed records in append
    /// order, and the replay summary. A torn tail is truncated away; a
    /// corrupt frame in a non-final segment also stops replay there
    /// (nothing after a hole can be trusted to apply in order).
    pub fn open(cfg: WalConfig) -> io::Result<(Wal, Vec<WalRecord>, ReplaySummary)> {
        fs::create_dir_all(&cfg.dir)?;
        let mut indexes: Vec<u64> = fs::read_dir(&cfg.dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let index = name
                    .strip_prefix("segment-")?
                    .strip_suffix(".wal")?
                    .parse()
                    .ok()?;
                Some(index)
            })
            .collect();
        indexes.sort_unstable();

        let mut records = Vec::new();
        let mut summary = ReplaySummary::default();
        let mut stop = false;
        // Valid end of the last (active) segment — with preallocation
        // the file length is the segment's *capacity*, so the write
        // position must come from replay, not from metadata.
        let mut active_end: u64 = 0;
        for (i, &index) in indexes.iter().enumerate() {
            if stop {
                // A hole mid-log: later segments cannot be applied in
                // order, so they are dropped (counted, not silently).
                summary.torn_entries_dropped += 1;
                let _ = fs::remove_file(segment_path(&cfg.dir, index));
                continue;
            }
            let is_last = i == indexes.len() - 1;
            let path = segment_path(&cfg.dir, index);
            let bytes = fs::read(&path)?;
            summary.segments_scanned += 1;
            summary.bytes_scanned += bytes.len() as u64;
            let good_end = replay_segment(&bytes, index, &mut records, &mut summary);
            if !bytes[good_end..].iter().all(|&b| b == 0) {
                // Torn/corrupt tail: truncate the file back to the last
                // good frame and stop trusting anything after it. (An
                // all-zero tail is just the segment's preallocated
                // capacity — the clean end of the log.)
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(good_end as u64)?;
                file.sync_all()?;
                if !is_last {
                    stop = true;
                }
            }
            if is_last {
                active_end = good_end as u64;
            }
        }
        summary.entries_replayed = records.len() as u64;

        // Continue the last surviving segment, or start segment 0.
        let active = indexes.last().copied().unwrap_or(0);
        let capacity = prealloc_capacity(cfg.segment_max_bytes);
        let path = segment_path(&cfg.dir, active);
        // `truncate(false)`: this may be an existing segment being
        // continued — its replayed contents must survive the open.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        let mut offset = active_end;
        if offset < SEGMENT_HEADER_LEN {
            file.set_len(0)?;
            preallocate(&mut file, 0, capacity)?;
            write_segment_header(&mut file, active)?;
            file.sync_all()?;
            offset = SEGMENT_HEADER_LEN;
        } else {
            // Re-extend a segment that was truncated (torn tail, power
            // failure) back to capacity so steady-state syncs stay
            // metadata-free, then park the cursor on the valid end.
            let len = file.metadata()?.len();
            if len < capacity {
                preallocate(&mut file, len, capacity)?;
            }
            file.seek(SeekFrom::Start(offset))?;
        }

        let shared = Arc::new(WalShared {
            inner: Mutex::new(WalInner {
                file,
                segment: active,
                offset,
                // Everything read back from disk is treated as durable.
                synced_offset: offset,
                unsynced_appends: 0,
                unsynced_groups: 0,
            }),
            group: Mutex::new(GroupInner {
                buf: Vec::with_capacity(1024),
                frames: 0,
                staging_epoch: 1,
                committed_epoch: 0,
                leader_active: false,
                spare: Vec::with_capacity(1024),
            }),
            group_cv: Condvar::new(),
            committed_cell: AtomicU64::new(0),
            sync_inflight: AtomicBool::new(false),
            cfg,
            poisoned: AtomicBool::new(false),
            partial_append_keep: AtomicU64::new(u64::MAX),
            drop_fsyncs: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            bytes_appended: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fsyncs_dropped: AtomicU64::new(0),
            segments_rolled: AtomicU64::new(0),
            segments_removed: AtomicU64::new(0),
            replayed_entries: AtomicU64::new(summary.entries_replayed),
            torn_entries_dropped: AtomicU64::new(summary.torn_entries_dropped),
            group_commits: AtomicU64::new(0),
            group_size: Histogram::new(),
            commit_wait: Histogram::new(),
        });
        // Interval-policy group commit gets a background flusher: the
        // leader that trips the interval hands the fsync here and
        // returns to its caller — typically a publisher still holding
        // queue locks upstream, which would otherwise serialise every
        // conflicting publisher behind the sync for its full duration.
        let (sync_tx, flusher) =
            if shared.cfg.group_commit && matches!(shared.cfg.fsync, FsyncPolicy::Interval(_)) {
                let (tx, rx) = mpsc::channel::<PendingSync>();
                let for_thread = Arc::clone(&shared);
                match std::thread::Builder::new()
                    .name("synapse-wal-flusher".into())
                    // Errors poison the log; the next append fails fast.
                    .spawn(move || {
                        while let Ok(sync) = rx.recv() {
                            let _ = for_thread.finish_sync(sync);
                        }
                    }) {
                    Ok(handle) => (Some(tx), Some(handle)),
                    // No thread to be had: syncs complete in the leader.
                    Err(_) => (None, None),
                }
            } else {
                (None, None)
            };
        let wal = Wal {
            shared,
            sync_tx: Mutex::new(sync_tx),
            flusher,
        };
        Ok((wal, records, summary))
    }

    /// The log directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.cfg.dir
    }

    /// Appends one record, blocking until it is written — and, per
    /// policy, fsynced. The record is framed in a thread-local buffer
    /// outside every WAL lock, then committed through the group-commit
    /// protocol (or the legacy per-record path when `group_commit` is
    /// off).
    pub fn append(&self, record: &WalRecord) -> io::Result<()> {
        FRAME_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            frame_record_into(&mut buf, record);
            self.commit_frames(&buf, 1)
        })
    }

    /// Appends one record on the non-blocking lane: the frame is staged
    /// into the next group commit and the call returns immediately,
    /// without waiting out the write or fsync. Used for
    /// ack/dead-letter/lifecycle records under
    /// [`AckDurability::Relaxed`]. Falls back to the blocking path when
    /// group commit is disabled.
    ///
    /// When no leader is active the frame *stays staged* rather than
    /// electing this thread: the next strict append, sync, checkpoint,
    /// or close carries it (a relaxed record has no per-call durability
    /// promise — under power failure the staged frame and a
    /// written-but-unsynced one are equally lost). Leading here for
    /// every ack would turn a 64-worker ack storm into a stream of
    /// single-frame epochs, which is exactly the per-record regime
    /// group commit exists to avoid. The backstop is a byte threshold:
    /// once enough relaxed traffic accumulates with no strict writer in
    /// sight, the staging thread leads a flush itself, bounding staged
    /// memory and ack-record staleness.
    pub fn append_relaxed(&self, record: &WalRecord) -> io::Result<()> {
        if !self.cfg.group_commit {
            return self.append(record);
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        FRAME_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            frame_record_into(&mut buf, record);
            let mut g = self.group.lock();
            g.buf.extend_from_slice(&buf);
            g.frames += 1;
            if g.leader_active {
                // The active leader's drain loop picks the frame up
                // before it releases leadership; nothing to wait for.
                return Ok(());
            }
            let lead_at = self.cfg.group_max_bytes.min(RELAXED_LEAD_BYTES);
            if (g.buf.len() as u64) < lead_at {
                return Ok(());
            }
            let target = g.staging_epoch;
            self.lead_until(g, target)
        })
    }

    /// Routes a record by the configured ack-durability mode: blocking
    /// under [`AckDurability::Strict`], staged-and-return under
    /// [`AckDurability::Relaxed`].
    pub fn append_lifecycle(&self, record: &WalRecord) -> io::Result<()> {
        match self.cfg.ack_durability {
            AckDurability::Strict => self.append(record),
            AckDurability::Relaxed => self.append_relaxed(record),
        }
    }

    /// Commits `frames` complete pre-framed frames as one staged append:
    /// all-or-nothing admission to the log, one group-commit wait for
    /// the whole run. The batch publish path frames every admitted copy
    /// under its partition lock and lands them here in a single call.
    pub fn commit_frames(&self, bytes: &[u8], frames: u32) -> io::Result<()> {
        if frames == 0 {
            return Ok(());
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        if !self.cfg.group_commit {
            // Legacy path: one write + policy-fsync check per frame
            // under the IO lock — exactly the pre-group-commit
            // behaviour, kept as the bench baseline arm.
            let mut inner = self.inner.lock();
            let mut pos = 0usize;
            while pos < bytes.len() {
                let len =
                    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("framed by caller"))
                        as usize;
                let end = pos + FRAME_HEADER_LEN as usize + len;
                self.write_batch_locked(&mut inner, &bytes[pos..end], 1)?;
                pos = end;
            }
            return Ok(());
        }

        let mut g = self.group.lock();
        // Soft backpressure: don't stage past the cap while a commit is
        // in flight (the leader drains the backlog epoch by epoch).
        while g.buf.len() as u64 >= self.cfg.group_max_bytes && g.leader_active {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(poisoned_err());
            }
            self.group_cv.wait(&mut g);
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        g.buf.extend_from_slice(bytes);
        g.frames += frames;
        let target = g.staging_epoch;
        let mut waited = 0u64;
        loop {
            if g.committed_epoch >= target {
                if waited > 0 {
                    self.commit_wait.record(waited);
                }
                return Ok(());
            }
            if self.poisoned.load(Ordering::Acquire) {
                return Err(poisoned_err());
            }
            if g.leader_active {
                // Follower. A group write is microseconds; a futex park
                // is too. Spin on the lock-free epoch mirror first and
                // only fall back to the condvar when the commit is
                // genuinely slow (an EveryWrite fsync, a saturated disk).
                drop(g);
                let start = mono_nanos();
                let mut parked = false;
                loop {
                    if self.committed_cell.load(Ordering::Acquire) >= target
                        || self.poisoned.load(Ordering::Acquire)
                    {
                        break;
                    }
                    if mono_nanos().saturating_sub(start) > FOLLOWER_SPIN_NANOS {
                        parked = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                g = self.group.lock();
                if parked
                    && g.committed_epoch < target
                    && g.leader_active
                    && !self.poisoned.load(Ordering::Acquire)
                {
                    self.group_cv.wait(&mut g);
                }
                waited += mono_nanos().saturating_sub(start);
            } else {
                if waited > 0 {
                    self.commit_wait.record(waited);
                }
                return self.lead_until(g, target);
            }
        }
    }

    /// Leads group commits until `target` is committed and the staging
    /// buffer is empty: take the staged batch, release the group lock
    /// (the next epoch keeps filling), write under the IO lock, publish
    /// the commit epoch, wake every waiter — and loop while new frames
    /// were staged during the IO (the natural batching under load).
    /// Consumes the group guard.
    ///
    /// The policy fsync is pipelined, never held under the IO lock:
    ///
    /// * `EveryWrite` — the sync runs on a dup'd handle with *no* locks
    ///   held, before the epoch publishes (Ok still means durable); the
    ///   next epoch keeps staging meanwhile.
    /// * `Interval` — the write alone commits the epoch (the policy makes
    ///   no per-append promise). When the interval comes due, the leader
    ///   publishes the epoch, *hands leadership off*, and carries out the
    ///   sync while a staged waiter elects itself and keeps the write
    ///   pipeline moving — the fsync stops gating throughput entirely.
    fn lead_until<'a>(&'a self, mut g: MutexGuard<'a, GroupInner>, target: u64) -> io::Result<()> {
        'lead: loop {
            g.leader_active = true;
            loop {
                if !self.cfg.group_max_wait.is_zero() && g.frames < GROUP_LINGER_FRAMES {
                    // Linger: give concurrent appenders a beat to stage
                    // into this batch before paying a write (and its
                    // share of an fsync) for a shallow one. Stagers
                    // don't signal the condvar, so this is a plain
                    // bounded sleep; the commit the stagers wait on is
                    // the price of the deeper group.
                    let deadline = std::time::Instant::now() + self.cfg.group_max_wait;
                    self.group_cv.wait_until(&mut g, deadline);
                }
                let spare = std::mem::take(&mut g.spare);
                let mut batch = std::mem::replace(&mut g.buf, spare);
                let frames = std::mem::replace(&mut g.frames, 0);
                let epoch = g.staging_epoch;
                g.staging_epoch = epoch + 1;
                drop(g);

                let mut pending: Option<PendingSync> = None;
                let mut io_result = if batch.is_empty() {
                    Ok(())
                } else {
                    let mut inner = self.inner.lock();
                    match self.write_batch_group_locked(&mut inner, &batch, frames) {
                        Ok(due) => {
                            pending = due;
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                };
                // EveryWrite gates the epoch on durability: sync now,
                // outside both locks, while the next batch stages.
                if io_result.is_ok() && matches!(self.cfg.fsync, FsyncPolicy::EveryWrite) {
                    if let Some(sync) = pending.take() {
                        io_result = self.finish_sync(sync);
                    }
                }

                batch.clear();
                g = self.group.lock();
                g.spare = batch;
                match io_result {
                    Ok(()) => {
                        g.committed_epoch = g.committed_epoch.max(epoch);
                        self.committed_cell
                            .store(g.committed_epoch, Ordering::Release);
                        if frames > 0 {
                            self.group_commits.fetch_add(1, Ordering::Relaxed);
                            self.group_size.record(u64::from(frames));
                        }
                    }
                    Err(e) => {
                        // Fail-stop: a batch in an unknown on-disk state
                        // cannot be retried by the next leader. Poison,
                        // release leadership, and wake everyone so
                        // followers observe the poison instead of parking
                        // forever.
                        self.poisoned.store(true, Ordering::Release);
                        g.leader_active = false;
                        self.group_cv.notify_all();
                        return Err(e);
                    }
                }
                if let Some(sync) = pending {
                    // Interval sync due. Our own target is committed (a
                    // leader always writes its target in its first
                    // iteration), so hand leadership to the waiters and
                    // dispatch the fsync without stalling the write
                    // pipeline — or this thread, which is typically a
                    // publisher still holding queue locks upstream.
                    g.leader_active = false;
                    self.group_cv.notify_all();
                    drop(g);
                    self.dispatch_sync(sync)?;
                    // If every frame staged during the sync came from the
                    // relaxed lane, nobody was waiting to take over;
                    // re-elect ourselves rather than leave them parked in
                    // the staging buffer until the next append.
                    let g2 = self.group.lock();
                    if !g2.leader_active && !g2.buf.is_empty() {
                        g = g2;
                        continue 'lead;
                    }
                    return Ok(());
                }
                if g.committed_epoch >= target && g.buf.is_empty() {
                    g.leader_active = false;
                    self.group_cv.notify_all();
                    return Ok(());
                }
                self.group_cv.notify_all();
            }
        }
    }

    /// Writes one batch of pre-framed bytes at the current offset under
    /// the held IO lock: segment roll, the armed partial-append fault
    /// (which tears the *batch* at an arbitrary byte — complete prefix
    /// frames survive as if their appends had happened), and counters.
    /// No fsync — policy handling is the caller's.
    fn write_batch_raw(&self, inner: &mut WalInner, batch: &[u8], frames: u32) -> io::Result<()> {
        if inner.offset >= self.cfg.segment_max_bytes.max(SEGMENT_HEADER_LEN + 1) {
            self.roll_locked(inner)?;
        }
        let keep = self.partial_append_keep.swap(u64::MAX, Ordering::AcqRel);
        if keep != u64::MAX {
            let cut = (keep as usize).min(batch.len().saturating_sub(1));
            let result = inner
                .file
                .write_all(&batch[..cut])
                .and_then(|_| inner.file.sync_all());
            self.poisoned.store(true, Ordering::Release);
            result?;
            return Err(poisoned_err());
        }
        if let Err(e) = inner.file.write_all(batch) {
            self.poisoned.store(true, Ordering::Release);
            return Err(e);
        }
        inner.offset += batch.len() as u64;
        inner.unsynced_appends += frames;
        self.appends.fetch_add(u64::from(frames), Ordering::Relaxed);
        self.bytes_appended
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// The legacy write path: one batch written and policy-fsynced with
    /// the sync *held under the IO lock* — the pre-group-commit
    /// behaviour, and the bench's per-write baseline arm.
    fn write_batch_locked(
        &self,
        inner: &mut WalInner,
        batch: &[u8],
        frames: u32,
    ) -> io::Result<()> {
        self.write_batch_raw(inner, batch, frames)?;
        match self.cfg.fsync {
            FsyncPolicy::Off => {}
            FsyncPolicy::EveryWrite => self.sync_locked(inner)?,
            FsyncPolicy::Interval(n) => {
                if inner.unsynced_appends >= n.max(1) {
                    self.sync_locked(inner)?;
                }
            }
        }
        Ok(())
    }

    /// The group-commit write path: writes the batch and, instead of
    /// syncing inline, returns the [`PendingSync`] the policy now owes
    /// (if any), to be carried out after the IO lock is released. The
    /// interval counts *groups* (see [`WalInner::unsynced_groups`]) and
    /// resets at sync *initiation*, so every window of `n` groups
    /// starts a sync even while the previous one is still in flight.
    fn write_batch_group_locked(
        &self,
        inner: &mut WalInner,
        batch: &[u8],
        frames: u32,
    ) -> io::Result<Option<PendingSync>> {
        self.write_batch_raw(inner, batch, frames)?;
        inner.unsynced_groups += 1;
        let due = match self.cfg.fsync {
            FsyncPolicy::Off => false,
            FsyncPolicy::EveryWrite => true,
            FsyncPolicy::Interval(n) => inner.unsynced_groups >= n.max(1),
        };
        if !due {
            return Ok(None);
        }
        if self.sync_inflight.swap(true, Ordering::AcqRel) {
            // One sync in flight at a time. The counters keep
            // accumulating (the debt stands), so the next group
            // initiates as soon as the running sync clears the flag.
            return Ok(None);
        }
        inner.unsynced_appends = 0;
        inner.unsynced_groups = 0;
        match inner.file.try_clone() {
            Ok(file) => Ok(Some(PendingSync {
                file,
                segment: inner.segment,
                offset: inner.offset,
            })),
            Err(e) => {
                // Fail-stop like any other IO error: we owe a sync we
                // cannot perform.
                self.poisoned.store(true, Ordering::Release);
                self.sync_inflight.store(false, Ordering::Release);
                Err(e)
            }
        }
    }
}

/// The completion half of a pipelined sync — on [`WalShared`] so the
/// background flusher can run it without a handle to the public [`Wal`].
impl WalShared {
    /// Carries out a [`PendingSync`] with no WAL locks held, then folds
    /// the certified offset back into the durability bookkeeping (unless
    /// the segment rolled away underneath — roll syncs closing segments
    /// itself). Subject to the armed dropped-fsync fault, like every
    /// other sync.
    fn finish_sync(&self, sync: PendingSync) -> io::Result<()> {
        let result = self.finish_sync_inner(sync);
        // Clear the in-flight flag on every path — deferred leaders and
        // the initiation gate are waiting on it (poison, not the flag,
        // is what stops them after a failed sync).
        self.sync_inflight.store(false, Ordering::Release);
        result
    }

    fn finish_sync_inner(&self, sync: PendingSync) -> io::Result<()> {
        if self.consume_dropped_fsync() {
            return Ok(());
        }
        // fdatasync: the replay path needs the frames and the file size,
        // not timestamps — and it rides ext4's fast-commit journal,
        // stalling concurrent same-inode appends far less than a full
        // fsync.
        if let Err(e) = sync.file.sync_data() {
            self.poisoned.store(true, Ordering::Release);
            return Err(e);
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if inner.segment == sync.segment {
            inner.synced_offset = inner.synced_offset.max(sync.offset);
        }
        Ok(())
    }

    /// Consumes one armed dropped-fsync fault, if any: the sync "ran"
    /// (interval bookkeeping resets) but nothing became durable — the
    /// reordering a lying disk/controller produces.
    fn consume_dropped_fsync(&self) -> bool {
        let mut armed = self.drop_fsyncs.load(Ordering::Acquire);
        while armed > 0 {
            match self.drop_fsyncs.compare_exchange(
                armed,
                armed - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.fsyncs_dropped.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(now) => armed = now,
            }
        }
        false
    }
}

impl Wal {
    /// Flushes any staged-but-unwritten frames, then fsyncs the active
    /// segment (subject to the armed dropped-fsync fault).
    pub fn sync(&self) -> io::Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        self.flush_staged()?;
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner)
    }

    /// Waits until everything staged at call time is written, leading
    /// the commit if no leader is active. No-op when the group is idle
    /// or group commit is disabled.
    fn flush_staged(&self) -> io::Result<()> {
        if !self.cfg.group_commit {
            return Ok(());
        }
        let mut g = self.group.lock();
        let target = if !g.buf.is_empty() {
            g.staging_epoch
        } else if g.leader_active {
            // The in-flight epoch (the leader already advanced
            // `staging_epoch` past it when it took the batch).
            g.staging_epoch - 1
        } else {
            return Ok(());
        };
        loop {
            if g.committed_epoch >= target {
                return Ok(());
            }
            if self.poisoned.load(Ordering::Acquire) {
                return Err(poisoned_err());
            }
            if g.leader_active {
                self.group_cv.wait(&mut g);
            } else {
                return self.lead_until(g, target);
            }
        }
    }

    /// Routes a due interval sync to the background flusher, completing
    /// it inline only when no flusher is running. Either way at most one
    /// sync is in flight (`sync_inflight` gates initiation), and the
    /// flusher clears that flag when it finishes.
    fn dispatch_sync(&self, sync: PendingSync) -> io::Result<()> {
        let sync = {
            let tx = self.sync_tx.lock();
            match tx.as_ref() {
                Some(tx) => match tx.send(sync) {
                    Ok(()) => return Ok(()),
                    Err(mpsc::SendError(sync)) => sync,
                },
                None => sync,
            }
        };
        self.finish_sync(sync)
    }

    fn sync_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        if self.consume_dropped_fsync() {
            inner.unsynced_appends = 0;
            inner.unsynced_groups = 0;
            return Ok(());
        }
        // Same primitive as the pipelined path: frames + size, via
        // fdatasync.
        inner.file.sync_data()?;
        inner.synced_offset = inner.offset;
        inner.unsynced_appends = 0;
        inner.unsynced_groups = 0;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn roll_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        // Closing segments are always made fully durable, so only the
        // active segment can ever hold an unsynced tail.
        inner.file.sync_all()?;
        let next = inner.segment + 1;
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(&self.cfg.dir, next))?;
        preallocate(&mut file, 0, prealloc_capacity(self.cfg.segment_max_bytes))?;
        write_segment_header(&mut file, next)?;
        file.sync_all()?;
        inner.file = file;
        inner.segment = next;
        inner.offset = SEGMENT_HEADER_LEN;
        inner.synced_offset = SEGMENT_HEADER_LEN;
        inner.unsynced_appends = 0;
        inner.unsynced_groups = 0;
        self.segments_rolled.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Current append position.
    pub fn position(&self) -> LogPos {
        let inner = self.inner.lock();
        LogPos {
            segment: inner.segment,
            offset: inner.offset,
        }
    }

    /// Rolls to a fresh segment and returns its index — the checkpoint
    /// boundary: checkpoint records written after this land at or past
    /// the returned segment, so once they are synced every strictly older
    /// segment is garbage.
    pub fn begin_checkpoint(&self) -> io::Result<u64> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_err());
        }
        // Drain the staged batch first so nothing staged before the roll
        // lands after the boundary segment. (Replay would tolerate it —
        // a checkpoint replaces — but GC accounting stays exact.)
        self.flush_staged()?;
        let mut inner = self.inner.lock();
        self.roll_locked(&mut inner)?;
        Ok(inner.segment)
    }

    /// Deletes every segment file with index < `segment`. Returns how
    /// many were removed. Call only after the checkpoint records covering
    /// them are synced.
    pub fn gc_before(&self, segment: u64) -> io::Result<u64> {
        let active = self.inner.lock().segment;
        let mut removed = 0u64;
        for entry in fs::read_dir(&self.cfg.dir)? {
            let entry = entry?;
            let Some(name) = entry.file_name().into_string().ok() else {
                continue;
            };
            let Some(index) = name
                .strip_prefix("segment-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            if index < segment.min(active) {
                fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        self.segments_removed.fetch_add(removed, Ordering::Relaxed);
        Ok(removed)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            segments_rolled: self.segments_rolled.load(Ordering::Relaxed),
            segments_removed: self.segments_removed.load(Ordering::Relaxed),
            replayed_entries: self.replayed_entries.load(Ordering::Relaxed),
            torn_entries_dropped: self.torn_entries_dropped.load(Ordering::Relaxed),
            fsyncs_dropped: self.fsyncs_dropped.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the frames-per-group-commit histogram.
    pub fn group_size_snapshot(&self) -> HistogramSnapshot {
        self.group_size.snapshot()
    }

    /// Snapshot of the follower commit-wait histogram (nanoseconds).
    pub fn commit_wait_snapshot(&self) -> HistogramSnapshot {
        self.commit_wait.snapshot()
    }

    /// Whether a crash fault (or IO error) has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Crash fault: the next append writes only the first `keep_bytes`
    /// of its frame (clamped to a strict prefix), then fails and poisons
    /// the log — a process killed mid-append.
    pub fn inject_partial_append(&self, keep_bytes: u64) {
        self.partial_append_keep
            .store(keep_bytes, Ordering::Release);
    }

    /// Crash fault: the next `n` fsyncs report success without syncing,
    /// so a later power failure loses more than the policy promises.
    pub fn inject_drop_fsyncs(&self, n: u64) {
        self.drop_fsyncs.fetch_add(n, Ordering::AcqRel);
    }

    /// Crash fault: power failure. Everything after the last *actually
    /// synced* offset of the active segment is discarded (closed segments
    /// are synced on roll and survive whole), and the log is poisoned.
    /// Reopen the directory to recover.
    pub fn simulate_power_failure(&self) -> io::Result<()> {
        let inner = self.inner.lock();
        self.poisoned.store(true, Ordering::Release);
        // Wake every group-commit waiter so it observes the poison;
        // frames staged but never written are simply gone, exactly as
        // power loss would leave them.
        self.group_cv.notify_all();
        let path = segment_path(&self.cfg.dir, inner.segment);
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(inner.synced_offset)?;
        file.sync_all()?;
        Ok(())
    }
}

impl Drop for Wal {
    /// Best-effort flush of staged frames: a clean close (as opposed to
    /// a crash) must not lose relaxed-lane records that were accepted
    /// but not yet led to disk.
    fn drop(&mut self) {
        if !self.poisoned.load(Ordering::Acquire) {
            let _ = self.flush_staged();
        }
        // Retire the flusher: closing the channel ends its loop after it
        // drains whatever is queued, so a clean close never abandons a
        // sync it already initiated.
        *self.sync_tx.lock() = None;
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

/// Replays one segment's bytes into `records`; returns the byte offset
/// just past the last good frame (truncation point for a torn tail).
fn replay_segment(
    bytes: &[u8],
    expected_index: u64,
    records: &mut Vec<WalRecord>,
    summary: &mut ReplaySummary,
) -> usize {
    let header_len = SEGMENT_HEADER_LEN as usize;
    if bytes.len() < header_len
        || &bytes[..8] != SEGMENT_MAGIC
        || u64::from_le_bytes(bytes[8..16].try_into().expect("len checked")) != expected_index
    {
        summary.torn_entries_dropped += 1;
        return 0;
    }
    let mut pos = header_len;
    loop {
        let Some(frame_header) = bytes.get(pos..pos + FRAME_HEADER_LEN as usize) else {
            if pos < bytes.len() {
                summary.torn_entries_dropped += 1;
            }
            return pos;
        };
        let len = u32::from_le_bytes(frame_header[..4].try_into().expect("len checked"));
        let crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("len checked"));
        if len == 0 && crc == 0 {
            // Preallocated tail: no frame is empty (and an empty
            // payload could never carry CRC 0 *and* decode), so an
            // all-zero header is the clean end of a preallocated
            // segment, not a torn write — unless non-zero garbage sits
            // *past* the zeros (e.g. a tear landed at the far end of
            // the preallocated runway). That garbage is about to be
            // truncated away like any torn tail, so count it as one.
            if !bytes[pos..].iter().all(|&b| b == 0) {
                summary.torn_entries_dropped += 1;
            }
            return pos;
        }
        if len > MAX_FRAME_LEN {
            summary.torn_entries_dropped += 1;
            return pos;
        }
        let start = pos + FRAME_HEADER_LEN as usize;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            summary.torn_entries_dropped += 1;
            return pos;
        };
        if crc32(payload) != crc {
            summary.torn_entries_dropped += 1;
            return pos;
        }
        let Some(record) = WalRecord::decode(payload) else {
            summary.torn_entries_dropped += 1;
            return pos;
        };
        records.push(record);
        pos = start + len as usize;
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Fresh unique directory under the system temp dir (no external
    /// tempfile crate in this workspace).
    pub(crate) fn temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("synapse-wal-{label}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn enqueue(queue: &str, tag: u64, payload: &str) -> WalRecord {
        WalRecord::Enqueue {
            queue: queue.into(),
            tag,
            exchange: "x".into(),
            payload: payload.into(),
            origin_nanos: 7,
        }
    }

    #[test]
    fn records_round_trip() {
        let samples = vec![
            enqueue("q", 3, "body"),
            WalRecord::Ack {
                queue: "q".into(),
                tags: vec![1, 2, 9],
            },
            WalRecord::DeadLetter {
                queue: "q".into(),
                tag: 4,
            },
            WalRecord::QueueKilled { queue: "q".into() },
            WalRecord::QueueReinstated { queue: "q".into() },
            WalRecord::Checkpoint {
                queue: "q".into(),
                decommissioned: true,
                next_tag: 10,
                pending: vec![(5, "x".into(), "p".into(), 1, true)],
                dead: vec![(2, "x".into(), "poison".into(), 0)],
            },
        ];
        for record in samples {
            let encoded = record.encode();
            assert_eq!(WalRecord::decode(&encoded), Some(record));
        }
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let encoded = enqueue("q", 1, "body").encode();
        for cut in 0..encoded.len() {
            assert_eq!(WalRecord::decode(&encoded[..cut]), None, "cut at {cut}");
        }
        let mut padded = encoded;
        padded.push(0);
        assert_eq!(WalRecord::decode(&padded), None);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = temp_dir("replay");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::Off);
        let (wal, records, _) = Wal::open(cfg.clone()).unwrap();
        assert!(records.is_empty());
        for i in 0..20u64 {
            wal.append(&enqueue("q", i, &format!("m{i}"))).unwrap();
        }
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 20);
        assert_eq!(summary.torn_entries_dropped, 0);
        for (i, record) in replayed.iter().enumerate() {
            assert_eq!(record, &enqueue("q", i as u64, &format!("m{i}")));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_replay_spans_them() {
        let dir = temp_dir("roll");
        let cfg = WalConfig::new(&dir)
            .segment_max_bytes(128)
            .fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..50u64 {
            wal.append(&enqueue("q", i, "padpadpadpad")).unwrap();
        }
        assert!(wal.stats().segments_rolled >= 2);
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 50);
        assert!(summary.segments_scanned >= 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..10u64 {
            wal.append(&enqueue("q", i, "payload")).unwrap();
        }
        let end = wal.position().offset;
        drop(wal);
        // Chop a few bytes off the *valid* tail (the file itself sits at
        // its preallocated capacity): the final frame is torn.
        let path = segment_path(&dir, 0);
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(end - 3)
            .unwrap();
        let (_, replayed, summary) = Wal::open(cfg.clone()).unwrap();
        assert_eq!(replayed.len(), 9, "the torn final frame is dropped");
        assert_eq!(summary.torn_entries_dropped, 1);
        // The truncation is persistent: a second reopen is clean.
        let (_, again, summary2) = Wal::open(cfg).unwrap();
        assert_eq!(again.len(), 9);
        assert_eq!(summary2.torn_entries_dropped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_append_fault_tears_exactly_one_frame() {
        let dir = temp_dir("partial");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..5u64 {
            wal.append(&enqueue("q", i, "survivor")).unwrap();
        }
        wal.inject_partial_append(6);
        assert!(wal.append(&enqueue("q", 99, "torn")).is_err());
        assert!(wal.is_poisoned());
        assert!(wal.append(&enqueue("q", 100, "after")).is_err());
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 5, "only confirmed appends replay");
        assert_eq!(summary.torn_entries_dropped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn power_failure_respects_fsync_policy() {
        // EveryWrite: nothing confirmed is lost.
        let dir = temp_dir("power-every");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..8u64 {
            wal.append(&enqueue("q", i, "durable")).unwrap();
        }
        wal.simulate_power_failure().unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 8);
        let _ = fs::remove_dir_all(&dir);

        // Off: the whole unsynced tail is lost.
        let dir = temp_dir("power-off");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..8u64 {
            wal.append(&enqueue("q", i, "volatile")).unwrap();
        }
        wal.simulate_power_failure().unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert!(
            replayed.is_empty(),
            "unsynced appends do not survive power loss"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_fsyncs_lose_the_lying_window_on_power_failure() {
        let dir = temp_dir("dropfsync");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..4u64 {
            wal.append(&enqueue("q", i, "synced")).unwrap();
        }
        wal.inject_drop_fsyncs(3);
        for i in 4..7u64 {
            wal.append(&enqueue("q", i, "lied-about")).unwrap();
        }
        assert_eq!(wal.stats().fsyncs_dropped, 3);
        wal.simulate_power_failure().unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 4, "the dropped-fsync window is lost");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_roll_and_gc_shrink_the_log() {
        let dir = temp_dir("gc");
        let cfg = WalConfig::new(&dir)
            .segment_max_bytes(256)
            .fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..40u64 {
            wal.append(&enqueue("q", i, "padpadpadpadpad")).unwrap();
        }
        let boundary = wal.begin_checkpoint().unwrap();
        wal.append(&WalRecord::Checkpoint {
            queue: "q".into(),
            decommissioned: false,
            next_tag: 41,
            pending: vec![(40, "x".into(), "live".into(), 0, false)],
            dead: vec![],
        })
        .unwrap();
        wal.sync().unwrap();
        let removed = wal.gc_before(boundary).unwrap();
        assert!(removed >= 1);
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(
            summary.segments_scanned, 1,
            "only the checkpoint segment survives"
        );
        assert!(matches!(replayed[0], WalRecord::Checkpoint { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    /// Concurrent appenders through the group-commit protocol: every
    /// confirmed append replays, in a per-thread-FIFO-consistent order,
    /// and the leader amortizes fsyncs below one-per-append.
    #[test]
    fn concurrent_group_commit_replays_every_record() {
        let dir = temp_dir("group");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        let wal = std::sync::Arc::new(wal);
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        wal.append(&enqueue("q", t * 1000 + i, "grouped")).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, 200);
        assert!(stats.group_commits >= 1);
        assert!(
            stats.fsyncs <= stats.appends,
            "group commit never fsyncs more than once per append"
        );
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 200);
        assert_eq!(summary.torn_entries_dropped, 0);
        // Per-thread FIFO: each thread's tags replay in its append order.
        let mut last_per_thread = [0u64; 8];
        for record in &replayed {
            let WalRecord::Enqueue { tag, .. } = record else {
                panic!("only enqueues were appended");
            };
            let thread = (tag / 1000) as usize;
            let seq = tag % 1000 + 1;
            assert!(seq > last_per_thread[thread], "thread {thread} reordered");
            last_per_thread[thread] = seq;
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Relaxed-lane records are staged without waiting but survive a
    /// clean close (the drop flush leads any orphaned batch to disk).
    #[test]
    fn relaxed_lane_survives_clean_close() {
        let dir = temp_dir("relaxed");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::Off);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        wal.append(&enqueue("q", 1, "blocking")).unwrap();
        wal.append_relaxed(&WalRecord::Ack {
            queue: "q".into(),
            tags: vec![1],
        })
        .unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 2);
        assert!(matches!(replayed[1], WalRecord::Ack { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    /// `group_commit(false)` restores the per-record path bit-for-bit:
    /// same replay, zero group commits counted.
    #[test]
    fn legacy_per_record_path_still_replays() {
        let dir = temp_dir("legacy");
        let cfg = WalConfig::new(&dir)
            .fsync(FsyncPolicy::EveryWrite)
            .group_commit(false);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..12u64 {
            wal.append(&enqueue("q", i, "solo")).unwrap();
        }
        assert_eq!(wal.stats().group_commits, 0);
        assert_eq!(wal.stats().fsyncs, 12);
        drop(wal);
        let (_, replayed, _) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 12);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A multi-frame staged batch torn mid-way by the partial-append
    /// fault keeps its complete prefix frames (they replay as live) and
    /// drops exactly the torn one.
    #[test]
    fn partial_batch_keeps_complete_prefix_frames() {
        let dir = temp_dir("partial-batch");
        let cfg = WalConfig::new(&dir).fsync(FsyncPolicy::EveryWrite);
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        let mut batch = Vec::new();
        for i in 0..4u64 {
            frame_record_into(&mut batch, &enqueue("q", i, "batched"));
        }
        let one_frame = batch.len() / 4;
        // Cut inside the third frame: two complete frames survive.
        wal.inject_partial_append((one_frame * 2 + 3) as u64);
        assert!(wal.commit_frames(&batch, 4).is_err());
        assert!(wal.is_poisoned());
        drop(wal);
        let (_, replayed, summary) = Wal::open(cfg).unwrap();
        assert_eq!(replayed.len(), 2, "complete prefix frames replay");
        assert_eq!(summary.torn_entries_dropped, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
