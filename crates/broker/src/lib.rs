//! Reliable pub/sub message broker — the RabbitMQ of the paper.
//!
//! Synapse sends every write message to "a reliable, persistent, and
//! scalable message broker system", with "a dedicated queue for each
//! subscriber app" whose messages are "processed in parallel by multiple
//! subscriber workers" (§4). This crate reproduces the slice of RabbitMQ
//! the paper depends on:
//!
//! * fanout exchanges: one per publisher app, bound to subscriber queues;
//! * durable FIFO queues with blocking consumers, delivery tags,
//!   ack/nack-requeue, and redelivery of unacked messages on recovery;
//! * the queue-cap/decommission policy of §4.4 ("Synapse decommissions the
//!   subscriber ... and kills its queue once the queue size reaches a
//!   configurable limit");
//! * failure injection — dropped messages (the RabbitMQ-upgrade incident of
//!   §6.5) and broker restarts that requeue in-flight deliveries;
//! * a durability plane ([`wal`]): a segmented, CRC-framed write-ahead log
//!   with configurable fsync policy, per-queue checkpoints with segment GC,
//!   and crash recovery via [`Broker::open_durable`].

pub mod broker;
pub mod message;
pub mod queue;
pub mod wal;

pub use broker::{
    parse_watermark, watermark_payload, Broker, BrokerStats, Consumer, PublishError,
    RecoveryReport, BOOTSTRAP_EXCHANGE, WATERMARK_EXCHANGE,
};
pub use message::{Delivery, SharedStr};
pub use queue::{tag_hint, tag_seq, QueueConfig, QueueState, PARTITION_HINT_SPAN};
pub use wal::{
    AckDurability, FsyncPolicy, LogPos, ReplaySummary, Wal, WalConfig, WalRecord, WalStats,
};
