//! The broker facade: exchanges, bindings, consumers, failure injection.

use crate::message::Delivery;
use crate::queue::{Queue, QueueConfig, QueueState};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Aggregate broker counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages accepted from publishers (before fanout).
    pub published: u64,
    /// Message copies enqueued across all queues.
    pub enqueued: u64,
    /// Message copies acked by consumers.
    pub acked: u64,
    /// Message copies dropped by failure injection.
    pub dropped: u64,
}

#[derive(Default)]
struct BrokerInner {
    /// exchange (publisher app) → bound queue names.
    bindings: HashMap<String, Vec<String>>,
    queues: HashMap<String, Arc<Queue>>,
    published: u64,
}

/// An in-process message broker with RabbitMQ semantics. Cloneable handle;
/// clones share state.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use synapse_broker::{Broker, QueueConfig};
///
/// let broker = Broker::new();
/// broker.declare_queue("mailer", QueueConfig::default());
/// broker.bind("main_app", "mailer");
/// broker.publish("main_app", "{\"op\":\"create\"}");
///
/// let consumer = broker.consumer("mailer").unwrap();
/// let d = consumer.pop(Duration::from_millis(100)).unwrap();
/// assert_eq!(d.payload, "{\"op\":\"create\"}");
/// consumer.ack(d.tag);
/// ```
#[derive(Clone)]
pub struct Broker {
    inner: Arc<RwLock<BrokerInner>>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker {
            inner: Arc::new(RwLock::new(BrokerInner::default())),
        }
    }

    /// Declares (or re-declares, idempotently) a queue.
    pub fn declare_queue(&self, name: &str, config: QueueConfig) {
        let mut inner = self.inner.write();
        inner
            .queues
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Queue::new(config)));
    }

    /// Binds `queue` to the fanout exchange of publisher app `exchange`.
    pub fn bind(&self, exchange: &str, queue: &str) {
        let mut inner = self.inner.write();
        let bindings = inner.bindings.entry(exchange.to_owned()).or_default();
        if !bindings.iter().any(|q| q == queue) {
            bindings.push(queue.to_owned());
        }
    }

    /// Publishes a payload on `exchange`, fanning out to all bound queues.
    pub fn publish(&self, exchange: &str, payload: &str) {
        let inner = self.inner.read();
        if let Some(bound) = inner.bindings.get(exchange) {
            for name in bound {
                if let Some(queue) = inner.queues.get(name) {
                    queue.enqueue(exchange, payload);
                }
            }
        }
        drop(inner);
        self.inner.write().published += 1;
    }

    /// Returns a consumer handle for `queue`, or `None` if undeclared.
    pub fn consumer(&self, queue: &str) -> Option<Consumer> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| Consumer {
            queue: q.clone(),
            name: queue.to_owned(),
        })
    }

    /// Current state of a queue.
    pub fn queue_state(&self, queue: &str) -> Option<QueueState> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| q.inner.lock().state)
    }

    /// Current backlog length of a queue.
    pub fn queue_len(&self, queue: &str) -> Option<usize> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| q.inner.lock().ready.len())
    }

    /// Resets a decommissioned queue to active/empty (the subscriber has
    /// completed its partial bootstrap and rejoins, §4.4).
    pub fn reinstate_queue(&self, queue: &str) {
        let inner = self.inner.read();
        if let Some(q) = inner.queues.get(queue) {
            q.reinstate();
        }
    }

    /// Failure injection: silently drop the next `n` messages bound for
    /// `queue` (the §6.5 RabbitMQ-upgrade incident).
    pub fn inject_drop_next(&self, queue: &str, n: u64) {
        let inner = self.inner.read();
        if let Some(q) = inner.queues.get(queue) {
            q.inner.lock().drop_next += n;
        }
    }

    /// Failure injection: broker restart. All unacked deliveries return to
    /// the front of their queues flagged `redelivered`.
    pub fn recover(&self) {
        let inner = self.inner.read();
        for q in inner.queues.values() {
            q.recover();
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> BrokerStats {
        let inner = self.inner.read();
        let mut stats = BrokerStats {
            published: inner.published,
            ..BrokerStats::default()
        };
        for q in inner.queues.values() {
            let qi = q.inner.lock();
            stats.enqueued += qi.enqueued;
            stats.acked += qi.acked;
            stats.dropped += qi.dropped;
        }
        stats
    }
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

/// A consumer bound to one queue. Cloneable; multiple workers may consume
/// the same queue concurrently (the paper's parallel subscriber workers).
#[derive(Clone)]
pub struct Consumer {
    queue: Arc<Queue>,
    name: String,
}

impl Consumer {
    /// Queue name this consumer reads from.
    pub fn queue_name(&self) -> &str {
        &self.name
    }

    /// Blocking pop: waits up to `timeout` for a delivery. Returns `None`
    /// on timeout or if the queue was decommissioned.
    pub fn pop(&self, timeout: Duration) -> Option<Delivery> {
        self.queue.pop(timeout)
    }

    /// Acknowledges a delivery; returns `false` for unknown tags.
    pub fn ack(&self, tag: u64) -> bool {
        self.queue.ack(tag)
    }

    /// Returns a delivery to the queue front for redelivery.
    pub fn nack(&self, tag: u64) -> bool {
        self.queue.nack(tag)
    }

    /// Whether the queue has been decommissioned.
    pub fn is_decommissioned(&self) -> bool {
        self.queue.inner.lock().state == QueueState::Decommissioned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn broker_with(queue: &str) -> Broker {
        let b = Broker::new();
        b.declare_queue(queue, QueueConfig::default());
        b.bind("pub", queue);
        b
    }

    #[test]
    fn fanout_reaches_all_bound_queues() {
        let b = Broker::new();
        b.declare_queue("q1", QueueConfig::default());
        b.declare_queue("q2", QueueConfig::default());
        b.bind("pub", "q1");
        b.bind("pub", "q2");
        b.publish("pub", "m");
        for q in ["q1", "q2"] {
            let c = b.consumer(q).unwrap();
            assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "m");
        }
    }

    #[test]
    fn unbound_queue_receives_nothing() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig::default());
        b.publish("pub", "m");
        assert!(b
            .consumer("q")
            .unwrap()
            .pop(Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let b = broker_with("q");
        for i in 0..10 {
            b.publish("pub", &i.to_string());
        }
        let c = b.consumer("q").unwrap();
        for i in 0..10 {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            assert_eq!(d.payload, i.to_string());
            c.ack(d.tag);
        }
    }

    #[test]
    fn nack_requeues_at_front_flagged_redelivered() {
        let b = broker_with("q");
        b.publish("pub", "a");
        b.publish("pub", "b");
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(!d.redelivered);
        assert!(c.nack(d.tag));
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(d2.payload, "a");
        assert!(d2.redelivered);
    }

    #[test]
    fn ack_of_unknown_tag_is_rejected() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        assert!(!c.ack(999));
    }

    #[test]
    fn blocking_pop_wakes_on_publish() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let h = thread::spawn(move || c.pop(Duration::from_secs(5)).unwrap().payload);
        thread::sleep(Duration::from_millis(30));
        b.publish("pub", "late");
        assert_eq!(h.join().unwrap(), "late");
    }

    #[test]
    fn concurrent_workers_partition_the_queue() {
        let b = broker_with("q");
        for i in 0..100 {
            b.publish("pub", &i.to_string());
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = b.consumer("q").unwrap();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(d) = c.pop(Duration::from_millis(50)) {
                    got.push(d.payload.clone());
                    c.ack(d.tag);
                }
                got
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len(), 100, "each message delivered exactly once");
        all.sort_by_key(|s| s.parse::<u64>().unwrap());
        for (i, payload) in all.iter().enumerate() {
            assert_eq!(payload, &i.to_string());
        }
    }

    #[test]
    fn queue_cap_triggers_decommission() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig { max_len: Some(5) });
        b.bind("pub", "q");
        for i in 0..10 {
            b.publish("pub", &i.to_string());
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        assert_eq!(b.queue_len("q"), Some(0), "backlog was discarded");
        let c = b.consumer("q").unwrap();
        assert!(c.is_decommissioned());
        assert!(c.pop(Duration::from_millis(20)).is_none());
        // Reinstating restores delivery.
        b.reinstate_queue("q");
        b.publish("pub", "fresh");
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "fresh");
    }

    #[test]
    fn injected_drops_lose_messages_silently() {
        let b = broker_with("q");
        b.inject_drop_next("q", 2);
        for i in 0..4 {
            b.publish("pub", &i.to_string());
        }
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "2");
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "3");
        assert_eq!(b.stats().dropped, 2);
    }

    #[test]
    fn recover_requeues_unacked_in_order() {
        let b = broker_with("q");
        for p in ["a", "b", "c"] {
            b.publish("pub", p);
        }
        let c = b.consumer("q").unwrap();
        let d1 = c.pop(Duration::from_millis(50)).unwrap();
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d1.tag);
        assert_eq!(d2.payload, "b");
        // Restart: "b" (unacked) returns before "c".
        b.recover();
        let r1 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r1.payload, "b");
        assert!(r1.redelivered);
        let r2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r2.payload, "c");
    }

    #[test]
    fn stats_track_lifecycle() {
        let b = broker_with("q");
        b.publish("pub", "x");
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d.tag);
        let s = b.stats();
        assert_eq!(s.published, 1);
        assert_eq!(s.enqueued, 1);
        assert_eq!(s.acked, 1);
    }
}
