//! The broker facade: exchanges, bindings, consumers, failure injection.

use crate::message::{Delivery, SharedStr};
use crate::queue::{tag_seq, Queue, QueueConfig, QueueState, WalBinding};
use crate::wal::{LogPos, Wal, WalConfig, WalRecord, WalStats};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate broker counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages accepted from publishers (before fanout).
    pub published: u64,
    /// Message copies enqueued across all queues.
    pub enqueued: u64,
    /// Message copies acked by consumers.
    pub acked: u64,
    /// Message copies dropped by failure injection.
    pub dropped: u64,
    /// Message copies refused by decommissioned queues.
    pub refused: u64,
    /// Backlog copies discarded when a queue was decommissioned.
    pub discarded: u64,
    /// Deliveries returned to a queue by nack or broker restart.
    pub redelivered: u64,
    /// Deliveries routed to dead-letter stores.
    pub dead_lettered: u64,
    /// Acks naming an unknown or already-acked tag.
    pub spurious_acks: u64,
    /// Nacks naming an unknown or already-acked tag.
    pub spurious_nacks: u64,
    /// Publish attempts rejected by injected transient faults.
    pub publish_faults: u64,
    /// Queues reinstated after a decommission.
    pub reinstated: u64,
    /// Counted condvar wakeups issued by enqueues (the thundering-herd
    /// fix: at most `min(added, sleepers)` per enqueue batch).
    pub wakeups: u64,
    /// Successful work-steal operations across all queues.
    pub steals: u64,
    /// Deliveries migrated between workers by stealing.
    pub stolen: u64,
}

/// Transient error returned by [`Broker::publish`] under injected faults.
///
/// Models the broker connection blips of the paper's §6.5 incident: the
/// message was *not* accepted and the publisher is expected to retry (its
/// journal still holds the payload, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishError {
    /// Exchange the publish was addressed to.
    pub exchange: String,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transient broker failure publishing to exchange {:?}",
            self.exchange
        )
    }
}

impl std::error::Error for PublishError {}

/// Reserved exchange name carried by bootstrap watermark markers. Not a
/// real exchange: markers are injected per-queue by
/// [`Broker::publish_watermark`], never routed through bindings, and a
/// subscriber recognizes them by this name on the delivery envelope.
pub const WATERMARK_EXCHANGE: &str = "__synapse.watermark__";

/// Reserved exchange name carried by bootstrap chunk-copy deliveries
/// merged into a subscriber's own queue by
/// [`Broker::publish_to_queue`]. Distinguishes copies (strict
/// version-admission, no dependency wait) from live traffic.
pub const BOOTSTRAP_EXCHANGE: &str = "__synapse.bootstrap__";

/// Encodes a watermark marker payload: `wm:<lo|hi>:<session>:<chunk>`.
/// Human-readable on purpose — markers show up in WAL dumps and
/// dead-letter inspections during debugging.
pub fn watermark_payload(session: u64, chunk: u64, high: bool) -> String {
    format!("wm:{}:{session}:{chunk}", if high { "hi" } else { "lo" })
}

/// Decodes a watermark marker payload into `(session, chunk, high)`;
/// `None` for anything that is not a well-formed marker.
pub fn parse_watermark(payload: &str) -> Option<(u64, u64, bool)> {
    let rest = payload.strip_prefix("wm:")?;
    let (bound, rest) = rest.split_once(':')?;
    let high = match bound {
        "hi" => true,
        "lo" => false,
        _ => return None,
    };
    let (session, chunk) = rest.split_once(':')?;
    Some((session.parse().ok()?, chunk.parse().ok()?, high))
}

/// Topology: declared queues, exchange bindings, and the routing table
/// resolved from them. Mutated only by declare/bind (rare); the publish hot
/// path takes a read lock and walks `resolved`.
#[derive(Default)]
struct Routes {
    /// exchange (publisher app) → bound queue names.
    bindings: HashMap<String, Vec<String>>,
    queues: HashMap<String, Arc<Queue>>,
    /// exchange → (shared exchange name, bound queues), precomputed so a
    /// publish does one hash lookup and clones zero strings.
    resolved: HashMap<String, (SharedStr, Vec<Arc<Queue>>)>,
}

impl Routes {
    /// Recomputes `resolved` after a topology change. Bindings to
    /// not-yet-declared queues are kept in `bindings` but omitted here
    /// (publishes to them route nowhere, as before).
    fn rebuild(&mut self) {
        self.resolved = self
            .bindings
            .iter()
            .map(|(exchange, names)| {
                let targets = names
                    .iter()
                    .filter_map(|name| self.queues.get(name).cloned())
                    .collect();
                (
                    exchange.clone(),
                    (SharedStr::from(exchange.as_str()), targets),
                )
            })
            .collect();
    }
}

struct BrokerShared {
    routes: RwLock<Routes>,
    /// Messages accepted from publishers. Atomic: publish never takes the
    /// topology write lock.
    published: AtomicU64,
    /// Fault injection: fail the next `n` publish attempts. Consumed with a
    /// CAS loop so concurrent publishers each burn exactly one armed fault.
    publish_fail_next: AtomicU64,
    publish_faults: AtomicU64,
    /// The durability plane; `None` for a memory-only broker (the default,
    /// whose hot path pays exactly one `Option` branch for it).
    wal: Option<Arc<Wal>>,
    /// What recovery rebuilt at open time; `None` for memory-only brokers.
    recovery: Option<RecoveryReport>,
}

/// What [`Broker::open_durable`] recovered from the log.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL entries replayed.
    pub replayed_entries: u64,
    /// Torn/corrupt frames dropped (and truncated away) during replay.
    pub torn_entries_dropped: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Queues rebuilt from the log.
    pub queues_recovered: u64,
    /// Pending (never-acked) deliveries restored to queue backlogs.
    pub messages_recovered: u64,
    /// Dead-lettered deliveries restored.
    pub dead_recovered: u64,
    /// Enqueue records skipped because a logged ack consumed them — the
    /// acked work that did NOT come back, which is the zero-acked-loss
    /// half of the recovery invariant.
    pub acked_skipped: u64,
}

/// Per-queue state accumulated while folding replayed WAL records.
#[derive(Default)]
struct RecoveredQueue {
    decommissioned: bool,
    /// Next tag *sequence* number (tags encode `(seq << 8) | hint`; the
    /// hint re-derives partition membership deterministically on replay).
    next_seq: u64,
    /// tag → (exchange, payload, origin_nanos); `BTreeMap` keeps FIFO
    /// (tag, i.e. seq) order for free when rebuilding the backlog.
    pending: BTreeMap<u64, (String, String, u64)>,
    dead: Vec<(u64, String, String, u64)>,
}

impl RecoveredQueue {
    fn apply(&mut self, record: WalRecord, report: &mut RecoveryReport) {
        match record {
            WalRecord::Enqueue {
                tag,
                exchange,
                payload,
                origin_nanos,
                ..
            } => {
                self.pending.insert(tag, (exchange, payload, origin_nanos));
                self.next_seq = self.next_seq.max(tag_seq(tag) + 1);
            }
            WalRecord::Ack { tags, .. } => {
                for tag in tags {
                    if self.pending.remove(&tag).is_some() {
                        report.acked_skipped += 1;
                    }
                }
            }
            WalRecord::DeadLetter { tag, .. } => {
                if let Some((exchange, payload, origin)) = self.pending.remove(&tag) {
                    self.dead.push((tag, exchange, payload, origin));
                }
            }
            WalRecord::Watermark {
                tag,
                session,
                chunk,
                high,
                ..
            } => {
                // An unconsumed marker must survive a crash: the subscriber's
                // reconciliation window for that chunk is still open, so
                // replay resynthesizes the marker delivery in its original
                // position. The payload is self-describing, so checkpointed
                // markers round-trip through `Checkpoint.pending` for free.
                self.pending.insert(
                    tag,
                    (
                        WATERMARK_EXCHANGE.to_owned(),
                        watermark_payload(session, chunk, high),
                        0,
                    ),
                );
                self.next_seq = self.next_seq.max(tag_seq(tag) + 1);
            }
            WalRecord::QueueKilled { .. } => {
                self.pending.clear();
                self.decommissioned = true;
            }
            WalRecord::QueueReinstated { .. } => {
                self.pending.clear();
                self.decommissioned = false;
            }
            WalRecord::Checkpoint {
                decommissioned,
                next_tag,
                pending,
                dead,
                ..
            } => {
                // A checkpoint *replaces* this queue's state: everything
                // before it in the log is already folded into it. Its
                // `next_tag` field carries the next sequence number.
                self.decommissioned = decommissioned;
                self.next_seq = next_tag;
                self.pending = pending
                    .into_iter()
                    .map(|(tag, exchange, payload, origin, _redelivered)| {
                        (tag, (exchange, payload, origin))
                    })
                    .collect();
                self.dead = dead;
            }
        }
    }
}

/// An in-process message broker with RabbitMQ semantics. Cloneable handle;
/// clones share state.
///
/// Payloads are stored as [`SharedStr`]: fanout to N queues shares one
/// allocation, and `publish` itself is lock-free except for the read-mostly
/// routing lock and each bound queue's own mutex.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use synapse_broker::{Broker, QueueConfig};
///
/// let broker = Broker::new();
/// broker.declare_queue("mailer", QueueConfig::default());
/// broker.bind("main_app", "mailer");
/// broker.publish("main_app", "{\"op\":\"create\"}").unwrap();
///
/// let consumer = broker.consumer("mailer").unwrap();
/// let d = consumer.pop(Duration::from_millis(100)).unwrap();
/// assert_eq!(d.payload, "{\"op\":\"create\"}");
/// consumer.ack(d.tag);
/// ```
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerShared>,
}

impl Broker {
    /// Creates an empty memory-only broker (no durability plane).
    pub fn new() -> Self {
        Broker {
            inner: Arc::new(BrokerShared {
                routes: RwLock::new(Routes::default()),
                published: AtomicU64::new(0),
                publish_fail_next: AtomicU64::new(0),
                publish_faults: AtomicU64::new(0),
                wal: None,
                recovery: None,
            }),
        }
    }

    /// Opens a durable broker backed by a segmented WAL at `cfg.dir`,
    /// replaying any existing log and rebuilding the queues it describes
    /// *before* the broker is returned — no traffic is accepted against
    /// half-recovered state.
    ///
    /// Recovered state covers queue backlogs (never-acked deliveries, in
    /// tag order, flagged `redelivered`), dead-letter stores, lifecycle
    /// (decommissioned queues stay decommissioned), and tag counters.
    /// Logged acks are honored: an acked delivery never reappears.
    /// Bindings and per-queue caps are topology, not log state — callers
    /// re-declare and re-bind exactly as on first boot, and
    /// [`Broker::declare_queue`] re-applies the cap to the recovered
    /// queue. Counters restart at zero; the [`RecoveryReport`] carries
    /// what was rebuilt.
    pub fn open_durable(cfg: WalConfig) -> io::Result<(Broker, RecoveryReport)> {
        let (wal, records, summary) = Wal::open(cfg)?;
        let wal = Arc::new(wal);
        let mut report = RecoveryReport {
            replayed_entries: summary.entries_replayed,
            torn_entries_dropped: summary.torn_entries_dropped,
            segments_scanned: summary.segments_scanned,
            ..RecoveryReport::default()
        };

        let mut recovered: BTreeMap<String, RecoveredQueue> = BTreeMap::new();
        for record in records {
            let queue = match &record {
                WalRecord::Enqueue { queue, .. }
                | WalRecord::Ack { queue, .. }
                | WalRecord::DeadLetter { queue, .. }
                | WalRecord::Watermark { queue, .. }
                | WalRecord::QueueKilled { queue }
                | WalRecord::QueueReinstated { queue }
                | WalRecord::Checkpoint { queue, .. } => queue.clone(),
            };
            recovered
                .entry(queue)
                .or_default()
                .apply(record, &mut report);
        }

        let mut routes = Routes::default();
        for (name, state) in recovered {
            report.queues_recovered += 1;
            report.messages_recovered += state.pending.len() as u64;
            report.dead_recovered += state.dead.len() as u64;
            let pending = state
                .pending
                .into_iter()
                .map(|(tag, (exchange, payload, origin))| {
                    (
                        tag,
                        SharedStr::from(exchange.as_str()),
                        SharedStr::from(payload.as_str()),
                        origin,
                    )
                })
                .collect();
            let dead = state
                .dead
                .into_iter()
                .map(|(tag, exchange, payload, origin)| {
                    (
                        tag,
                        SharedStr::from(exchange.as_str()),
                        SharedStr::from(payload.as_str()),
                        origin,
                    )
                })
                .collect();
            let queue = Queue::restore(
                QueueConfig::default(),
                Some(WalBinding {
                    wal: wal.clone(),
                    queue: name.clone(),
                }),
                state.decommissioned,
                state.next_seq,
                pending,
                dead,
            );
            routes.queues.insert(name, Arc::new(queue));
        }
        routes.rebuild();

        let broker = Broker {
            inner: Arc::new(BrokerShared {
                routes: RwLock::new(routes),
                published: AtomicU64::new(0),
                publish_fail_next: AtomicU64::new(0),
                publish_faults: AtomicU64::new(0),
                wal: Some(wal),
                recovery: Some(report),
            }),
        };
        Ok((broker, report))
    }

    /// Declares (or re-declares, idempotently) a queue. Re-declaring an
    /// existing queue — including one rebuilt by [`Broker::open_durable`]
    /// — updates its config in place, so recovered queues pick up their
    /// backlog caps and partition counts on the first post-restart
    /// declare (a changed partition count deterministically re-routes the
    /// recovered backlog by each delivery's tag hint).
    pub fn declare_queue(&self, name: &str, config: QueueConfig) {
        let mut routes = self.inner.routes.write();
        if let Some(queue) = routes.queues.get(name) {
            queue.reconfigure(config);
        } else {
            let wal = self.inner.wal.as_ref().map(|wal| WalBinding {
                wal: wal.clone(),
                queue: name.to_owned(),
            });
            routes
                .queues
                .insert(name.to_owned(), Arc::new(Queue::new(config, wal)));
        }
        routes.rebuild();
    }

    /// Binds `queue` to the fanout exchange of publisher app `exchange`.
    pub fn bind(&self, exchange: &str, queue: &str) {
        let mut routes = self.inner.routes.write();
        let bindings = routes.bindings.entry(exchange.to_owned()).or_default();
        if !bindings.iter().any(|q| q == queue) {
            bindings.push(queue.to_owned());
        }
        routes.rebuild();
    }

    /// Consumes one armed publish fault, if any. CAS loop: under concurrent
    /// publishers each armed fault fails exactly one attempt.
    fn consume_armed_fault(&self) -> bool {
        let armed = &self.inner.publish_fail_next;
        let mut current = armed.load(Ordering::Acquire);
        while current > 0 {
            match armed.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.inner.publish_faults.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// Publishes a payload on `exchange`, fanning out to all bound queues.
    /// Each queue shares the payload allocation.
    ///
    /// Fails with a transient [`PublishError`] while injected publish faults
    /// are armed ([`Broker::inject_publish_failures`]); a failed publish
    /// enqueues nothing and should be retried by the caller.
    pub fn publish(
        &self,
        exchange: &str,
        payload: impl Into<SharedStr>,
    ) -> Result<(), PublishError> {
        self.publish_stamped(exchange, payload, 0)
    }

    /// [`Broker::publish`] carrying the publisher's monotonic origin stamp
    /// (nanoseconds since the process telemetry epoch). The stamp rides the
    /// delivery envelope so subscribers can compute end-to-end visibility
    /// latency; 0 means unstamped.
    pub fn publish_stamped(
        &self,
        exchange: &str,
        payload: impl Into<SharedStr>,
        origin_nanos: u64,
    ) -> Result<(), PublishError> {
        self.publish_routed(exchange, payload, origin_nanos, 0)
    }

    /// [`Broker::publish_stamped`] carrying a partition routing key
    /// (typically the written object's dependency key). The key's low
    /// byte is folded into the delivery tag and picks the destination
    /// partition in every bound queue, so one object's messages stay in
    /// one partition in publish order. Key 0 is the unkeyed/legacy route
    /// (partition 0, strict global FIFO).
    pub fn publish_routed(
        &self,
        exchange: &str,
        payload: impl Into<SharedStr>,
        origin_nanos: u64,
        key: u64,
    ) -> Result<(), PublishError> {
        if self.consume_armed_fault() || self.wal_is_poisoned() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        let payload = payload.into();
        let routes = self.inner.routes.read();
        if let Some((shared_exchange, targets)) = routes.resolved.get(exchange) {
            for queue in targets {
                queue.enqueue_routed(shared_exchange, &payload, origin_nanos, key);
            }
        }
        drop(routes);
        // A WAL append that died mid-publish poisoned the log: the message
        // was not durably accepted, so the publish itself must fail (a
        // durable publish-Ok implies the record is on the log).
        if self.wal_is_poisoned() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Publishes a batch of payloads on `exchange` in order, resolving the
    /// routing once and taking each bound queue's lock once for the whole
    /// batch. Returns the number of messages accepted.
    ///
    /// An armed publish fault rejects the entire batch (the connection blip
    /// happened before anything was written) and consumes one injected
    /// failure, matching one failed `publish` call.
    pub fn publish_batch<I>(&self, exchange: &str, payloads: I) -> Result<u64, PublishError>
    where
        I: IntoIterator,
        I::Item: Into<SharedStr>,
    {
        self.publish_batch_stamped(
            exchange,
            payloads.into_iter().map(|p| (p.into(), 0)).collect(),
        )
    }

    /// [`Broker::publish_batch`] with a per-payload origin stamp (see
    /// [`Broker::publish_stamped`]).
    pub fn publish_batch_stamped(
        &self,
        exchange: &str,
        payloads: Vec<(SharedStr, u64)>,
    ) -> Result<u64, PublishError> {
        if payloads.is_empty() {
            return Ok(0);
        }
        if self.consume_armed_fault() || self.wal_is_poisoned() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        let routes = self.inner.routes.read();
        if let Some((shared_exchange, targets)) = routes.resolved.get(exchange) {
            for queue in targets {
                queue.enqueue_batch(shared_exchange, &payloads);
            }
        }
        drop(routes);
        // See publish_stamped: a mid-batch WAL death fails the batch.
        if self.wal_is_poisoned() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        let accepted = payloads.len() as u64;
        self.inner.published.fetch_add(accepted, Ordering::Relaxed);
        Ok(accepted)
    }

    /// [`Broker::publish_batch_stamped`] with a per-payload partition
    /// routing key: `(payload, origin_nanos, key)`. Each bound queue
    /// groups the batch by destination partition and takes one lock per
    /// *touched* partition, so concurrent batches to disjoint partitions
    /// never contend. Relative payload order is preserved within each
    /// partition (and therefore per routing key).
    pub fn publish_batch_routed(
        &self,
        exchange: &str,
        payloads: Vec<(SharedStr, u64, u64)>,
    ) -> Result<u64, PublishError> {
        if payloads.is_empty() {
            return Ok(0);
        }
        if self.consume_armed_fault() || self.wal_is_poisoned() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        let routes = self.inner.routes.read();
        if let Some((shared_exchange, targets)) = routes.resolved.get(exchange) {
            for queue in targets {
                queue.enqueue_batch_routed(shared_exchange, &payloads, false);
            }
        }
        drop(routes);
        if self.wal_is_poisoned() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        let accepted = payloads.len() as u64;
        self.inner.published.fetch_add(accepted, Ordering::Relaxed);
        Ok(accepted)
    }

    /// Injects a bootstrap watermark marker into every partition of
    /// `queue` (DBLog-style lo/hi watermark, one marker per partition so
    /// each worker observes its own lane's boundary). Markers bypass
    /// bindings, backlog caps, and armed publish/drop faults — they are
    /// control traffic from the node's own bootstrap, not publisher data —
    /// but are WAL-framed atomically so an unconsumed marker survives a
    /// crash in its original stream position.
    ///
    /// Returns the number of markers enqueued: 0 if the queue is unknown,
    /// decommissioned, or the WAL refused the frame; otherwise the
    /// partition count.
    pub fn publish_watermark(&self, queue: &str, session: u64, chunk: u64, high: bool) -> usize {
        if self.wal_is_poisoned() {
            return 0;
        }
        let routes = self.inner.routes.read();
        let Some(q) = routes.queues.get(queue) else {
            return 0;
        };
        let exchange = SharedStr::from(WATERMARK_EXCHANGE);
        let payload = SharedStr::from(watermark_payload(session, chunk, high).as_str());
        q.enqueue_watermark(&exchange, &payload, session, chunk, high)
    }

    /// Enqueues payloads directly into one named queue, bypassing exchange
    /// bindings (and armed publish faults — this is the node's own
    /// bootstrap merging chunk copies into its subscriber's queue, not a
    /// publisher on the wire). Payloads are `(payload, origin_nanos,
    /// route_key)` exactly as in [`Broker::publish_batch_routed`], so
    /// copies land in the same partition as live traffic for their key.
    ///
    /// Returns the number accepted; short counts (queue unknown,
    /// decommissioned, or WAL commit failure) mean the remainder was NOT
    /// enqueued and the caller should retry the chunk.
    pub fn publish_to_queue(
        &self,
        queue: &str,
        exchange: &str,
        payloads: Vec<(SharedStr, u64, u64)>,
    ) -> usize {
        if payloads.is_empty() {
            return 0;
        }
        if self.wal_is_poisoned() {
            return 0;
        }
        let routes = self.inner.routes.read();
        let Some(q) = routes.queues.get(queue) else {
            return 0;
        };
        let shared_exchange = SharedStr::from(exchange);
        // Bootstrap merges are cap-exempt: the copier is flow-controlled
        // by its chunk windows, and a cap kill here would sweep the live
        // backlog the resume watermarks depend on.
        let added = q.enqueue_batch_routed(&shared_exchange, &payloads, true);
        drop(routes);
        if self.wal_is_poisoned() {
            return 0;
        }
        self.inner
            .published
            .fetch_add(added as u64, Ordering::Relaxed);
        added
    }

    /// Lineage signals for bootstrap-resume decisions: cumulative
    /// `(discarded, refused, dropped)` counts for `queue`. Movement in the
    /// loss counters (discarded — backlog swept by a decommission — or
    /// dropped) between two bootstrap attempts means live-stream coverage
    /// was broken, so committed copy watermarks can no longer be trusted
    /// to resume from. Refused publishes are reported too but are not a
    /// loss signal: the publisher journal republishes them.
    pub fn queue_discard_stats(&self, queue: &str) -> Option<(u64, u64, u64)> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| {
            let c = q.counters();
            (c.discarded, c.refused, c.dropped)
        })
    }

    /// Returns a consumer handle for `queue`, or `None` if undeclared.
    pub fn consumer(&self, queue: &str) -> Option<Consumer> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| Consumer {
            queue: q.clone(),
            name: queue.to_owned(),
        })
    }

    /// Current state of a queue.
    pub fn queue_state(&self, queue: &str) -> Option<QueueState> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.state_snapshot())
    }

    /// Current backlog length of a queue. Lock-free: reads the relaxed
    /// gauge the partitions maintain, so telemetry polling never contends
    /// with the delivery hot path.
    pub fn queue_len(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.len())
    }

    /// Number of deliveries popped but not yet acked, nacked, or
    /// dead-lettered. A queue is fully drained only when both this and
    /// [`Broker::queue_len`] are zero. Lock-free gauge read.
    pub fn queue_unacked_len(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.unacked_len())
    }

    /// Number of partitions a queue was declared with.
    pub fn queue_partitions(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.partition_count())
    }

    /// Per-partition ready depths of a queue (lock-free gauge reads); the
    /// telemetry plane's partition-depth gauges.
    pub fn partition_depths(&self, queue: &str) -> Option<Vec<usize>> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.partition_depths())
    }

    /// Number of consumers currently parked on a queue's condvar.
    pub fn queue_sleepers(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.sleepers())
    }

    /// Wakes every consumer parked on `queue` (their in-flight batch pops
    /// return empty). Subscriber shutdown uses this so workers re-check
    /// their stop flag immediately instead of waiting out the park timeout.
    pub fn wake_queue(&self, queue: &str) {
        let routes = self.inner.routes.read();
        if let Some(q) = routes.queues.get(queue) {
            q.wake_all();
        }
    }

    /// Resets a decommissioned queue to active/empty (the subscriber is
    /// rejoining via partial bootstrap, §4.4). Idempotent: returns `true`
    /// only when the queue actually transitioned from decommissioned to
    /// active; an already-active queue (e.g. a reinstate racing a broker
    /// restart that already happened) is left untouched.
    pub fn reinstate_queue(&self, queue: &str) -> bool {
        let routes = self.inner.routes.read();
        routes
            .queues
            .get(queue)
            .map(|q| q.reinstate())
            .unwrap_or(false)
    }

    /// Failure injection: silently drop the next `n` messages bound for
    /// `queue` (the §6.5 RabbitMQ-upgrade incident).
    pub fn inject_drop_next(&self, queue: &str, n: u64) {
        let routes = self.inner.routes.read();
        if let Some(q) = routes.queues.get(queue) {
            q.inject_drop_next(n);
        }
    }

    /// Failure injection: fail the next `n` publish attempts (on any
    /// exchange) with a transient [`PublishError`].
    pub fn inject_publish_failures(&self, n: u64) {
        self.inner.publish_fail_next.fetch_add(n, Ordering::Release);
    }

    /// Failure injection: force-decommission a queue, discarding its
    /// backlog, as if it had exceeded its cap.
    pub fn decommission_queue(&self, queue: &str) {
        let routes = self.inner.routes.read();
        if let Some(q) = routes.queues.get(queue) {
            q.force_decommission();
        }
    }

    /// Snapshot of a queue's dead-letter store.
    pub fn dead_letters(&self, queue: &str) -> Option<Vec<Delivery>> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.dead_letters())
    }

    /// Number of dead-lettered deliveries held for `queue` (lock-free
    /// gauge read).
    pub fn dead_letter_len(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.dead_len())
    }

    /// Failure injection: broker restart. All unacked deliveries return to
    /// the front of their queues flagged `redelivered`.
    pub fn recover(&self) {
        let routes = self.inner.routes.read();
        for q in routes.queues.values() {
            q.recover();
        }
    }

    fn wal_is_poisoned(&self) -> bool {
        self.inner.wal.as_ref().is_some_and(|wal| wal.is_poisoned())
    }

    /// Whether this broker has a durability plane.
    pub fn is_durable(&self) -> bool {
        self.inner.wal.is_some()
    }

    /// The underlying WAL handle (fault injection and tests). `None` for
    /// memory-only brokers.
    pub fn wal(&self) -> Option<Arc<Wal>> {
        self.inner.wal.clone()
    }

    /// Current WAL append position; `None` for memory-only brokers.
    pub fn wal_position(&self) -> Option<LogPos> {
        self.inner.wal.as_ref().map(|wal| wal.position())
    }

    /// WAL lifetime counters; `None` for memory-only brokers.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.inner.wal.as_ref().map(|wal| wal.stats())
    }

    /// Frames-per-group-commit histogram; `None` for memory-only brokers.
    pub fn wal_group_size(&self) -> Option<synapse_telemetry::HistogramSnapshot> {
        self.inner.wal.as_ref().map(|wal| wal.group_size_snapshot())
    }

    /// Group-commit follower wait histogram (nanoseconds); `None` for
    /// memory-only brokers.
    pub fn wal_commit_wait(&self) -> Option<synapse_telemetry::HistogramSnapshot> {
        self.inner
            .wal
            .as_ref()
            .map(|wal| wal.commit_wait_snapshot())
    }

    /// What [`Broker::open_durable`] rebuilt; `None` for memory-only
    /// brokers (a fresh durable broker reports an all-zero recovery).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.inner.recovery
    }

    /// Forces an fsync of the WAL tail. No-op for memory-only brokers.
    pub fn sync_wal(&self) -> io::Result<()> {
        match &self.inner.wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Checkpoints every queue into a fresh WAL segment and garbage-
    /// collects the segments the checkpoint supersedes. Returns the
    /// checkpoint segment index (0 for memory-only brokers, a no-op).
    ///
    /// Crash-safe at every step: old segments are deleted only after all
    /// checkpoint records are written *and synced*, so a crash
    /// mid-checkpoint recovers from the old segments plus whatever
    /// checkpoint prefix survived (a torn checkpoint record is truncated
    /// away like any torn frame).
    pub fn checkpoint(&self) -> io::Result<u64> {
        let Some(wal) = &self.inner.wal else {
            return Ok(0);
        };
        let boundary = wal.begin_checkpoint()?;
        let queues: Vec<Arc<Queue>> = {
            let routes = self.inner.routes.read();
            let mut named: Vec<(&String, &Arc<Queue>)> = routes.queues.iter().collect();
            named.sort_unstable_by_key(|(name, _)| *name);
            named.into_iter().map(|(_, q)| q.clone()).collect()
        };
        for queue in queues {
            queue.append_checkpoint()?;
        }
        wal.sync()?;
        wal.gc_before(boundary)?;
        Ok(boundary)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> BrokerStats {
        let routes = self.inner.routes.read();
        let mut stats = BrokerStats {
            published: self.inner.published.load(Ordering::Relaxed),
            publish_faults: self.inner.publish_faults.load(Ordering::Relaxed),
            ..BrokerStats::default()
        };
        for q in routes.queues.values() {
            let qi = q.counters();
            stats.enqueued += qi.enqueued;
            stats.acked += qi.acked;
            stats.dropped += qi.dropped;
            stats.refused += qi.refused;
            stats.discarded += qi.discarded;
            stats.redelivered += qi.redelivered;
            stats.dead_lettered += qi.dead_lettered;
            stats.spurious_acks += qi.spurious_acks;
            stats.spurious_nacks += qi.spurious_nacks;
            stats.reinstated += qi.reinstated;
            stats.wakeups += qi.wakeups;
            stats.steals += qi.steals;
            stats.stolen += qi.stolen;
        }
        stats
    }
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

/// A consumer bound to one queue. Cloneable; multiple workers may consume
/// the same queue concurrently (the paper's parallel subscriber workers).
#[derive(Clone)]
pub struct Consumer {
    queue: Arc<Queue>,
    name: String,
}

impl Consumer {
    /// Queue name this consumer reads from.
    pub fn queue_name(&self) -> &str {
        &self.name
    }

    /// Blocking pop: waits up to `timeout` for a delivery. Returns `None`
    /// on timeout or if the queue was decommissioned.
    pub fn pop(&self, timeout: Duration) -> Option<Delivery> {
        self.queue.pop(timeout)
    }

    /// Blocking batch pop: parks on the queue's condvar until a delivery
    /// arrives, then drains up to `max` ready deliveries in FIFO order
    /// under one lock acquisition. Returns empty on timeout, decommission,
    /// or [`Broker::wake_queue`].
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<Delivery> {
        self.queue.pop_batch(max, timeout)
    }

    /// Number of partitions in this consumer's queue.
    pub fn partition_count(&self) -> usize {
        self.queue.partition_count()
    }

    /// Drains up to `max` deliveries from one partition. A zero timeout
    /// is a non-blocking poll (the work-stealing workers' home-partition
    /// scan); otherwise parks on the queue condvar until the deadline.
    pub fn pop_batch_from(&self, partition: usize, max: usize, timeout: Duration) -> Vec<Delivery> {
        self.queue.pop_batch_from(partition, max, timeout)
    }

    /// Steals up to `min(max, ceil(ready/2))` deliveries from the front
    /// of a victim partition's ready run (non-blocking). The stolen
    /// deliveries' tags still name the victim partition, so
    /// [`Consumer::ack`] routes them correctly from any worker.
    pub fn steal_batch(&self, partition: usize, max: usize) -> Vec<Delivery> {
        self.queue.steal_batch(partition, max)
    }

    /// Parks until the queue has ready deliveries, is decommissioned, or
    /// is woken by [`Broker::wake_queue`] — or until `timeout` passes.
    /// Returns `false` only on timeout; `true` means "rescan now".
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        self.queue.wait_ready(timeout)
    }

    /// Whether ready deliveries exist outside `tag`'s own partition
    /// (lock-free). See the subscriber's dependency-wait yield protocol.
    pub fn ready_elsewhere(&self, tag: u64) -> bool {
        self.queue.ready_elsewhere(tag)
    }

    /// Acknowledges a delivery; returns `false` for unknown tags.
    pub fn ack(&self, tag: u64) -> bool {
        self.queue.ack(tag)
    }

    /// Acknowledges a batch of tags under one queue lock acquisition.
    /// Returns how many were live; unknown tags count as spurious, exactly
    /// as individual [`Consumer::ack`] calls would.
    pub fn ack_batch(&self, tags: &[u64]) -> u64 {
        self.queue.ack_batch(tags)
    }

    /// Returns a delivery to the queue front for redelivery.
    pub fn nack(&self, tag: u64) -> bool {
        self.queue.nack(tag)
    }

    /// Routes an unacked delivery to the queue's dead-letter store: the
    /// message is consumed (like an ack) but retained and counted instead of
    /// silently discarded. Returns `false` for unknown tags.
    pub fn dead_letter(&self, tag: u64) -> bool {
        self.queue.dead_letter(tag)
    }

    /// Whether the queue has been decommissioned.
    pub fn is_decommissioned(&self) -> bool {
        self.queue.is_decommissioned()
    }

    /// Blocks until the queue is quiescent — zero ready deliveries AND
    /// zero unacked in-flight — or `timeout` passes. Event-driven: parks
    /// on a condvar that acks/dead-letters/sweeps notify, so there is no
    /// busy-poll. Returns whether the queue was quiescent on return.
    /// Subscribers ack only after the version-store apply commits, so
    /// quiescent implies every accepted delivery is applied.
    pub fn wait_quiescent(&self, timeout: Duration) -> bool {
        self.queue.wait_quiescent(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn broker_with(queue: &str) -> Broker {
        let b = Broker::new();
        b.declare_queue(queue, QueueConfig::default());
        b.bind("pub", queue);
        b
    }

    #[test]
    fn fanout_reaches_all_bound_queues() {
        let b = Broker::new();
        b.declare_queue("q1", QueueConfig::default());
        b.declare_queue("q2", QueueConfig::default());
        b.bind("pub", "q1");
        b.bind("pub", "q2");
        b.publish("pub", "m").unwrap();
        for q in ["q1", "q2"] {
            let c = b.consumer(q).unwrap();
            assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "m");
        }
    }

    #[test]
    fn fanout_shares_one_payload_allocation() {
        let b = Broker::new();
        b.declare_queue("q1", QueueConfig::default());
        b.declare_queue("q2", QueueConfig::default());
        b.bind("pub", "q1");
        b.bind("pub", "q2");
        b.publish("pub", "shared-body").unwrap();
        let d1 = b
            .consumer("q1")
            .unwrap()
            .pop(Duration::from_millis(50))
            .unwrap();
        let d2 = b
            .consumer("q2")
            .unwrap()
            .pop(Duration::from_millis(50))
            .unwrap();
        assert!(
            std::ptr::eq(d1.payload.as_str(), d2.payload.as_str()),
            "both queues must share the published allocation"
        );
        assert!(std::ptr::eq(d1.exchange.as_str(), d2.exchange.as_str()));
    }

    #[test]
    fn bind_before_declare_still_routes() {
        let b = Broker::new();
        b.bind("pub", "q");
        b.declare_queue("q", QueueConfig::default());
        b.publish("pub", "m").unwrap();
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "m");
    }

    #[test]
    fn unbound_queue_receives_nothing() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig::default());
        b.publish("pub", "m").unwrap();
        assert!(b
            .consumer("q")
            .unwrap()
            .pop(Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let b = broker_with("q");
        for i in 0..10 {
            b.publish("pub", i.to_string()).unwrap();
        }
        let c = b.consumer("q").unwrap();
        for i in 0..10 {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            assert_eq!(d.payload, i.to_string());
            c.ack(d.tag);
        }
    }

    #[test]
    fn publish_batch_preserves_fifo_and_counts() {
        let b = broker_with("q");
        let accepted = b.publish_batch("pub", ["a", "b", "c"]).unwrap();
        assert_eq!(accepted, 3);
        let c = b.consumer("q").unwrap();
        for expected in ["a", "b", "c"] {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            assert_eq!(d.payload, expected);
            c.ack(d.tag);
        }
        let s = b.stats();
        assert_eq!(s.published, 3);
        assert_eq!(s.enqueued, 3);
    }

    #[test]
    fn empty_batch_is_a_noop_even_under_faults() {
        let b = broker_with("q");
        b.inject_publish_failures(1);
        assert_eq!(b.publish_batch("pub", Vec::<String>::new()).unwrap(), 0);
        // The armed fault was not consumed by the empty batch.
        assert!(b.publish("pub", "x").is_err());
    }

    #[test]
    fn faulted_batch_rejects_everything_and_consumes_one_fault() {
        let b = broker_with("q");
        b.inject_publish_failures(1);
        assert!(b.publish_batch("pub", ["a", "b"]).is_err());
        assert_eq!(b.queue_len("q"), Some(0), "nothing enqueued");
        assert_eq!(b.publish_batch("pub", ["a", "b"]).unwrap(), 2);
        let s = b.stats();
        assert_eq!(s.publish_faults, 1);
        assert_eq!(s.published, 2);
    }

    #[test]
    fn pop_batch_drains_up_to_max_in_order() {
        let b = broker_with("q");
        b.publish_batch("pub", ["a", "b", "c", "d", "e"]).unwrap();
        let c = b.consumer("q").unwrap();
        let first = c.pop_batch(3, Duration::from_millis(50));
        assert_eq!(
            first.iter().map(|d| d.payload.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        let rest = c.pop_batch(10, Duration::from_millis(50));
        assert_eq!(
            rest.iter().map(|d| d.payload.as_str()).collect::<Vec<_>>(),
            ["d", "e"]
        );
        let tags: Vec<u64> = first.iter().chain(&rest).map(|d| d.tag).collect();
        assert_eq!(c.ack_batch(&tags), 5);
        assert_eq!(b.stats().acked, 5);
        assert_eq!(b.queue_unacked_len("q"), Some(0));
    }

    #[test]
    fn pop_batch_wakes_on_publish() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let h = thread::spawn(move || c.pop_batch(8, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        b.publish("pub", "late").unwrap();
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, "late");
    }

    #[test]
    fn wake_queue_unparks_an_empty_pop_batch() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let start = std::time::Instant::now();
        let h = thread::spawn(move || c.pop_batch(8, Duration::from_secs(30)));
        thread::sleep(Duration::from_millis(30));
        b.wake_queue("q");
        assert!(h.join().unwrap().is_empty());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake must beat the park timeout"
        );
    }

    #[test]
    fn ack_batch_counts_spurious_tags() {
        let b = broker_with("q");
        b.publish("pub", "m").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(c.ack_batch(&[d.tag, 999]), 1);
        let s = b.stats();
        assert_eq!(s.acked, 1);
        assert_eq!(s.spurious_acks, 1);
    }

    #[test]
    fn batch_into_capped_queue_kills_once_and_refuses_rest() {
        let b = Broker::new();
        b.declare_queue(
            "q",
            QueueConfig {
                max_len: Some(3),
                ..QueueConfig::default()
            },
        );
        b.bind("pub", "q");
        b.publish_batch("pub", ["0", "1", "2", "3", "4"]).unwrap();
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        let s = b.stats();
        // Same accounting as five individual publishes: 3 accepted, the
        // cap-triggering copy and the next refused, backlog discarded.
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.discarded, 3);
        assert_eq!(s.refused, 2);
    }

    #[test]
    fn nack_requeues_at_front_flagged_redelivered() {
        let b = broker_with("q");
        b.publish("pub", "a").unwrap();
        b.publish("pub", "b").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(!d.redelivered);
        assert!(c.nack(d.tag));
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(d2.payload, "a");
        assert!(d2.redelivered);
        assert_eq!(b.stats().redelivered, 1);
    }

    #[test]
    fn ack_of_unknown_tag_is_rejected_and_counted() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        assert!(!c.ack(999));
        assert_eq!(b.stats().spurious_acks, 1);
        assert!(!c.nack(999));
        assert_eq!(b.stats().spurious_nacks, 1);
    }

    #[test]
    fn double_ack_is_spurious() {
        let b = broker_with("q");
        b.publish("pub", "m").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(c.ack(d.tag));
        assert!(!c.ack(d.tag), "second ack of the same tag must fail");
        assert!(!c.nack(d.tag), "nack after ack must fail");
        let s = b.stats();
        assert_eq!(s.acked, 1);
        assert_eq!(s.spurious_acks, 1);
        assert_eq!(s.spurious_nacks, 1);
    }

    #[test]
    fn injected_publish_failures_are_transient_and_counted() {
        let b = broker_with("q");
        b.inject_publish_failures(2);
        assert!(b.publish("pub", "x").is_err());
        assert!(b.publish("pub", "y").is_err());
        b.publish("pub", "z").unwrap();
        let s = b.stats();
        assert_eq!(s.publish_faults, 2);
        assert_eq!(s.published, 1, "failed publishes are not accepted");
        assert_eq!(s.enqueued, 1);
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "z");
    }

    #[test]
    fn dead_letter_consumes_without_losing_the_payload() {
        let b = broker_with("q");
        b.publish("pub", "poison").unwrap();
        b.publish("pub", "good").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(c.dead_letter(d.tag));
        assert!(!c.dead_letter(d.tag), "tag is consumed by dead-lettering");
        // The poisoned message is out of the delivery path…
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(d2.payload, "good");
        // …but retained and counted.
        let dead = b.dead_letters("q").unwrap();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].payload, "poison");
        assert_eq!(b.dead_letter_len("q"), Some(1));
        assert_eq!(b.stats().dead_lettered, 1);
        // Dead letters survive broker restarts and reinstatement.
        b.recover();
        b.reinstate_queue("q");
        assert_eq!(b.dead_letter_len("q"), Some(1));
    }

    #[test]
    fn decommission_accounts_for_discarded_backlog() {
        let b = Broker::new();
        b.declare_queue(
            "q",
            QueueConfig {
                max_len: Some(3),
                ..QueueConfig::default()
            },
        );
        b.bind("pub", "q");
        for i in 0..5 {
            b.publish("pub", i.to_string()).unwrap();
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        let s = b.stats();
        // 3 accepted, then the cap-triggering copy and the one after it
        // were refused; the 3-message backlog was discarded.
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.discarded, 3);
        assert_eq!(s.refused, 2);
    }

    #[test]
    fn force_decommission_discards_and_refuses() {
        let b = broker_with("q");
        b.publish("pub", "a").unwrap();
        b.decommission_queue("q");
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        b.publish("pub", "late").unwrap();
        let s = b.stats();
        assert_eq!(s.discarded, 1);
        assert_eq!(s.refused, 1);
        assert!(b
            .consumer("q")
            .unwrap()
            .pop(Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn blocking_pop_wakes_on_publish() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let h = thread::spawn(move || c.pop(Duration::from_secs(5)).unwrap().payload);
        thread::sleep(Duration::from_millis(30));
        b.publish("pub", "late").unwrap();
        assert_eq!(h.join().unwrap(), "late");
    }

    #[test]
    fn concurrent_workers_partition_the_queue() {
        let b = broker_with("q");
        for i in 0..100 {
            b.publish("pub", i.to_string()).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = b.consumer("q").unwrap();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(d) = c.pop(Duration::from_millis(50)) {
                    got.push(d.payload.clone());
                    c.ack(d.tag);
                }
                got
            }));
        }
        let mut all: Vec<_> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len(), 100, "each message delivered exactly once");
        all.sort_by_key(|s| s.parse::<u64>().unwrap());
        for (i, payload) in all.iter().enumerate() {
            assert_eq!(payload, &i.to_string());
        }
    }

    #[test]
    fn queue_cap_triggers_decommission() {
        let b = Broker::new();
        b.declare_queue(
            "q",
            QueueConfig {
                max_len: Some(5),
                ..QueueConfig::default()
            },
        );
        b.bind("pub", "q");
        for i in 0..10 {
            b.publish("pub", i.to_string()).unwrap();
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        assert_eq!(b.queue_len("q"), Some(0), "backlog was discarded");
        let c = b.consumer("q").unwrap();
        assert!(c.is_decommissioned());
        assert!(c.pop(Duration::from_millis(20)).is_none());
        // Reinstating restores delivery.
        b.reinstate_queue("q");
        b.publish("pub", "fresh").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "fresh");
    }

    #[test]
    fn injected_drops_lose_messages_silently() {
        let b = broker_with("q");
        b.inject_drop_next("q", 2);
        for i in 0..4 {
            b.publish("pub", i.to_string()).unwrap();
        }
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "2");
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "3");
        assert_eq!(b.stats().dropped, 2);
    }

    #[test]
    fn recover_requeues_unacked_in_order() {
        let b = broker_with("q");
        for p in ["a", "b", "c"] {
            b.publish("pub", p).unwrap();
        }
        let c = b.consumer("q").unwrap();
        let d1 = c.pop(Duration::from_millis(50)).unwrap();
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d1.tag);
        assert_eq!(d2.payload, "b");
        // Restart: "b" (unacked) returns before "c".
        b.recover();
        let r1 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r1.payload, "b");
        assert!(r1.redelivered);
        let r2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r2.payload, "c");
    }

    #[test]
    fn durable_broker_recovers_unacked_and_skips_acked() {
        let dir = crate::wal::tests::temp_dir("broker-recover");
        let cfg = WalConfig::new(&dir).fsync(crate::wal::FsyncPolicy::EveryWrite);
        let (b, report) = Broker::open_durable(cfg.clone()).unwrap();
        assert_eq!(
            report,
            RecoveryReport::default(),
            "fresh log, empty recovery"
        );
        b.declare_queue("q", QueueConfig::default());
        b.bind("pub", "q");
        for i in 0..6 {
            b.publish("pub", format!("m{i}")).unwrap();
        }
        let c = b.consumer("q").unwrap();
        // Ack m0/m1, dead-letter m2, leave m3 unacked-in-flight, m4/m5 ready.
        for _ in 0..2 {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            c.ack(d.tag);
        }
        let d = c.pop(Duration::from_millis(50)).unwrap();
        c.dead_letter(d.tag);
        let _in_flight = c.pop(Duration::from_millis(50)).unwrap();

        // Crash: drop every handle; only the log survives.
        drop((c, b));
        let (b2, report) = Broker::open_durable(cfg).unwrap();
        assert_eq!(report.queues_recovered, 1);
        assert_eq!(report.acked_skipped, 2, "acked deliveries stay consumed");
        assert_eq!(report.messages_recovered, 3, "m3 (in flight), m4, m5");
        assert_eq!(report.dead_recovered, 1);
        b2.declare_queue("q", QueueConfig::default());
        b2.bind("pub", "q");
        let c2 = b2.consumer("q").unwrap();
        for expected in ["m3", "m4", "m5"] {
            let d = c2.pop(Duration::from_millis(50)).unwrap();
            assert_eq!(d.payload, expected);
            assert!(d.redelivered, "recovered deliveries are flagged");
            c2.ack(d.tag);
        }
        assert_eq!(b2.dead_letters("q").unwrap()[0].payload, "m2");
        // Tags keep advancing past the recovered counter.
        b2.publish("pub", "fresh").unwrap();
        let d = c2.pop(Duration::from_millis(50)).unwrap();
        assert!(d.tag >= 7, "tag counter survives recovery, got {}", d.tag);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_gc_preserves_recovery_and_shrinks_log() {
        let dir = crate::wal::tests::temp_dir("broker-ckpt");
        let cfg = WalConfig::new(&dir)
            .segment_max_bytes(512)
            .fsync(crate::wal::FsyncPolicy::Off);
        let (b, _) = Broker::open_durable(cfg.clone()).unwrap();
        b.declare_queue("q", QueueConfig::default());
        b.bind("pub", "q");
        for i in 0..80 {
            b.publish("pub", format!("payload-{i}")).unwrap();
        }
        let c = b.consumer("q").unwrap();
        for _ in 0..30 {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            c.ack(d.tag);
        }
        let before = b.wal_stats().unwrap();
        assert!(before.segments_rolled >= 2, "workload spans segments");
        b.checkpoint().unwrap();
        let after = b.wal_stats().unwrap();
        assert!(after.segments_removed >= 2, "checkpoint GCs old segments");
        drop((c, b));
        let (b2, report) = Broker::open_durable(cfg).unwrap();
        assert_eq!(
            report.messages_recovered, 50,
            "checkpoint state is complete"
        );
        b2.bind("pub", "q");
        let c2 = b2.consumer("q").unwrap();
        let mut got = Vec::new();
        while let Some(d) = c2.pop(Duration::from_millis(20)) {
            got.push(d.payload.as_str().to_owned());
            c2.ack(d.tag);
        }
        let expected: Vec<String> = (30..80).map(|i| format!("payload-{i}")).collect();
        assert_eq!(
            got, expected,
            "recovered backlog is the unacked suffix, in order"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decommission_and_reinstate_survive_restart() {
        let dir = crate::wal::tests::temp_dir("broker-decomm");
        let cfg = WalConfig::new(&dir).fsync(crate::wal::FsyncPolicy::EveryWrite);
        let (b, _) = Broker::open_durable(cfg.clone()).unwrap();
        b.declare_queue("q", QueueConfig::default());
        b.bind("pub", "q");
        b.publish("pub", "doomed").unwrap();
        b.decommission_queue("q");
        drop(b);
        let (b2, report) = Broker::open_durable(cfg.clone()).unwrap();
        assert_eq!(b2.queue_state("q"), Some(QueueState::Decommissioned));
        assert_eq!(report.messages_recovered, 0, "killed backlog stays dead");
        b2.reinstate_queue("q");
        drop(b2);
        let (b3, _) = Broker::open_durable(cfg).unwrap();
        assert_eq!(b3.queue_state("q"), Some(QueueState::Active));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_wal_fails_publishes_transiently() {
        let dir = crate::wal::tests::temp_dir("broker-poison");
        let cfg = WalConfig::new(&dir).fsync(crate::wal::FsyncPolicy::EveryWrite);
        let (b, _) = Broker::open_durable(cfg.clone()).unwrap();
        b.declare_queue("q", QueueConfig::default());
        b.bind("pub", "q");
        b.publish("pub", "before").unwrap();
        b.wal().unwrap().inject_partial_append(4);
        assert!(b.publish("pub", "torn").is_err(), "mid-append kill refuses");
        assert!(
            b.publish("pub", "after").is_err(),
            "poisoned log stays down"
        );
        assert_eq!(
            b.queue_len("q"),
            Some(1),
            "refused publishes enqueue nothing"
        );
        drop(b);
        let (b2, report) = Broker::open_durable(cfg).unwrap();
        assert_eq!(report.messages_recovered, 1, "only the confirmed publish");
        assert_eq!(report.torn_entries_dropped, 1);
        b2.bind("pub", "q");
        let c = b2.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "before");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn redeclare_updates_the_cap_in_place() {
        let b = broker_with("q");
        // Re-declare with a cap: the fourth publish trips it.
        b.declare_queue(
            "q",
            QueueConfig {
                max_len: Some(3),
                ..QueueConfig::default()
            },
        );
        for i in 0..5 {
            b.publish("pub", i.to_string()).unwrap();
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
    }

    /// Satellite: counted wakeups. Two workers park on the queue; a
    /// single publish must wake exactly one of them (no thundering herd),
    /// and the wakeup counter must record exactly one notify.
    #[test]
    fn single_publish_wakes_exactly_one_parked_worker() {
        let b = broker_with("q");
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = b.consumer("q").unwrap();
            handles.push(thread::spawn(move || {
                c.pop_batch(8, Duration::from_millis(600))
            }));
        }
        // Wait until both workers are actually parked before publishing.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.queue_sleepers("q") != Some(2) {
            assert!(std::time::Instant::now() < deadline, "workers never parked");
            thread::sleep(Duration::from_millis(2));
        }
        b.publish("pub", "solo").unwrap();
        let results: Vec<Vec<Delivery>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let nonempty = results.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(nonempty, 1, "exactly one worker received the message");
        assert_eq!(b.stats().wakeups, 1, "one message, one counted notify_one");
    }

    /// A batch of N messages into a pool of M sleepers issues at most
    /// min(N, M) wakeups, never a notify_all storm.
    #[test]
    fn batch_wakeups_are_counted_not_broadcast() {
        let b = broker_with("q");
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = b.consumer("q").unwrap();
            handles.push(thread::spawn(move || {
                c.pop_batch(1, Duration::from_millis(600)).len()
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.queue_sleepers("q") != Some(4) {
            assert!(std::time::Instant::now() < deadline, "workers never parked");
            thread::sleep(Duration::from_millis(2));
        }
        b.publish_batch("pub", ["a", "b"]).unwrap();
        let got: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(got, 2, "both messages delivered");
        assert_eq!(
            b.stats().wakeups,
            2,
            "two messages into four sleepers: two wakeups"
        );
    }

    /// Keyed publishes spread across partitions but keep per-key FIFO:
    /// each key's messages live in one partition in publish order.
    #[test]
    fn routed_publishes_keep_per_key_fifo_across_partitions() {
        let b = broker_with("q");
        for round in 0..5u64 {
            for key in 1..=3u64 {
                b.publish_routed("pub", format!("k{key}-{round}"), 0, key)
                    .unwrap();
            }
        }
        let depths = b.partition_depths("q").unwrap();
        assert_eq!(depths.iter().sum::<usize>(), 15);
        assert_eq!(depths[1], 5, "key 1 lives wholly in partition 1");
        assert_eq!(depths[2], 5);
        assert_eq!(depths[3], 5);
        let c = b.consumer("q").unwrap();
        let mut per_key: HashMap<char, Vec<String>> = HashMap::new();
        for d in c.pop_batch(64, Duration::from_millis(50)) {
            let p = d.payload.as_str();
            per_key
                .entry(p.chars().nth(1).unwrap())
                .or_default()
                .push(p.to_owned());
            c.ack(d.tag);
        }
        for key in ['1', '2', '3'] {
            let expected: Vec<String> = (0..5).map(|r| format!("k{key}-{r}")).collect();
            assert_eq!(per_key[&key], expected, "per-key FIFO for key {key}");
        }
    }

    /// Work stealing takes ceil(half) of the victim's ready run from the
    /// FRONT (oldest first), moves it in flight, and acks route back to
    /// the victim partition via the tag hint.
    #[test]
    fn steal_takes_half_the_victims_front_run() {
        let b = broker_with("q");
        for i in 0..4 {
            b.publish_routed("pub", format!("m{i}"), 0, 1).unwrap();
        }
        let c = b.consumer("q").unwrap();
        let stolen = c.steal_batch(1, 16);
        assert_eq!(
            stolen
                .iter()
                .map(|d| d.payload.as_str())
                .collect::<Vec<_>>(),
            ["m0", "m1"],
            "steal takes the oldest half"
        );
        let rest = c.pop_batch_from(1, 16, Duration::ZERO);
        assert_eq!(
            rest.iter().map(|d| d.payload.as_str()).collect::<Vec<_>>(),
            ["m2", "m3"]
        );
        let tags: Vec<u64> = stolen.iter().chain(&rest).map(|d| d.tag).collect();
        assert_eq!(
            c.ack_batch(&tags),
            4,
            "stolen tags ack through the hint route"
        );
        assert_eq!(b.queue_unacked_len("q"), Some(0));
        let s = b.stats();
        assert_eq!(s.steals, 1);
        assert_eq!(s.stolen, 2);
        // A lone message can still be stolen (ceil(1/2) == 1).
        b.publish_routed("pub", "lone", 0, 1).unwrap();
        assert_eq!(c.steal_batch(1, 16).len(), 1);
    }

    /// Re-declaring with a different partition count deterministically
    /// re-routes the backlog by each tag's hint — per-key order intact.
    #[test]
    fn redeclare_with_new_partition_count_reroutes_backlog() {
        let b = Broker::new();
        b.declare_queue(
            "q",
            QueueConfig {
                max_len: None,
                partitions: 4,
            },
        );
        b.bind("pub", "q");
        for round in 0..3u64 {
            for key in 0..8u64 {
                b.publish_routed("pub", format!("k{key}-{round}"), 0, key)
                    .unwrap();
            }
        }
        assert_eq!(b.queue_partitions("q"), Some(4));
        b.declare_queue(
            "q",
            QueueConfig {
                max_len: None,
                partitions: 2,
            },
        );
        assert_eq!(b.queue_partitions("q"), Some(2));
        let depths = b.partition_depths("q").unwrap();
        assert_eq!(
            depths,
            vec![12, 12],
            "even/odd keys split across 2 partitions"
        );
        let c = b.consumer("q").unwrap();
        let mut per_key: HashMap<String, Vec<String>> = HashMap::new();
        for d in c.pop_batch(64, Duration::from_millis(50)) {
            let p = d.payload.as_str();
            let key = p[1..p.find('-').unwrap()].to_owned();
            per_key.entry(key).or_default().push(p.to_owned());
            c.ack(d.tag);
        }
        for key in 0..8 {
            let expected: Vec<String> = (0..3).map(|r| format!("k{key}-{r}")).collect();
            assert_eq!(per_key[&key.to_string()], expected, "key {key} stays FIFO");
        }
    }

    /// The partitioned layout survives a durable restart: replay re-routes
    /// every pending delivery to the partition its tag hint names, so two
    /// reopens of the same log build identical layouts.
    #[test]
    fn partitioned_backlog_recovers_deterministically() {
        let dir = crate::wal::tests::temp_dir("broker-partitioned");
        let cfg = WalConfig::new(&dir).fsync(crate::wal::FsyncPolicy::EveryWrite);
        let (b, _) = Broker::open_durable(cfg.clone()).unwrap();
        b.declare_queue("q", QueueConfig::default());
        b.bind("pub", "q");
        for round in 0..4u64 {
            for key in 1..=3u64 {
                b.publish_routed("pub", format!("k{key}-{round}"), 0, key)
                    .unwrap();
            }
        }
        // Consume and ack key 2's first two messages so replay must skip
        // them inside one partition while preserving the others.
        let c = b.consumer("q").unwrap();
        let from2 = c.pop_batch_from(2, 2, Duration::ZERO);
        assert_eq!(from2.len(), 2);
        for d in &from2 {
            assert!(c.ack(d.tag));
        }
        drop((c, b));

        let depths_of = |cfg: WalConfig| {
            let (b2, _) = Broker::open_durable(cfg).unwrap();
            b2.declare_queue("q", QueueConfig::default());
            b2.bind("pub", "q");
            let depths = b2.partition_depths("q").unwrap();
            let c2 = b2.consumer("q").unwrap();
            let mut per_key: HashMap<String, Vec<String>> = HashMap::new();
            for d in c2.pop_batch(64, Duration::from_millis(50)) {
                assert!(d.redelivered, "recovered deliveries are flagged");
                let p = d.payload.as_str();
                let key = p[1..p.find('-').unwrap()].to_owned();
                per_key.entry(key).or_default().push(p.to_owned());
            }
            (depths, per_key)
        };
        let (depths_a, keys_a) = depths_of(cfg.clone());
        let (depths_b, keys_b) = depths_of(cfg);
        assert_eq!(depths_a, depths_b, "replay is deterministic");
        assert_eq!(keys_a, keys_b);
        assert_eq!(depths_a[1], 4);
        assert_eq!(depths_a[2], 2, "key 2's acked pair stays consumed");
        assert_eq!(depths_a[3], 4);
        assert_eq!(
            keys_a["2"],
            vec!["k2-2".to_owned(), "k2-3".to_owned()],
            "the unacked suffix of key 2, in order"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wait_ready_unparks_on_publish_and_counts_one_wakeup() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let h = thread::spawn(move || {
            let woke = c.wait_ready(Duration::from_secs(5));
            (woke, c.pop_batch_from(0, 8, Duration::ZERO).len())
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.queue_sleepers("q") != Some(1) {
            assert!(std::time::Instant::now() < deadline, "worker never parked");
            thread::sleep(Duration::from_millis(2));
        }
        b.publish("pub", "late").unwrap();
        let (woke, got) = h.join().unwrap();
        assert!(woke, "wait_ready returned before its timeout");
        assert_eq!(got, 1, "the unkeyed publish landed in partition 0");
        assert_eq!(b.stats().wakeups, 1);
    }

    #[test]
    fn stats_track_lifecycle() {
        let b = broker_with("q");
        b.publish("pub", "x").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d.tag);
        let s = b.stats();
        assert_eq!(s.published, 1);
        assert_eq!(s.enqueued, 1);
        assert_eq!(s.acked, 1);
    }
}
