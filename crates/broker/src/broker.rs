//! The broker facade: exchanges, bindings, consumers, failure injection.

use crate::message::Delivery;
use crate::queue::{Queue, QueueConfig, QueueState};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Aggregate broker counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages accepted from publishers (before fanout).
    pub published: u64,
    /// Message copies enqueued across all queues.
    pub enqueued: u64,
    /// Message copies acked by consumers.
    pub acked: u64,
    /// Message copies dropped by failure injection.
    pub dropped: u64,
    /// Message copies refused by decommissioned queues.
    pub refused: u64,
    /// Backlog copies discarded when a queue was decommissioned.
    pub discarded: u64,
    /// Deliveries returned to a queue by nack or broker restart.
    pub redelivered: u64,
    /// Deliveries routed to dead-letter stores.
    pub dead_lettered: u64,
    /// Acks naming an unknown or already-acked tag.
    pub spurious_acks: u64,
    /// Nacks naming an unknown or already-acked tag.
    pub spurious_nacks: u64,
    /// Publish attempts rejected by injected transient faults.
    pub publish_faults: u64,
}

/// Transient error returned by [`Broker::publish`] under injected faults.
///
/// Models the broker connection blips of the paper's §6.5 incident: the
/// message was *not* accepted and the publisher is expected to retry (its
/// journal still holds the payload, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishError {
    /// Exchange the publish was addressed to.
    pub exchange: String,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transient broker failure publishing to exchange {:?}",
            self.exchange
        )
    }
}

impl std::error::Error for PublishError {}

#[derive(Default)]
struct BrokerInner {
    /// exchange (publisher app) → bound queue names.
    bindings: HashMap<String, Vec<String>>,
    queues: HashMap<String, Arc<Queue>>,
    published: u64,
    /// Fault injection: fail the next `n` publish attempts.
    publish_fail_next: u64,
    publish_faults: u64,
}

/// An in-process message broker with RabbitMQ semantics. Cloneable handle;
/// clones share state.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use synapse_broker::{Broker, QueueConfig};
///
/// let broker = Broker::new();
/// broker.declare_queue("mailer", QueueConfig::default());
/// broker.bind("main_app", "mailer");
/// broker.publish("main_app", "{\"op\":\"create\"}").unwrap();
///
/// let consumer = broker.consumer("mailer").unwrap();
/// let d = consumer.pop(Duration::from_millis(100)).unwrap();
/// assert_eq!(d.payload, "{\"op\":\"create\"}");
/// consumer.ack(d.tag);
/// ```
#[derive(Clone)]
pub struct Broker {
    inner: Arc<RwLock<BrokerInner>>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker {
            inner: Arc::new(RwLock::new(BrokerInner::default())),
        }
    }

    /// Declares (or re-declares, idempotently) a queue.
    pub fn declare_queue(&self, name: &str, config: QueueConfig) {
        let mut inner = self.inner.write();
        inner
            .queues
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Queue::new(config)));
    }

    /// Binds `queue` to the fanout exchange of publisher app `exchange`.
    pub fn bind(&self, exchange: &str, queue: &str) {
        let mut inner = self.inner.write();
        let bindings = inner.bindings.entry(exchange.to_owned()).or_default();
        if !bindings.iter().any(|q| q == queue) {
            bindings.push(queue.to_owned());
        }
    }

    /// Publishes a payload on `exchange`, fanning out to all bound queues.
    ///
    /// Fails with a transient [`PublishError`] while injected publish faults
    /// are armed ([`Broker::inject_publish_failures`]); a failed publish
    /// enqueues nothing and should be retried by the caller.
    pub fn publish(&self, exchange: &str, payload: &str) -> Result<(), PublishError> {
        {
            let mut inner = self.inner.write();
            if inner.publish_fail_next > 0 {
                inner.publish_fail_next -= 1;
                inner.publish_faults += 1;
                return Err(PublishError {
                    exchange: exchange.to_owned(),
                });
            }
        }
        let inner = self.inner.read();
        if let Some(bound) = inner.bindings.get(exchange) {
            for name in bound {
                if let Some(queue) = inner.queues.get(name) {
                    queue.enqueue(exchange, payload);
                }
            }
        }
        drop(inner);
        self.inner.write().published += 1;
        Ok(())
    }

    /// Returns a consumer handle for `queue`, or `None` if undeclared.
    pub fn consumer(&self, queue: &str) -> Option<Consumer> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| Consumer {
            queue: q.clone(),
            name: queue.to_owned(),
        })
    }

    /// Current state of a queue.
    pub fn queue_state(&self, queue: &str) -> Option<QueueState> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| q.inner.lock().state)
    }

    /// Current backlog length of a queue.
    pub fn queue_len(&self, queue: &str) -> Option<usize> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| q.inner.lock().ready.len())
    }

    /// Resets a decommissioned queue to active/empty (the subscriber has
    /// completed its partial bootstrap and rejoins, §4.4).
    pub fn reinstate_queue(&self, queue: &str) {
        let inner = self.inner.read();
        if let Some(q) = inner.queues.get(queue) {
            q.reinstate();
        }
    }

    /// Failure injection: silently drop the next `n` messages bound for
    /// `queue` (the §6.5 RabbitMQ-upgrade incident).
    pub fn inject_drop_next(&self, queue: &str, n: u64) {
        let inner = self.inner.read();
        if let Some(q) = inner.queues.get(queue) {
            q.inner.lock().drop_next += n;
        }
    }

    /// Failure injection: fail the next `n` publish attempts (on any
    /// exchange) with a transient [`PublishError`].
    pub fn inject_publish_failures(&self, n: u64) {
        self.inner.write().publish_fail_next += n;
    }

    /// Failure injection: force-decommission a queue, discarding its
    /// backlog, as if it had exceeded its cap.
    pub fn decommission_queue(&self, queue: &str) {
        let inner = self.inner.read();
        if let Some(q) = inner.queues.get(queue) {
            let mut qi = q.inner.lock();
            qi.discarded += (qi.ready.len() + qi.unacked.len()) as u64;
            qi.ready.clear();
            qi.unacked.clear();
            qi.state = QueueState::Decommissioned;
            drop(qi);
            q.ready_cv.notify_all();
        }
    }

    /// Snapshot of a queue's dead-letter store.
    pub fn dead_letters(&self, queue: &str) -> Option<Vec<Delivery>> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| q.dead_letters())
    }

    /// Number of dead-lettered deliveries held for `queue`.
    pub fn dead_letter_len(&self, queue: &str) -> Option<usize> {
        let inner = self.inner.read();
        inner.queues.get(queue).map(|q| q.inner.lock().dead.len())
    }

    /// Failure injection: broker restart. All unacked deliveries return to
    /// the front of their queues flagged `redelivered`.
    pub fn recover(&self) {
        let inner = self.inner.read();
        for q in inner.queues.values() {
            q.recover();
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> BrokerStats {
        let inner = self.inner.read();
        let mut stats = BrokerStats {
            published: inner.published,
            publish_faults: inner.publish_faults,
            ..BrokerStats::default()
        };
        for q in inner.queues.values() {
            let qi = q.inner.lock();
            stats.enqueued += qi.enqueued;
            stats.acked += qi.acked;
            stats.dropped += qi.dropped;
            stats.refused += qi.refused;
            stats.discarded += qi.discarded;
            stats.redelivered += qi.redelivered;
            stats.dead_lettered += qi.dead_lettered;
            stats.spurious_acks += qi.spurious_acks;
            stats.spurious_nacks += qi.spurious_nacks;
        }
        stats
    }
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

/// A consumer bound to one queue. Cloneable; multiple workers may consume
/// the same queue concurrently (the paper's parallel subscriber workers).
#[derive(Clone)]
pub struct Consumer {
    queue: Arc<Queue>,
    name: String,
}

impl Consumer {
    /// Queue name this consumer reads from.
    pub fn queue_name(&self) -> &str {
        &self.name
    }

    /// Blocking pop: waits up to `timeout` for a delivery. Returns `None`
    /// on timeout or if the queue was decommissioned.
    pub fn pop(&self, timeout: Duration) -> Option<Delivery> {
        self.queue.pop(timeout)
    }

    /// Acknowledges a delivery; returns `false` for unknown tags.
    pub fn ack(&self, tag: u64) -> bool {
        self.queue.ack(tag)
    }

    /// Returns a delivery to the queue front for redelivery.
    pub fn nack(&self, tag: u64) -> bool {
        self.queue.nack(tag)
    }

    /// Routes an unacked delivery to the queue's dead-letter store: the
    /// message is consumed (like an ack) but retained and counted instead of
    /// silently discarded. Returns `false` for unknown tags.
    pub fn dead_letter(&self, tag: u64) -> bool {
        self.queue.dead_letter(tag)
    }

    /// Whether the queue has been decommissioned.
    pub fn is_decommissioned(&self) -> bool {
        self.queue.inner.lock().state == QueueState::Decommissioned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn broker_with(queue: &str) -> Broker {
        let b = Broker::new();
        b.declare_queue(queue, QueueConfig::default());
        b.bind("pub", queue);
        b
    }

    #[test]
    fn fanout_reaches_all_bound_queues() {
        let b = Broker::new();
        b.declare_queue("q1", QueueConfig::default());
        b.declare_queue("q2", QueueConfig::default());
        b.bind("pub", "q1");
        b.bind("pub", "q2");
        b.publish("pub", "m").unwrap();
        for q in ["q1", "q2"] {
            let c = b.consumer(q).unwrap();
            assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "m");
        }
    }

    #[test]
    fn unbound_queue_receives_nothing() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig::default());
        b.publish("pub", "m").unwrap();
        assert!(b
            .consumer("q")
            .unwrap()
            .pop(Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let b = broker_with("q");
        for i in 0..10 {
            b.publish("pub", &i.to_string()).unwrap();
        }
        let c = b.consumer("q").unwrap();
        for i in 0..10 {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            assert_eq!(d.payload, i.to_string());
            c.ack(d.tag);
        }
    }

    #[test]
    fn nack_requeues_at_front_flagged_redelivered() {
        let b = broker_with("q");
        b.publish("pub", "a").unwrap();
        b.publish("pub", "b").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(!d.redelivered);
        assert!(c.nack(d.tag));
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(d2.payload, "a");
        assert!(d2.redelivered);
        assert_eq!(b.stats().redelivered, 1);
    }

    #[test]
    fn ack_of_unknown_tag_is_rejected_and_counted() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        assert!(!c.ack(999));
        assert_eq!(b.stats().spurious_acks, 1);
        assert!(!c.nack(999));
        assert_eq!(b.stats().spurious_nacks, 1);
    }

    #[test]
    fn double_ack_is_spurious() {
        let b = broker_with("q");
        b.publish("pub", "m").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(c.ack(d.tag));
        assert!(!c.ack(d.tag), "second ack of the same tag must fail");
        assert!(!c.nack(d.tag), "nack after ack must fail");
        let s = b.stats();
        assert_eq!(s.acked, 1);
        assert_eq!(s.spurious_acks, 1);
        assert_eq!(s.spurious_nacks, 1);
    }

    #[test]
    fn injected_publish_failures_are_transient_and_counted() {
        let b = broker_with("q");
        b.inject_publish_failures(2);
        assert!(b.publish("pub", "x").is_err());
        assert!(b.publish("pub", "y").is_err());
        b.publish("pub", "z").unwrap();
        let s = b.stats();
        assert_eq!(s.publish_faults, 2);
        assert_eq!(s.published, 1, "failed publishes are not accepted");
        assert_eq!(s.enqueued, 1);
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "z");
    }

    #[test]
    fn dead_letter_consumes_without_losing_the_payload() {
        let b = broker_with("q");
        b.publish("pub", "poison").unwrap();
        b.publish("pub", "good").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(c.dead_letter(d.tag));
        assert!(!c.dead_letter(d.tag), "tag is consumed by dead-lettering");
        // The poisoned message is out of the delivery path…
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(d2.payload, "good");
        // …but retained and counted.
        let dead = b.dead_letters("q").unwrap();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].payload, "poison");
        assert_eq!(b.dead_letter_len("q"), Some(1));
        assert_eq!(b.stats().dead_lettered, 1);
        // Dead letters survive broker restarts and reinstatement.
        b.recover();
        b.reinstate_queue("q");
        assert_eq!(b.dead_letter_len("q"), Some(1));
    }

    #[test]
    fn decommission_accounts_for_discarded_backlog() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig { max_len: Some(3) });
        b.bind("pub", "q");
        for i in 0..5 {
            b.publish("pub", &i.to_string()).unwrap();
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        let s = b.stats();
        // 3 accepted, then the cap-triggering copy and the one after it
        // were refused; the 3-message backlog was discarded.
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.discarded, 3);
        assert_eq!(s.refused, 2);
    }

    #[test]
    fn force_decommission_discards_and_refuses() {
        let b = broker_with("q");
        b.publish("pub", "a").unwrap();
        b.decommission_queue("q");
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        b.publish("pub", "late").unwrap();
        let s = b.stats();
        assert_eq!(s.discarded, 1);
        assert_eq!(s.refused, 1);
        assert!(b.consumer("q").unwrap().pop(Duration::from_millis(20)).is_none());
    }

    #[test]
    fn blocking_pop_wakes_on_publish() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let h = thread::spawn(move || c.pop(Duration::from_secs(5)).unwrap().payload);
        thread::sleep(Duration::from_millis(30));
        b.publish("pub", "late").unwrap();
        assert_eq!(h.join().unwrap(), "late");
    }

    #[test]
    fn concurrent_workers_partition_the_queue() {
        let b = broker_with("q");
        for i in 0..100 {
            b.publish("pub", &i.to_string()).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = b.consumer("q").unwrap();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(d) = c.pop(Duration::from_millis(50)) {
                    got.push(d.payload.clone());
                    c.ack(d.tag);
                }
                got
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len(), 100, "each message delivered exactly once");
        all.sort_by_key(|s| s.parse::<u64>().unwrap());
        for (i, payload) in all.iter().enumerate() {
            assert_eq!(payload, &i.to_string());
        }
    }

    #[test]
    fn queue_cap_triggers_decommission() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig { max_len: Some(5) });
        b.bind("pub", "q");
        for i in 0..10 {
            b.publish("pub", &i.to_string()).unwrap();
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        assert_eq!(b.queue_len("q"), Some(0), "backlog was discarded");
        let c = b.consumer("q").unwrap();
        assert!(c.is_decommissioned());
        assert!(c.pop(Duration::from_millis(20)).is_none());
        // Reinstating restores delivery.
        b.reinstate_queue("q");
        b.publish("pub", "fresh").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "fresh");
    }

    #[test]
    fn injected_drops_lose_messages_silently() {
        let b = broker_with("q");
        b.inject_drop_next("q", 2);
        for i in 0..4 {
            b.publish("pub", &i.to_string()).unwrap();
        }
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "2");
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "3");
        assert_eq!(b.stats().dropped, 2);
    }

    #[test]
    fn recover_requeues_unacked_in_order() {
        let b = broker_with("q");
        for p in ["a", "b", "c"] {
            b.publish("pub", p).unwrap();
        }
        let c = b.consumer("q").unwrap();
        let d1 = c.pop(Duration::from_millis(50)).unwrap();
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d1.tag);
        assert_eq!(d2.payload, "b");
        // Restart: "b" (unacked) returns before "c".
        b.recover();
        let r1 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r1.payload, "b");
        assert!(r1.redelivered);
        let r2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r2.payload, "c");
    }

    #[test]
    fn stats_track_lifecycle() {
        let b = broker_with("q");
        b.publish("pub", "x").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d.tag);
        let s = b.stats();
        assert_eq!(s.published, 1);
        assert_eq!(s.enqueued, 1);
        assert_eq!(s.acked, 1);
    }
}
