//! The broker facade: exchanges, bindings, consumers, failure injection.

use crate::message::{Delivery, SharedStr};
use crate::queue::{Queue, QueueConfig, QueueState};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate broker counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages accepted from publishers (before fanout).
    pub published: u64,
    /// Message copies enqueued across all queues.
    pub enqueued: u64,
    /// Message copies acked by consumers.
    pub acked: u64,
    /// Message copies dropped by failure injection.
    pub dropped: u64,
    /// Message copies refused by decommissioned queues.
    pub refused: u64,
    /// Backlog copies discarded when a queue was decommissioned.
    pub discarded: u64,
    /// Deliveries returned to a queue by nack or broker restart.
    pub redelivered: u64,
    /// Deliveries routed to dead-letter stores.
    pub dead_lettered: u64,
    /// Acks naming an unknown or already-acked tag.
    pub spurious_acks: u64,
    /// Nacks naming an unknown or already-acked tag.
    pub spurious_nacks: u64,
    /// Publish attempts rejected by injected transient faults.
    pub publish_faults: u64,
    /// Queues reinstated after a decommission.
    pub reinstated: u64,
}

/// Transient error returned by [`Broker::publish`] under injected faults.
///
/// Models the broker connection blips of the paper's §6.5 incident: the
/// message was *not* accepted and the publisher is expected to retry (its
/// journal still holds the payload, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishError {
    /// Exchange the publish was addressed to.
    pub exchange: String,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transient broker failure publishing to exchange {:?}",
            self.exchange
        )
    }
}

impl std::error::Error for PublishError {}

/// Topology: declared queues, exchange bindings, and the routing table
/// resolved from them. Mutated only by declare/bind (rare); the publish hot
/// path takes a read lock and walks `resolved`.
#[derive(Default)]
struct Routes {
    /// exchange (publisher app) → bound queue names.
    bindings: HashMap<String, Vec<String>>,
    queues: HashMap<String, Arc<Queue>>,
    /// exchange → (shared exchange name, bound queues), precomputed so a
    /// publish does one hash lookup and clones zero strings.
    resolved: HashMap<String, (SharedStr, Vec<Arc<Queue>>)>,
}

impl Routes {
    /// Recomputes `resolved` after a topology change. Bindings to
    /// not-yet-declared queues are kept in `bindings` but omitted here
    /// (publishes to them route nowhere, as before).
    fn rebuild(&mut self) {
        self.resolved = self
            .bindings
            .iter()
            .map(|(exchange, names)| {
                let targets = names
                    .iter()
                    .filter_map(|name| self.queues.get(name).cloned())
                    .collect();
                (
                    exchange.clone(),
                    (SharedStr::from(exchange.as_str()), targets),
                )
            })
            .collect();
    }
}

struct BrokerShared {
    routes: RwLock<Routes>,
    /// Messages accepted from publishers. Atomic: publish never takes the
    /// topology write lock.
    published: AtomicU64,
    /// Fault injection: fail the next `n` publish attempts. Consumed with a
    /// CAS loop so concurrent publishers each burn exactly one armed fault.
    publish_fail_next: AtomicU64,
    publish_faults: AtomicU64,
}

/// An in-process message broker with RabbitMQ semantics. Cloneable handle;
/// clones share state.
///
/// Payloads are stored as [`SharedStr`]: fanout to N queues shares one
/// allocation, and `publish` itself is lock-free except for the read-mostly
/// routing lock and each bound queue's own mutex.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use synapse_broker::{Broker, QueueConfig};
///
/// let broker = Broker::new();
/// broker.declare_queue("mailer", QueueConfig::default());
/// broker.bind("main_app", "mailer");
/// broker.publish("main_app", "{\"op\":\"create\"}").unwrap();
///
/// let consumer = broker.consumer("mailer").unwrap();
/// let d = consumer.pop(Duration::from_millis(100)).unwrap();
/// assert_eq!(d.payload, "{\"op\":\"create\"}");
/// consumer.ack(d.tag);
/// ```
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerShared>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker {
            inner: Arc::new(BrokerShared {
                routes: RwLock::new(Routes::default()),
                published: AtomicU64::new(0),
                publish_fail_next: AtomicU64::new(0),
                publish_faults: AtomicU64::new(0),
            }),
        }
    }

    /// Declares (or re-declares, idempotently) a queue.
    pub fn declare_queue(&self, name: &str, config: QueueConfig) {
        let mut routes = self.inner.routes.write();
        routes
            .queues
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Queue::new(config)));
        routes.rebuild();
    }

    /// Binds `queue` to the fanout exchange of publisher app `exchange`.
    pub fn bind(&self, exchange: &str, queue: &str) {
        let mut routes = self.inner.routes.write();
        let bindings = routes.bindings.entry(exchange.to_owned()).or_default();
        if !bindings.iter().any(|q| q == queue) {
            bindings.push(queue.to_owned());
        }
        routes.rebuild();
    }

    /// Consumes one armed publish fault, if any. CAS loop: under concurrent
    /// publishers each armed fault fails exactly one attempt.
    fn consume_armed_fault(&self) -> bool {
        let armed = &self.inner.publish_fail_next;
        let mut current = armed.load(Ordering::Acquire);
        while current > 0 {
            match armed.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.inner.publish_faults.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// Publishes a payload on `exchange`, fanning out to all bound queues.
    /// Each queue shares the payload allocation.
    ///
    /// Fails with a transient [`PublishError`] while injected publish faults
    /// are armed ([`Broker::inject_publish_failures`]); a failed publish
    /// enqueues nothing and should be retried by the caller.
    pub fn publish(
        &self,
        exchange: &str,
        payload: impl Into<SharedStr>,
    ) -> Result<(), PublishError> {
        self.publish_stamped(exchange, payload, 0)
    }

    /// [`Broker::publish`] carrying the publisher's monotonic origin stamp
    /// (nanoseconds since the process telemetry epoch). The stamp rides the
    /// delivery envelope so subscribers can compute end-to-end visibility
    /// latency; 0 means unstamped.
    pub fn publish_stamped(
        &self,
        exchange: &str,
        payload: impl Into<SharedStr>,
        origin_nanos: u64,
    ) -> Result<(), PublishError> {
        if self.consume_armed_fault() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        let payload = payload.into();
        let routes = self.inner.routes.read();
        if let Some((shared_exchange, targets)) = routes.resolved.get(exchange) {
            for queue in targets {
                queue.enqueue(shared_exchange, &payload, origin_nanos);
            }
        }
        drop(routes);
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Publishes a batch of payloads on `exchange` in order, resolving the
    /// routing once and taking each bound queue's lock once for the whole
    /// batch. Returns the number of messages accepted.
    ///
    /// An armed publish fault rejects the entire batch (the connection blip
    /// happened before anything was written) and consumes one injected
    /// failure, matching one failed `publish` call.
    pub fn publish_batch<I>(&self, exchange: &str, payloads: I) -> Result<u64, PublishError>
    where
        I: IntoIterator,
        I::Item: Into<SharedStr>,
    {
        self.publish_batch_stamped(
            exchange,
            payloads.into_iter().map(|p| (p.into(), 0)).collect(),
        )
    }

    /// [`Broker::publish_batch`] with a per-payload origin stamp (see
    /// [`Broker::publish_stamped`]).
    pub fn publish_batch_stamped(
        &self,
        exchange: &str,
        payloads: Vec<(SharedStr, u64)>,
    ) -> Result<u64, PublishError> {
        if payloads.is_empty() {
            return Ok(0);
        }
        if self.consume_armed_fault() {
            return Err(PublishError {
                exchange: exchange.to_owned(),
            });
        }
        let routes = self.inner.routes.read();
        if let Some((shared_exchange, targets)) = routes.resolved.get(exchange) {
            for queue in targets {
                queue.enqueue_batch(shared_exchange, &payloads);
            }
        }
        drop(routes);
        let accepted = payloads.len() as u64;
        self.inner.published.fetch_add(accepted, Ordering::Relaxed);
        Ok(accepted)
    }

    /// Returns a consumer handle for `queue`, or `None` if undeclared.
    pub fn consumer(&self, queue: &str) -> Option<Consumer> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| Consumer {
            queue: q.clone(),
            name: queue.to_owned(),
        })
    }

    /// Current state of a queue.
    pub fn queue_state(&self, queue: &str) -> Option<QueueState> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.inner.lock().state)
    }

    /// Current backlog length of a queue.
    pub fn queue_len(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.inner.lock().ready.len())
    }

    /// Number of deliveries popped but not yet acked, nacked, or
    /// dead-lettered. A queue is fully drained only when both this and
    /// [`Broker::queue_len`] are zero.
    pub fn queue_unacked_len(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes
            .queues
            .get(queue)
            .map(|q| q.inner.lock().unacked.len())
    }

    /// Wakes every consumer parked on `queue` (their in-flight batch pops
    /// return empty). Subscriber shutdown uses this so workers re-check
    /// their stop flag immediately instead of waiting out the park timeout.
    pub fn wake_queue(&self, queue: &str) {
        let routes = self.inner.routes.read();
        if let Some(q) = routes.queues.get(queue) {
            q.wake_all();
        }
    }

    /// Resets a decommissioned queue to active/empty (the subscriber is
    /// rejoining via partial bootstrap, §4.4). Idempotent: returns `true`
    /// only when the queue actually transitioned from decommissioned to
    /// active; an already-active queue (e.g. a reinstate racing a broker
    /// restart that already happened) is left untouched.
    pub fn reinstate_queue(&self, queue: &str) -> bool {
        let routes = self.inner.routes.read();
        routes
            .queues
            .get(queue)
            .map(|q| q.reinstate())
            .unwrap_or(false)
    }

    /// Failure injection: silently drop the next `n` messages bound for
    /// `queue` (the §6.5 RabbitMQ-upgrade incident).
    pub fn inject_drop_next(&self, queue: &str, n: u64) {
        let routes = self.inner.routes.read();
        if let Some(q) = routes.queues.get(queue) {
            q.inner.lock().drop_next += n;
        }
    }

    /// Failure injection: fail the next `n` publish attempts (on any
    /// exchange) with a transient [`PublishError`].
    pub fn inject_publish_failures(&self, n: u64) {
        self.inner.publish_fail_next.fetch_add(n, Ordering::Release);
    }

    /// Failure injection: force-decommission a queue, discarding its
    /// backlog, as if it had exceeded its cap.
    pub fn decommission_queue(&self, queue: &str) {
        let routes = self.inner.routes.read();
        if let Some(q) = routes.queues.get(queue) {
            let mut qi = q.inner.lock();
            qi.discarded += (qi.ready.len() + qi.unacked.len()) as u64;
            qi.ready.clear();
            qi.unacked.clear();
            qi.state = QueueState::Decommissioned;
            drop(qi);
            q.ready_cv.notify_all();
        }
    }

    /// Snapshot of a queue's dead-letter store.
    pub fn dead_letters(&self, queue: &str) -> Option<Vec<Delivery>> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.dead_letters())
    }

    /// Number of dead-lettered deliveries held for `queue`.
    pub fn dead_letter_len(&self, queue: &str) -> Option<usize> {
        let routes = self.inner.routes.read();
        routes.queues.get(queue).map(|q| q.inner.lock().dead.len())
    }

    /// Failure injection: broker restart. All unacked deliveries return to
    /// the front of their queues flagged `redelivered`.
    pub fn recover(&self) {
        let routes = self.inner.routes.read();
        for q in routes.queues.values() {
            q.recover();
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> BrokerStats {
        let routes = self.inner.routes.read();
        let mut stats = BrokerStats {
            published: self.inner.published.load(Ordering::Relaxed),
            publish_faults: self.inner.publish_faults.load(Ordering::Relaxed),
            ..BrokerStats::default()
        };
        for q in routes.queues.values() {
            let qi = q.inner.lock();
            stats.enqueued += qi.enqueued;
            stats.acked += qi.acked;
            stats.dropped += qi.dropped;
            stats.refused += qi.refused;
            stats.discarded += qi.discarded;
            stats.redelivered += qi.redelivered;
            stats.dead_lettered += qi.dead_lettered;
            stats.spurious_acks += qi.spurious_acks;
            stats.spurious_nacks += qi.spurious_nacks;
            stats.reinstated += qi.reinstated;
        }
        stats
    }
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

/// A consumer bound to one queue. Cloneable; multiple workers may consume
/// the same queue concurrently (the paper's parallel subscriber workers).
#[derive(Clone)]
pub struct Consumer {
    queue: Arc<Queue>,
    name: String,
}

impl Consumer {
    /// Queue name this consumer reads from.
    pub fn queue_name(&self) -> &str {
        &self.name
    }

    /// Blocking pop: waits up to `timeout` for a delivery. Returns `None`
    /// on timeout or if the queue was decommissioned.
    pub fn pop(&self, timeout: Duration) -> Option<Delivery> {
        self.queue.pop(timeout)
    }

    /// Blocking batch pop: parks on the queue's condvar until a delivery
    /// arrives, then drains up to `max` ready deliveries in FIFO order
    /// under one lock acquisition. Returns empty on timeout, decommission,
    /// or [`Broker::wake_queue`].
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<Delivery> {
        self.queue.pop_batch(max, timeout)
    }

    /// Acknowledges a delivery; returns `false` for unknown tags.
    pub fn ack(&self, tag: u64) -> bool {
        self.queue.ack(tag)
    }

    /// Acknowledges a batch of tags under one queue lock acquisition.
    /// Returns how many were live; unknown tags count as spurious, exactly
    /// as individual [`Consumer::ack`] calls would.
    pub fn ack_batch(&self, tags: &[u64]) -> u64 {
        self.queue.ack_batch(tags)
    }

    /// Returns a delivery to the queue front for redelivery.
    pub fn nack(&self, tag: u64) -> bool {
        self.queue.nack(tag)
    }

    /// Routes an unacked delivery to the queue's dead-letter store: the
    /// message is consumed (like an ack) but retained and counted instead of
    /// silently discarded. Returns `false` for unknown tags.
    pub fn dead_letter(&self, tag: u64) -> bool {
        self.queue.dead_letter(tag)
    }

    /// Whether the queue has been decommissioned.
    pub fn is_decommissioned(&self) -> bool {
        self.queue.inner.lock().state == QueueState::Decommissioned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn broker_with(queue: &str) -> Broker {
        let b = Broker::new();
        b.declare_queue(queue, QueueConfig::default());
        b.bind("pub", queue);
        b
    }

    #[test]
    fn fanout_reaches_all_bound_queues() {
        let b = Broker::new();
        b.declare_queue("q1", QueueConfig::default());
        b.declare_queue("q2", QueueConfig::default());
        b.bind("pub", "q1");
        b.bind("pub", "q2");
        b.publish("pub", "m").unwrap();
        for q in ["q1", "q2"] {
            let c = b.consumer(q).unwrap();
            assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "m");
        }
    }

    #[test]
    fn fanout_shares_one_payload_allocation() {
        let b = Broker::new();
        b.declare_queue("q1", QueueConfig::default());
        b.declare_queue("q2", QueueConfig::default());
        b.bind("pub", "q1");
        b.bind("pub", "q2");
        b.publish("pub", "shared-body").unwrap();
        let d1 = b.consumer("q1").unwrap().pop(Duration::from_millis(50)).unwrap();
        let d2 = b.consumer("q2").unwrap().pop(Duration::from_millis(50)).unwrap();
        assert!(
            std::ptr::eq(d1.payload.as_str(), d2.payload.as_str()),
            "both queues must share the published allocation"
        );
        assert!(std::ptr::eq(d1.exchange.as_str(), d2.exchange.as_str()));
    }

    #[test]
    fn bind_before_declare_still_routes() {
        let b = Broker::new();
        b.bind("pub", "q");
        b.declare_queue("q", QueueConfig::default());
        b.publish("pub", "m").unwrap();
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "m");
    }

    #[test]
    fn unbound_queue_receives_nothing() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig::default());
        b.publish("pub", "m").unwrap();
        assert!(b
            .consumer("q")
            .unwrap()
            .pop(Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let b = broker_with("q");
        for i in 0..10 {
            b.publish("pub", i.to_string()).unwrap();
        }
        let c = b.consumer("q").unwrap();
        for i in 0..10 {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            assert_eq!(d.payload, i.to_string());
            c.ack(d.tag);
        }
    }

    #[test]
    fn publish_batch_preserves_fifo_and_counts() {
        let b = broker_with("q");
        let accepted = b
            .publish_batch("pub", ["a", "b", "c"])
            .unwrap();
        assert_eq!(accepted, 3);
        let c = b.consumer("q").unwrap();
        for expected in ["a", "b", "c"] {
            let d = c.pop(Duration::from_millis(50)).unwrap();
            assert_eq!(d.payload, expected);
            c.ack(d.tag);
        }
        let s = b.stats();
        assert_eq!(s.published, 3);
        assert_eq!(s.enqueued, 3);
    }

    #[test]
    fn empty_batch_is_a_noop_even_under_faults() {
        let b = broker_with("q");
        b.inject_publish_failures(1);
        assert_eq!(b.publish_batch("pub", Vec::<String>::new()).unwrap(), 0);
        // The armed fault was not consumed by the empty batch.
        assert!(b.publish("pub", "x").is_err());
    }

    #[test]
    fn faulted_batch_rejects_everything_and_consumes_one_fault() {
        let b = broker_with("q");
        b.inject_publish_failures(1);
        assert!(b.publish_batch("pub", ["a", "b"]).is_err());
        assert_eq!(b.queue_len("q"), Some(0), "nothing enqueued");
        assert_eq!(b.publish_batch("pub", ["a", "b"]).unwrap(), 2);
        let s = b.stats();
        assert_eq!(s.publish_faults, 1);
        assert_eq!(s.published, 2);
    }

    #[test]
    fn pop_batch_drains_up_to_max_in_order() {
        let b = broker_with("q");
        b.publish_batch("pub", ["a", "b", "c", "d", "e"]).unwrap();
        let c = b.consumer("q").unwrap();
        let first = c.pop_batch(3, Duration::from_millis(50));
        assert_eq!(
            first.iter().map(|d| d.payload.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        let rest = c.pop_batch(10, Duration::from_millis(50));
        assert_eq!(
            rest.iter().map(|d| d.payload.as_str()).collect::<Vec<_>>(),
            ["d", "e"]
        );
        let tags: Vec<u64> = first.iter().chain(&rest).map(|d| d.tag).collect();
        assert_eq!(c.ack_batch(&tags), 5);
        assert_eq!(b.stats().acked, 5);
        assert_eq!(b.queue_unacked_len("q"), Some(0));
    }

    #[test]
    fn pop_batch_wakes_on_publish() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let h = thread::spawn(move || c.pop_batch(8, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        b.publish("pub", "late").unwrap();
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, "late");
    }

    #[test]
    fn wake_queue_unparks_an_empty_pop_batch() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let start = std::time::Instant::now();
        let h = thread::spawn(move || c.pop_batch(8, Duration::from_secs(30)));
        thread::sleep(Duration::from_millis(30));
        b.wake_queue("q");
        assert!(h.join().unwrap().is_empty());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake must beat the park timeout"
        );
    }

    #[test]
    fn ack_batch_counts_spurious_tags() {
        let b = broker_with("q");
        b.publish("pub", "m").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(c.ack_batch(&[d.tag, 999]), 1);
        let s = b.stats();
        assert_eq!(s.acked, 1);
        assert_eq!(s.spurious_acks, 1);
    }

    #[test]
    fn batch_into_capped_queue_kills_once_and_refuses_rest() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig { max_len: Some(3) });
        b.bind("pub", "q");
        b.publish_batch("pub", ["0", "1", "2", "3", "4"]).unwrap();
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        let s = b.stats();
        // Same accounting as five individual publishes: 3 accepted, the
        // cap-triggering copy and the next refused, backlog discarded.
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.discarded, 3);
        assert_eq!(s.refused, 2);
    }

    #[test]
    fn nack_requeues_at_front_flagged_redelivered() {
        let b = broker_with("q");
        b.publish("pub", "a").unwrap();
        b.publish("pub", "b").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(!d.redelivered);
        assert!(c.nack(d.tag));
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(d2.payload, "a");
        assert!(d2.redelivered);
        assert_eq!(b.stats().redelivered, 1);
    }

    #[test]
    fn ack_of_unknown_tag_is_rejected_and_counted() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        assert!(!c.ack(999));
        assert_eq!(b.stats().spurious_acks, 1);
        assert!(!c.nack(999));
        assert_eq!(b.stats().spurious_nacks, 1);
    }

    #[test]
    fn double_ack_is_spurious() {
        let b = broker_with("q");
        b.publish("pub", "m").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(c.ack(d.tag));
        assert!(!c.ack(d.tag), "second ack of the same tag must fail");
        assert!(!c.nack(d.tag), "nack after ack must fail");
        let s = b.stats();
        assert_eq!(s.acked, 1);
        assert_eq!(s.spurious_acks, 1);
        assert_eq!(s.spurious_nacks, 1);
    }

    #[test]
    fn injected_publish_failures_are_transient_and_counted() {
        let b = broker_with("q");
        b.inject_publish_failures(2);
        assert!(b.publish("pub", "x").is_err());
        assert!(b.publish("pub", "y").is_err());
        b.publish("pub", "z").unwrap();
        let s = b.stats();
        assert_eq!(s.publish_faults, 2);
        assert_eq!(s.published, 1, "failed publishes are not accepted");
        assert_eq!(s.enqueued, 1);
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "z");
    }

    #[test]
    fn dead_letter_consumes_without_losing_the_payload() {
        let b = broker_with("q");
        b.publish("pub", "poison").unwrap();
        b.publish("pub", "good").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        assert!(c.dead_letter(d.tag));
        assert!(!c.dead_letter(d.tag), "tag is consumed by dead-lettering");
        // The poisoned message is out of the delivery path…
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(d2.payload, "good");
        // …but retained and counted.
        let dead = b.dead_letters("q").unwrap();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].payload, "poison");
        assert_eq!(b.dead_letter_len("q"), Some(1));
        assert_eq!(b.stats().dead_lettered, 1);
        // Dead letters survive broker restarts and reinstatement.
        b.recover();
        b.reinstate_queue("q");
        assert_eq!(b.dead_letter_len("q"), Some(1));
    }

    #[test]
    fn decommission_accounts_for_discarded_backlog() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig { max_len: Some(3) });
        b.bind("pub", "q");
        for i in 0..5 {
            b.publish("pub", i.to_string()).unwrap();
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        let s = b.stats();
        // 3 accepted, then the cap-triggering copy and the one after it
        // were refused; the 3-message backlog was discarded.
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.discarded, 3);
        assert_eq!(s.refused, 2);
    }

    #[test]
    fn force_decommission_discards_and_refuses() {
        let b = broker_with("q");
        b.publish("pub", "a").unwrap();
        b.decommission_queue("q");
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        b.publish("pub", "late").unwrap();
        let s = b.stats();
        assert_eq!(s.discarded, 1);
        assert_eq!(s.refused, 1);
        assert!(b.consumer("q").unwrap().pop(Duration::from_millis(20)).is_none());
    }

    #[test]
    fn blocking_pop_wakes_on_publish() {
        let b = broker_with("q");
        let c = b.consumer("q").unwrap();
        let h = thread::spawn(move || c.pop(Duration::from_secs(5)).unwrap().payload);
        thread::sleep(Duration::from_millis(30));
        b.publish("pub", "late").unwrap();
        assert_eq!(h.join().unwrap(), "late");
    }

    #[test]
    fn concurrent_workers_partition_the_queue() {
        let b = broker_with("q");
        for i in 0..100 {
            b.publish("pub", i.to_string()).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = b.consumer("q").unwrap();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(d) = c.pop(Duration::from_millis(50)) {
                    got.push(d.payload.clone());
                    c.ack(d.tag);
                }
                got
            }));
        }
        let mut all: Vec<_> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len(), 100, "each message delivered exactly once");
        all.sort_by_key(|s| s.parse::<u64>().unwrap());
        for (i, payload) in all.iter().enumerate() {
            assert_eq!(payload, &i.to_string());
        }
    }

    #[test]
    fn queue_cap_triggers_decommission() {
        let b = Broker::new();
        b.declare_queue("q", QueueConfig { max_len: Some(5) });
        b.bind("pub", "q");
        for i in 0..10 {
            b.publish("pub", i.to_string()).unwrap();
        }
        assert_eq!(b.queue_state("q"), Some(QueueState::Decommissioned));
        assert_eq!(b.queue_len("q"), Some(0), "backlog was discarded");
        let c = b.consumer("q").unwrap();
        assert!(c.is_decommissioned());
        assert!(c.pop(Duration::from_millis(20)).is_none());
        // Reinstating restores delivery.
        b.reinstate_queue("q");
        b.publish("pub", "fresh").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "fresh");
    }

    #[test]
    fn injected_drops_lose_messages_silently() {
        let b = broker_with("q");
        b.inject_drop_next("q", 2);
        for i in 0..4 {
            b.publish("pub", i.to_string()).unwrap();
        }
        let c = b.consumer("q").unwrap();
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "2");
        assert_eq!(c.pop(Duration::from_millis(50)).unwrap().payload, "3");
        assert_eq!(b.stats().dropped, 2);
    }

    #[test]
    fn recover_requeues_unacked_in_order() {
        let b = broker_with("q");
        for p in ["a", "b", "c"] {
            b.publish("pub", p).unwrap();
        }
        let c = b.consumer("q").unwrap();
        let d1 = c.pop(Duration::from_millis(50)).unwrap();
        let d2 = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d1.tag);
        assert_eq!(d2.payload, "b");
        // Restart: "b" (unacked) returns before "c".
        b.recover();
        let r1 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r1.payload, "b");
        assert!(r1.redelivered);
        let r2 = c.pop(Duration::from_millis(50)).unwrap();
        assert_eq!(r2.payload, "c");
    }

    #[test]
    fn stats_track_lifecycle() {
        let b = broker_with("q");
        b.publish("pub", "x").unwrap();
        let c = b.consumer("q").unwrap();
        let d = c.pop(Duration::from_millis(50)).unwrap();
        c.ack(d.tag);
        let s = b.stats();
        assert_eq!(s.published, 1);
        assert_eq!(s.enqueued, 1);
        assert_eq!(s.acked, 1);
    }
}
