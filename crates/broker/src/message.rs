//! Broker delivery envelope.

/// A message delivered to a consumer.
///
/// The payload is opaque to the broker (Synapse ships JSON write messages).
/// The delivery tag identifies this delivery for `ack`/`nack`, exactly as
/// in AMQP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Queue-unique delivery tag.
    pub tag: u64,
    /// Name of the publishing app (the exchange the message arrived on).
    pub exchange: String,
    /// Opaque payload.
    pub payload: String,
    /// `true` if this delivery is a redelivery after a nack or broker
    /// recovery.
    pub redelivered: bool,
}
