//! Broker delivery envelope and the shared payload string.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, atomically reference-counted string slice.
///
/// This is the broker's zero-copy currency: a publish allocates the payload
/// once and every bound queue, unacked-set entry, and delivered clone shares
/// that single allocation. Fanout to N queues is N pointer bumps, not N deep
/// copies.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedStr(Arc<str>);

impl SharedStr {
    /// View as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for SharedStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for SharedStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for SharedStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SharedStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SharedStr {
    fn from(s: &str) -> Self {
        SharedStr(Arc::from(s))
    }
}

impl From<String> for SharedStr {
    fn from(s: String) -> Self {
        SharedStr(Arc::from(s))
    }
}

impl From<&String> for SharedStr {
    fn from(s: &String) -> Self {
        SharedStr(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for SharedStr {
    fn from(s: Arc<str>) -> Self {
        SharedStr(s)
    }
}

impl From<&SharedStr> for SharedStr {
    fn from(s: &SharedStr) -> Self {
        s.clone()
    }
}

impl PartialEq<str> for SharedStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for SharedStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for SharedStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<SharedStr> for str {
    fn eq(&self, other: &SharedStr) -> bool {
        self == &*other.0
    }
}

impl PartialEq<SharedStr> for &str {
    fn eq(&self, other: &SharedStr) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<SharedStr> for String {
    fn eq(&self, other: &SharedStr) -> bool {
        self.as_str() == &*other.0
    }
}

/// A message delivered to a consumer.
///
/// The payload is opaque to the broker (Synapse ships JSON write messages).
/// The delivery tag identifies this delivery for `ack`/`nack`, exactly as
/// in AMQP. Cloning a delivery shares the payload allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Queue-unique delivery tag.
    pub tag: u64,
    /// Name of the publishing app (the exchange the message arrived on).
    pub exchange: SharedStr,
    /// Opaque payload, shared with every other copy of this message.
    pub payload: SharedStr,
    /// `true` if this delivery is a redelivery after a nack or broker
    /// recovery.
    pub redelivered: bool,
    /// Monotonic publish stamp (nanoseconds since the process telemetry
    /// epoch, [`synapse_telemetry::mono_nanos`]) attached by the publisher;
    /// 0 when the publisher did not stamp the message.
    pub origin_nanos: u64,
    /// Monotonic stamp taken when this copy was admitted to its queue.
    /// Survives nacks and broker recovery, so queue residency measures from
    /// the *original* admission.
    pub enqueued_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_str_compares_with_plain_strings() {
        let s = SharedStr::from("payload");
        assert_eq!(s, "payload");
        assert_eq!("payload", s);
        assert_eq!(s, String::from("payload"));
        assert_eq!(String::from("payload"), s);
        assert_ne!(s, "other");
    }

    #[test]
    fn clones_share_the_allocation() {
        let s = SharedStr::from("x".repeat(64));
        let t = s.clone();
        assert!(std::ptr::eq(s.as_str(), t.as_str()));
    }

    #[test]
    fn usable_as_str_via_deref() {
        let s = SharedStr::from("a,b");
        assert_eq!(s.split(',').count(), 2);
        assert_eq!(s.len(), 3);
    }
}
