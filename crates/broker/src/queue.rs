//! Partitioned durable FIFO queues with acks, dead-lettering, and the
//! decommission policy.
//!
//! # The delivery plane
//!
//! A queue is split into `partitions` independently-locked sub-queues.
//! Publishes carry a routing key (the written object's dependency key);
//! the key's low byte becomes the delivery-tag *hint* and
//! `hint % partitions` picks the sub-queue, so one object's messages
//! always land in one partition in publish order. A batch publish groups
//! its payloads by partition and takes exactly one lock per *touched*
//! partition — concurrent publishers to different partitions never
//! contend. Unkeyed (legacy) publishes use key 0 and therefore all share
//! partition 0, which preserves the strict global FIFO order the
//! pre-partitioned queue promised.
//!
//! # Tag encoding
//!
//! `tag = (seq << 8) | hint` where `seq` is a queue-global monotonically
//! increasing sequence (allocated under the destination partition's lock,
//! so per-partition tag order equals push order) and `hint` is the key's
//! low byte. The partition owning a tag is derivable anywhere — ack,
//! nack, dead-letter, and WAL replay all recompute
//! `(tag & 0xFF) % partitions` — which makes recovery and repartitioning
//! deterministic: replayed backlogs and redeclared partition counts
//! re-route every delivery to the same sub-queue any other replay would.
//!
//! # Wakeups
//!
//! Consumers park on one queue-level condvar. Enqueues issue *counted*
//! `notify_one` wakeups — `min(messages added, sleepers)` — instead of
//! `notify_all`, so a 1-message publish into a 64-worker pool wakes one
//! worker, not a thundering herd. The sleeper count is mirrored in a
//! `SeqCst` atomic and re-checked against the ready gauge after
//! registration (store/load ordering in both directions), so a wakeup can
//! never be missed: either the enqueuer sees the sleeper, or the sleeper
//! sees the message.

use crate::broker::WATERMARK_EXCHANGE;
use crate::message::{Delivery, SharedStr};
use crate::wal::{frame_enqueue_into, frame_record_into, Wal, WalRecord};

/// True when a delivery is a watermark control marker rather than
/// application backlog (markers are exempt from the backlog cap).
fn is_marker(d: &Delivery) -> bool {
    d.exchange == WATERMARK_EXCHANGE
}
use parking_lot::{Condvar, Mutex, RwLock};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_telemetry::mono_nanos;

/// Span of the per-tag partition hint: the low byte of every delivery tag.
pub const PARTITION_HINT_SPAN: u64 = 256;

/// Default partition count for queues declared without an explicit one.
pub(crate) const DEFAULT_PARTITIONS: usize = 8;

/// The queue-global sequence number encoded in a delivery tag.
#[inline]
pub fn tag_seq(tag: u64) -> u64 {
    tag >> 8
}

/// The partition hint encoded in a delivery tag (the routing key's low
/// byte at publish time).
#[inline]
pub fn tag_hint(tag: u64) -> u8 {
    (tag & (PARTITION_HINT_SPAN - 1)) as u8
}

#[inline]
pub(crate) fn hint_of_key(key: u64) -> u8 {
    (key % PARTITION_HINT_SPAN) as u8
}

#[inline]
fn partition_of(tag: u64, count: usize) -> usize {
    tag_hint(tag) as usize % count
}

/// A queue's handle on the broker WAL: the shared log plus the queue's
/// own name for record attribution.
///
/// Logging discipline: an enqueue is logged *before* the in-memory push
/// (admission implies the record is on the log, so a confirmed publish
/// survives a crash under `FsyncPolicy::EveryWrite`); acks, dead-letters,
/// and lifecycle transitions are logged after the in-memory change,
/// best-effort (losing an ack record merely redelivers after restart —
/// at-least-once is preserved, exactly-once was never promised).
#[derive(Debug)]
pub(crate) struct WalBinding {
    pub(crate) wal: Arc<Wal>,
    pub(crate) queue: String,
}

impl WalBinding {
    /// Best-effort append for post-change records; errors are swallowed
    /// (the in-memory state is already authoritative for this process,
    /// and replay-side conservatism covers the loss). Routed through the
    /// configured ack-durability lane: relaxed records stage into the
    /// next group commit instead of stalling the hot path.
    fn append_best_effort(&self, record: &WalRecord) {
        let _ = self.wal.append_lifecycle(record);
    }
}

thread_local! {
    /// Per-thread staging buffer for WAL frames built under partition
    /// locks — record encoding happens here, outside every WAL lock.
    static STAGE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Queue configuration.
#[derive(Debug, Clone, Default)]
pub struct QueueConfig {
    /// Maximum backlog before the queue is killed and its subscriber
    /// decommissioned (§4.4). `None` means unbounded.
    pub max_len: Option<usize>,
    /// Number of independently-locked partitions. `0` picks the default
    /// (8); values are clamped to `1..=256` (the tag hint span).
    pub partitions: usize,
}

impl QueueConfig {
    fn effective_partitions(&self) -> usize {
        match self.partitions {
            0 => DEFAULT_PARTITIONS,
            n => n.min(PARTITION_HINT_SPAN as usize),
        }
    }

    fn encoded_max_len(&self) -> usize {
        self.max_len.unwrap_or(usize::MAX)
    }
}

/// Lifecycle state of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueState {
    /// Accepting and delivering messages.
    Active,
    /// Killed after exceeding its backlog cap; contents were discarded and
    /// the subscriber must partially bootstrap to rejoin (§4.4).
    Decommissioned,
}

const STATE_ACTIVE: u8 = 0;
const STATE_DECOMMISSIONED: u8 = 1;

/// Hot state of one partition: its ready run and in-flight deliveries.
#[derive(Debug, Default)]
struct PartitionInner {
    ready: VecDeque<Delivery>,
    unacked: HashMap<u64, Delivery>,
}

/// One independently-locked sub-queue. `len` mirrors `ready.len()` so
/// scans and depth gauges skip empty partitions without taking the lock.
#[derive(Debug, Default)]
struct Partition {
    inner: Mutex<PartitionInner>,
    len: AtomicUsize,
}

/// Lifetime counters, all maintained with relaxed atomics off the
/// partition locks.
#[derive(Debug, Default)]
struct QueueCounters {
    enqueued: AtomicU64,
    acked: AtomicU64,
    dropped: AtomicU64,
    refused: AtomicU64,
    discarded: AtomicU64,
    redelivered: AtomicU64,
    dead_lettered: AtomicU64,
    spurious_acks: AtomicU64,
    spurious_nacks: AtomicU64,
    reinstated: AtomicU64,
    /// Counted condvar wakeups issued by enqueues (the thundering-herd
    /// fix: at most `min(added, sleepers)` per enqueue).
    wakeups: AtomicU64,
    /// Successful `steal_batch` calls (at least one delivery taken).
    steals: AtomicU64,
    /// Deliveries migrated by stealing.
    stolen: AtomicU64,
}

/// A relaxed snapshot of one queue's counters.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct QueueCountersSnapshot {
    pub(crate) enqueued: u64,
    pub(crate) acked: u64,
    pub(crate) dropped: u64,
    pub(crate) refused: u64,
    pub(crate) discarded: u64,
    pub(crate) redelivered: u64,
    pub(crate) dead_lettered: u64,
    pub(crate) spurious_acks: u64,
    pub(crate) spurious_nacks: u64,
    pub(crate) reinstated: u64,
    pub(crate) wakeups: u64,
    pub(crate) steals: u64,
    pub(crate) stolen: u64,
}

/// A single named queue. Created through
/// [`Broker::declare_queue`](crate::Broker::declare_queue).
#[derive(Debug)]
pub(crate) struct Queue {
    /// The sub-queues. Read-locked by every data-path operation (each of
    /// which then takes at most one partition mutex at a time, except the
    /// rare checkpoint which takes all of them in index order);
    /// write-locked only by a repartitioning redeclare.
    partitions: RwLock<Box<[Partition]>>,
    /// Consumer parking lot: one queue-level condvar. The mutex guards
    /// only the condvar handshake — no queue state lives under it.
    idle: Mutex<()>,
    idle_cv: Condvar,
    /// Signalled (under `idle`) whenever the queue transitions to
    /// quiescent — no ready and no unacked deliveries. Backs the
    /// event-driven [`Queue::wait_quiescent`] that replaced the
    /// subscriber's drain busy-poll.
    quiet_cv: Condvar,
    /// `SeqCst` mirror of how many consumers are parked (or committing to
    /// park) on `idle_cv`; pairs with `ready_total` for lost-wakeup-free
    /// counted notification.
    sleepers: AtomicUsize,
    /// Bumped by [`Queue::wake_all`]; a parked `pop_batch` returns empty
    /// when it observes a new epoch, so shutdown never waits out a timeout.
    wake_epoch: AtomicU64,
    state: AtomicU8,
    /// Next tag sequence number (the high 56 bits of the next tag).
    next_seq: AtomicU64,
    /// Backlog cap; `usize::MAX` means unbounded.
    max_len: AtomicUsize,
    /// Fault injection: number of upcoming messages to silently drop.
    /// Consumed with a CAS loop so concurrent publishers burn exactly one
    /// armed drop each.
    drop_next: AtomicU64,
    /// Ready deliveries across all partitions (the lock-free depth gauge
    /// and the enqueue/park handshake word).
    ready_total: AtomicUsize,
    /// How many of `ready_total` are watermark control markers. Markers
    /// are transient protocol traffic bounded by `2 × partitions` per
    /// bootstrap chunk, not application backlog, so the cap check
    /// subtracts them — otherwise a trailing chunk's unconsumed markers
    /// could trip a small cap and kill a healthy queue under live load.
    marker_ready: AtomicUsize,
    /// In-flight (popped, unacked) deliveries across all partitions.
    unacked_total: AtomicUsize,
    /// Dead-letter store: deliveries a consumer gave up on. Out of the
    /// delivery path but retained for inspection and accounting, so a
    /// poisoned message is never *silently* lost. Cold; one mutex.
    dead: Mutex<Vec<Delivery>>,
    dead_len: AtomicUsize,
    counters: QueueCounters,
    /// `Some` when the owning broker is durable; immutable after creation.
    pub(crate) wal: Option<WalBinding>,
}

fn build_partitions(count: usize) -> Box<[Partition]> {
    (0..count).map(|_| Partition::default()).collect()
}

impl Queue {
    pub(crate) fn new(config: QueueConfig, wal: Option<WalBinding>) -> Self {
        Queue {
            partitions: RwLock::new(build_partitions(config.effective_partitions())),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            quiet_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            wake_epoch: AtomicU64::new(0),
            state: AtomicU8::new(STATE_ACTIVE),
            next_seq: AtomicU64::new(1),
            max_len: AtomicUsize::new(config.encoded_max_len()),
            drop_next: AtomicU64::new(0),
            ready_total: AtomicUsize::new(0),
            marker_ready: AtomicUsize::new(0),
            unacked_total: AtomicUsize::new(0),
            dead: Mutex::new(Vec::new()),
            dead_len: AtomicUsize::new(0),
            counters: QueueCounters::default(),
            wal,
        }
    }

    /// Rebuilds a queue from recovered WAL state. Recovered pending
    /// deliveries are conservatively flagged `redelivered` (after a crash
    /// there is no record of whether a delivery was ever seen), routed to
    /// the partition their tag hint names — the same formula every other
    /// replay would use — and their `enqueued_nanos` restamped at
    /// recovery time. `pending` must be in tag order, which is also seq
    /// (publish) order, so each partition's deque is rebuilt FIFO.
    pub(crate) fn restore(
        config: QueueConfig,
        wal: Option<WalBinding>,
        decommissioned: bool,
        next_seq: u64,
        pending: Vec<(u64, SharedStr, SharedStr, u64)>,
        dead: Vec<(u64, SharedStr, SharedStr, u64)>,
    ) -> Self {
        let queue = Queue::new(config, wal);
        let now = mono_nanos();
        {
            let parts = queue.partitions.read();
            let count = parts.len();
            for (tag, exchange, payload, origin_nanos) in pending {
                let p = &parts[partition_of(tag, count)];
                let mut inner = p.inner.lock();
                let delivery = Delivery {
                    tag,
                    exchange,
                    payload,
                    redelivered: true,
                    origin_nanos,
                    enqueued_nanos: now,
                };
                if is_marker(&delivery) {
                    queue.marker_ready.fetch_add(1, Ordering::SeqCst);
                }
                inner.ready.push_back(delivery);
                p.len.fetch_add(1, Ordering::Relaxed);
                queue.ready_total.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let mut dl = queue.dead.lock();
            for (tag, exchange, payload, origin_nanos) in dead {
                dl.push(Delivery {
                    tag,
                    exchange,
                    payload,
                    redelivered: true,
                    origin_nanos,
                    enqueued_nanos: now,
                });
            }
            queue.dead_len.store(dl.len(), Ordering::Relaxed);
        }
        queue.next_seq.store(next_seq.max(1), Ordering::SeqCst);
        if decommissioned {
            queue.state.store(STATE_DECOMMISSIONED, Ordering::SeqCst);
        }
        queue
    }

    /// Re-applies config to a live queue (idempotent redeclare). A changed
    /// partition count re-routes the entire backlog by the tag-hint
    /// formula in tag order — the same deterministic placement a fresh
    /// replay would produce — under the partitions write lock.
    pub(crate) fn reconfigure(&self, config: QueueConfig) {
        self.max_len
            .store(config.encoded_max_len(), Ordering::SeqCst);
        let target = config.effective_partitions();
        let mut parts = self.partitions.write();
        if parts.len() == target {
            return;
        }
        let mut ready: Vec<Delivery> = Vec::new();
        let mut unacked: Vec<(u64, Delivery)> = Vec::new();
        for p in parts.iter() {
            let mut inner = p.inner.lock();
            ready.extend(inner.ready.drain(..));
            unacked.extend(inner.unacked.drain());
            p.len.store(0, Ordering::Relaxed);
        }
        ready.sort_by_key(|d| d.tag);
        let fresh = build_partitions(target);
        for d in ready {
            let p = &fresh[partition_of(d.tag, target)];
            p.len.fetch_add(1, Ordering::Relaxed);
            p.inner.lock().ready.push_back(d);
        }
        for (tag, d) in unacked {
            fresh[partition_of(tag, target)]
                .inner
                .lock()
                .unacked
                .insert(tag, d);
        }
        *parts = fresh;
    }

    #[inline]
    pub(crate) fn is_decommissioned(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_DECOMMISSIONED
    }

    pub(crate) fn state_snapshot(&self) -> QueueState {
        if self.is_decommissioned() {
            QueueState::Decommissioned
        } else {
            QueueState::Active
        }
    }

    /// Lock-free backlog depth (the telemetry gauge).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.ready_total.load(Ordering::Relaxed)
    }

    /// Lock-free in-flight (popped, unacked) depth.
    #[inline]
    pub(crate) fn unacked_len(&self) -> usize {
        self.unacked_total.load(Ordering::Relaxed)
    }

    /// Lock-free dead-letter count.
    #[inline]
    pub(crate) fn dead_len(&self) -> usize {
        self.dead_len.load(Ordering::Relaxed)
    }

    pub(crate) fn partition_count(&self) -> usize {
        self.partitions.read().len()
    }

    /// Whether any partition *other than* `tag`'s own holds ready
    /// deliveries (lock-free). The subscriber's batched dependency wait
    /// uses this to decide between yielding the delivery back (the message
    /// satisfying the dependency may be sitting ready elsewhere) and
    /// blocking (everything else is drained, so the dependency can only
    /// arrive from another worker's in-flight batch or a future publish).
    pub(crate) fn ready_elsewhere(&self, tag: u64) -> bool {
        let parts = self.partitions.read();
        let own = partition_of(tag, parts.len());
        parts
            .iter()
            .enumerate()
            .any(|(i, p)| i != own && p.len.load(Ordering::Relaxed) > 0)
    }

    /// Lock-free per-partition ready depths.
    pub(crate) fn partition_depths(&self) -> Vec<usize> {
        self.partitions
            .read()
            .iter()
            .map(|p| p.len.load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn inject_drop_next(&self, n: u64) {
        self.drop_next.fetch_add(n, Ordering::Release);
    }

    /// Consumers currently parked (or committing to park) on the queue
    /// condvar. Test/telemetry gauge.
    pub(crate) fn sleepers(&self) -> usize {
        self.sleepers.load(Ordering::SeqCst)
    }

    pub(crate) fn counters(&self) -> QueueCountersSnapshot {
        let c = &self.counters;
        QueueCountersSnapshot {
            enqueued: c.enqueued.load(Ordering::Relaxed),
            acked: c.acked.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
            refused: c.refused.load(Ordering::Relaxed),
            discarded: c.discarded.load(Ordering::Relaxed),
            redelivered: c.redelivered.load(Ordering::Relaxed),
            dead_lettered: c.dead_lettered.load(Ordering::Relaxed),
            spurious_acks: c.spurious_acks.load(Ordering::Relaxed),
            spurious_nacks: c.spurious_nacks.load(Ordering::Relaxed),
            reinstated: c.reinstated.load(Ordering::Relaxed),
            wakeups: c.wakeups.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            stolen: c.stolen.load(Ordering::Relaxed),
        }
    }

    /// Consumes one armed silent-drop fault, if any.
    fn consume_armed_drop(&self) -> bool {
        let armed = &self.drop_next;
        let mut current = armed.load(Ordering::Acquire);
        while current > 0 {
            match armed.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// First half of admission, under the held partition lock: policy
    /// checks (decommission, armed drop, cap kill), tag allocation, and
    /// — when durable — framing the enqueue record straight into
    /// `wal_buf` (outside every WAL lock). Returns the delivery to push
    /// once the staged frames commit; `None` means refused, dropped, or
    /// cap-killed with nothing of this copy staged. A cap kill sets the
    /// decommissioned state, stages the kill record behind the already
    /// staged enqueues, and refuses the triggering copy; the caller
    /// sweeps the surviving backlog once its own lock is released.
    ///
    /// `exempt_cap` skips the cap kill (not the decommission check): the
    /// backlog cap is slow-consumer protection against unbounded *live*
    /// backlog (§4.4), while the node's own bootstrap merges are
    /// flow-controlled by the chunk/window protocol — letting a chunk
    /// merge trip the kill would sweep the live backlog and break the
    /// very lineage the resume watermarks depend on.
    #[allow(clippy::too_many_arguments)]
    fn stage_locked(
        &self,
        exchange: &SharedStr,
        payload: &SharedStr,
        origin_nanos: u64,
        hint: u8,
        staged_so_far: usize,
        exempt_cap: bool,
        wal_buf: &mut Vec<u8>,
        frames: &mut u32,
    ) -> Option<Delivery> {
        if self.is_decommissioned() {
            self.counters.refused.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if self.consume_armed_drop() {
            // Injected silent drop: the copy vanishes before reaching the
            // log, exactly as a lost network frame would.
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let max = self.max_len.load(Ordering::Relaxed);
        // `staged_so_far` counts this run's admitted-but-uncommitted
        // copies, which `ready_total` doesn't yet include — the cap
        // trips at exactly the copy N individual publishes would.
        // Watermark markers are subtracted: they are bounded control
        // traffic, not the unbounded backlog the cap protects against.
        let backlog = self
            .ready_total
            .load(Ordering::SeqCst)
            .saturating_sub(self.marker_ready.load(Ordering::SeqCst));
        if !exempt_cap && max != usize::MAX && backlog + staged_so_far >= max {
            // Kill the queue: stop accepting and refuse the triggering
            // copy. The kill record rides the same staged batch, after
            // the enqueues admitted before it.
            self.counters.refused.fetch_add(1, Ordering::Relaxed);
            self.state.store(STATE_DECOMMISSIONED, Ordering::SeqCst);
            if let Some(binding) = &self.wal {
                frame_record_into(
                    wal_buf,
                    &WalRecord::QueueKilled {
                        queue: binding.queue.clone(),
                    },
                );
                *frames += 1;
            }
            return None;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let tag = (seq << 8) | u64::from(hint);
        if let Some(binding) = &self.wal {
            frame_enqueue_into(
                wal_buf,
                &binding.queue,
                tag,
                exchange.as_str(),
                payload.as_str(),
                origin_nanos,
            );
            *frames += 1;
        }
        Some(Delivery {
            tag,
            exchange: exchange.clone(),
            payload: payload.clone(),
            redelivered: false,
            origin_nanos,
            enqueued_nanos: mono_nanos(),
        })
    }

    /// Second half of admission: commits the staged frames (one
    /// group-commit wait for the whole run) and pushes the admitted
    /// deliveries — still under the partition lock. Commit-before-push
    /// is the durability contract (an enqueue is on the log before it is
    /// visible), and holding the lock across the commit keeps
    /// same-partition FIFO: a later tag can never commit and push ahead
    /// of an earlier one. Returns how many deliveries were enqueued; a
    /// commit failure refuses the entire run (nothing reached the log,
    /// nothing becomes visible).
    fn commit_staged_locked(
        &self,
        part: &Partition,
        inner: &mut PartitionInner,
        wal_buf: &[u8],
        frames: u32,
        staged: Vec<Delivery>,
    ) -> usize {
        if let Some(binding) = &self.wal {
            if frames > 0 && binding.wal.commit_frames(wal_buf, frames).is_err() {
                self.counters
                    .refused
                    .fetch_add(staged.len() as u64, Ordering::Relaxed);
                return 0;
            }
        }
        let n = staged.len();
        if n == 0 {
            return 0;
        }
        for d in staged {
            inner.ready.push_back(d);
        }
        part.len.fetch_add(n, Ordering::Relaxed);
        self.ready_total.fetch_add(n, Ordering::SeqCst);
        self.counters
            .enqueued
            .fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Discards ready + unacked backlog from every partition, counting it.
    /// Called with no partition lock held (takes each in turn).
    fn sweep_discard(&self, parts: &[Partition]) {
        for p in parts {
            let mut inner = p.inner.lock();
            let n = inner.ready.len() + inner.unacked.len();
            if n == 0 {
                continue;
            }
            self.counters
                .discarded
                .fetch_add(n as u64, Ordering::Relaxed);
            self.ready_total
                .fetch_sub(inner.ready.len(), Ordering::SeqCst);
            self.unacked_total
                .fetch_sub(inner.unacked.len(), Ordering::SeqCst);
            p.len.store(0, Ordering::Relaxed);
            inner.ready.clear();
            inner.unacked.clear();
        }
        // Every ready delivery is gone, markers included.
        self.marker_ready.store(0, Ordering::SeqCst);
        self.maybe_notify_quiet();
    }

    /// Post-enqueue epilogue: completes a cap kill (sweep + wake everyone
    /// so parked consumers observe the decommission) or issues counted
    /// wakeups sized to the number of messages actually added.
    fn finish_enqueue(&self, parts: &[Partition], added: usize) {
        if self.is_decommissioned() {
            self.sweep_discard(parts);
            let _guard = self.idle.lock();
            self.idle_cv.notify_all();
        } else {
            self.wake_ready(added);
        }
    }

    /// Counted wakeups: wake `min(added, sleepers)` parked consumers with
    /// individual `notify_one` calls — never a thundering `notify_all`.
    ///
    /// Ordering argument (Dekker-style): the enqueuer's `ready_total`
    /// increment (SeqCst) happens before this `sleepers` load (SeqCst); a
    /// parking consumer increments `sleepers` (SeqCst) *before* its final
    /// `ready_total` check (SeqCst). In every interleaving either the
    /// consumer observes the new message and never sleeps, or this load
    /// observes the sleeper and notifies it. The notify itself is issued
    /// under the idle mutex, which the consumer holds from registration
    /// until `wait` atomically releases it — so the notification cannot
    /// fall into the registration gap.
    fn wake_ready(&self, added: usize) {
        if added == 0 {
            return;
        }
        let sleepers = self.sleepers.load(Ordering::SeqCst);
        if sleepers == 0 {
            return;
        }
        let target = added.min(sleepers);
        let _guard = self.idle.lock();
        let mut woken = 0u64;
        for _ in 0..target {
            if self.idle_cv.notify_one() {
                woken += 1;
            } else {
                break;
            }
        }
        if woken > 0 {
            self.counters.wakeups.fetch_add(woken, Ordering::Relaxed);
        }
    }

    /// Parks until a message is ready, the queue is decommissioned, the
    /// wake epoch moves past `entry_epoch`, or the deadline passes.
    /// Returns `false` only on timeout (caller gives up), `true` when a
    /// rescan is warranted.
    fn park_until(&self, deadline: Instant, entry_epoch: u64) -> bool {
        let mut guard = self.idle.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let rescan = loop {
            if self.ready_total.load(Ordering::SeqCst) > 0
                || self.is_decommissioned()
                || self.wake_epoch.load(Ordering::SeqCst) != entry_epoch
            {
                break true;
            }
            if self.idle_cv.wait_until(&mut guard, deadline).timed_out() {
                break false;
            }
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        rescan
    }

    /// Enqueues a payload routed by `key`; enforces the decommission
    /// policy. The payload is shared, not copied. Key 0 (unkeyed/legacy
    /// publishes) routes to partition 0, preserving global FIFO order for
    /// key-less traffic.
    pub(crate) fn enqueue_routed(
        &self,
        exchange: &SharedStr,
        payload: &SharedStr,
        origin_nanos: u64,
        key: u64,
    ) {
        let parts = self.partitions.read();
        let hint = hint_of_key(key);
        let p = &parts[hint as usize % parts.len()];
        let added = STAGE_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            let mut frames = 0u32;
            let mut inner = p.inner.lock();
            let staged = self
                .stage_locked(
                    exchange,
                    payload,
                    origin_nanos,
                    hint,
                    0,
                    false,
                    &mut buf,
                    &mut frames,
                )
                .map_or_else(Vec::new, |d| vec![d]);
            self.commit_staged_locked(p, &mut inner, &buf, frames, staged)
        });
        self.finish_enqueue(&parts, added);
    }

    /// Enqueues a keyed batch, grouping payloads by destination partition
    /// so each touched partition's lock is taken exactly once, and
    /// applying the same per-copy admission policy as
    /// [`Queue::enqueue_routed`] (a mid-batch cap kill refuses the
    /// remainder, exactly as N individual publishes would). Within each
    /// partition the batch's relative payload order is preserved.
    /// Returns how many copies were admitted (refused/dropped copies are
    /// counted but not enqueued). `exempt_cap` marks the node's own
    /// bootstrap merges, which must not trip the backlog-cap kill (see
    /// [`Queue::stage_locked`]).
    pub(crate) fn enqueue_batch_routed(
        &self,
        exchange: &SharedStr,
        payloads: &[(SharedStr, u64, u64)],
        exempt_cap: bool,
    ) -> usize {
        if payloads.is_empty() {
            return 0;
        }
        let parts = self.partitions.read();
        let count = parts.len();
        // (partition, original index), stable-sorted by partition: one
        // contiguous locked run per touched partition, original relative
        // order intact within each.
        let mut order: Vec<(u32, u32)> = payloads
            .iter()
            .enumerate()
            .map(|(i, (_, _, key))| ((hint_of_key(*key) as usize % count) as u32, i as u32))
            .collect();
        order.sort_by_key(|(p, _)| *p);
        let added = STAGE_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            let mut frames = 0u32;
            // Stage every partition run while *holding* its lock —
            // ascending partition order, the checkpoint's lock
            // discipline, so multi-lock holders can never deadlock each
            // other — then commit the entire batch's frames with ONE
            // group-commit wait. Committing per run would pay one
            // strict commit latency per touched partition, serially;
            // one wait per publish call is the point of the staged
            // batch. Holding the locks across the commit keeps
            // commit-before-push and same-partition FIFO, exactly as
            // the per-run path did.
            let mut locked: Vec<(u32, _, Vec<Delivery>)> = Vec::new();
            let mut total_staged = 0usize;
            let mut i = 0usize;
            while i < order.len() {
                let pi = order[i].0;
                let p = &parts[pi as usize];
                let mut staged: Vec<Delivery> = Vec::new();
                let inner = p.inner.lock();
                while i < order.len() && order[i].0 == pi {
                    let (payload, origin, key) = &payloads[order[i].1 as usize];
                    if let Some(d) = self.stage_locked(
                        exchange,
                        payload,
                        *origin,
                        hint_of_key(*key),
                        total_staged,
                        exempt_cap,
                        &mut buf,
                        &mut frames,
                    ) {
                        staged.push(d);
                        total_staged += 1;
                    }
                    i += 1;
                }
                locked.push((pi, inner, staged));
            }
            let commit_ok = match &self.wal {
                Some(binding) if frames > 0 => binding.wal.commit_frames(&buf, frames).is_ok(),
                _ => true,
            };
            let mut added = 0usize;
            for (pi, mut inner, staged) in locked {
                if !commit_ok {
                    // Nothing reached the log: the whole batch is
                    // refused, nothing becomes visible.
                    self.counters
                        .refused
                        .fetch_add(staged.len() as u64, Ordering::Relaxed);
                    continue;
                }
                let n = staged.len();
                if n == 0 {
                    continue;
                }
                for d in staged {
                    inner.ready.push_back(d);
                }
                parts[pi as usize].len.fetch_add(n, Ordering::Relaxed);
                self.ready_total.fetch_add(n, Ordering::SeqCst);
                self.counters
                    .enqueued
                    .fetch_add(n as u64, Ordering::Relaxed);
                added += n;
            }
            added
        });
        self.finish_enqueue(&parts, added);
        added
    }

    /// Legacy unkeyed batch enqueue (everything routes to partition 0,
    /// one lock acquisition for the whole batch).
    pub(crate) fn enqueue_batch(&self, exchange: &SharedStr, payloads: &[(SharedStr, u64)]) {
        if payloads.is_empty() {
            return;
        }
        let parts = self.partitions.read();
        let p = &parts[0];
        let added = STAGE_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            let mut frames = 0u32;
            let mut staged: Vec<Delivery> = Vec::new();
            let mut inner = p.inner.lock();
            for (payload, origin) in payloads {
                if let Some(d) = self.stage_locked(
                    exchange,
                    payload,
                    *origin,
                    0,
                    staged.len(),
                    false,
                    &mut buf,
                    &mut frames,
                ) {
                    staged.push(d);
                }
            }
            self.commit_staged_locked(p, &mut inner, &buf, frames, staged)
        });
        self.finish_enqueue(&parts, added);
    }

    /// Takes up to `max` deliveries off one locked partition, moving them
    /// to its unacked set and maintaining the gauges.
    fn take_locked(
        &self,
        part: &Partition,
        inner: &mut PartitionInner,
        max: usize,
        out: &mut Vec<Delivery>,
    ) {
        let n = inner.ready.len().min(max);
        if n == 0 {
            return;
        }
        let mut markers = 0usize;
        for _ in 0..n {
            let delivery = inner.ready.pop_front().expect("len checked");
            if is_marker(&delivery) {
                markers += 1;
            }
            inner.unacked.insert(delivery.tag, delivery.clone());
            out.push(delivery);
        }
        part.len.fetch_sub(n, Ordering::Relaxed);
        if markers > 0 {
            self.marker_ready.fetch_sub(markers, Ordering::SeqCst);
        }
        self.ready_total.fetch_sub(n, Ordering::SeqCst);
        self.unacked_total.fetch_add(n, Ordering::SeqCst);
    }

    /// Blocking pop with deadline; moves the delivery to the unacked set.
    pub(crate) fn pop(&self, timeout: Duration) -> Option<Delivery> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let parts = self.partitions.read();
                for p in parts.iter() {
                    if p.len.load(Ordering::Relaxed) == 0 {
                        continue;
                    }
                    let mut inner = p.inner.lock();
                    if let Some(delivery) = inner.ready.pop_front() {
                        inner.unacked.insert(delivery.tag, delivery.clone());
                        p.len.fetch_sub(1, Ordering::Relaxed);
                        if is_marker(&delivery) {
                            self.marker_ready.fetch_sub(1, Ordering::SeqCst);
                        }
                        self.ready_total.fetch_sub(1, Ordering::SeqCst);
                        self.unacked_total.fetch_add(1, Ordering::SeqCst);
                        return Some(delivery);
                    }
                }
            }
            if self.is_decommissioned() {
                return None;
            }
            let epoch = self.wake_epoch.load(Ordering::SeqCst);
            if !self.park_until(deadline, epoch) {
                return None;
            }
        }
    }

    /// Blocking batch pop: parks until at least one delivery is ready,
    /// then drains up to `max` across partitions in index order (each
    /// partition's run stays FIFO; unkeyed traffic lives wholly in
    /// partition 0, so its global order is preserved). Returns empty on
    /// timeout, decommission, or a [`Queue::wake_all`] issued after the
    /// call began (shutdown).
    pub(crate) fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<Delivery> {
        if max == 0 {
            return Vec::new();
        }
        let deadline = Instant::now() + timeout;
        let entry_epoch = self.wake_epoch.load(Ordering::SeqCst);
        loop {
            {
                let parts = self.partitions.read();
                let mut out = Vec::new();
                for p in parts.iter() {
                    if out.len() >= max {
                        break;
                    }
                    if p.len.load(Ordering::Relaxed) == 0 {
                        continue;
                    }
                    let mut inner = p.inner.lock();
                    self.take_locked(p, &mut inner, max - out.len(), &mut out);
                }
                if !out.is_empty() {
                    return out;
                }
            }
            if self.is_decommissioned() || self.wake_epoch.load(Ordering::SeqCst) != entry_epoch {
                return Vec::new();
            }
            if !self.park_until(deadline, entry_epoch) {
                return Vec::new();
            }
        }
    }

    /// Drains up to `max` deliveries from one partition. With a zero
    /// timeout this is a non-blocking poll (the work-stealing workers'
    /// home-partition scan); otherwise it parks on the queue condvar and
    /// re-polls its partition on every wake until the deadline.
    pub(crate) fn pop_batch_from(
        &self,
        partition: usize,
        max: usize,
        timeout: Duration,
    ) -> Vec<Delivery> {
        if max == 0 {
            return Vec::new();
        }
        let deadline = Instant::now() + timeout;
        let entry_epoch = self.wake_epoch.load(Ordering::SeqCst);
        loop {
            {
                let parts = self.partitions.read();
                let p = &parts[partition % parts.len()];
                if p.len.load(Ordering::Relaxed) > 0 {
                    let mut out = Vec::new();
                    let mut inner = p.inner.lock();
                    self.take_locked(p, &mut inner, max, &mut out);
                    if !out.is_empty() {
                        return out;
                    }
                }
            }
            if timeout.is_zero()
                || self.is_decommissioned()
                || self.wake_epoch.load(Ordering::SeqCst) != entry_epoch
                || !self.park_until(deadline, entry_epoch)
            {
                return Vec::new();
            }
        }
    }

    /// Steals up to `min(max, ceil(ready/2))` deliveries from the *front*
    /// of one partition's ready run (so a lone message can always be
    /// stolen and the oldest work migrates first). Stolen deliveries move
    /// to the victim partition's unacked set — their tags still name that
    /// partition, so acks route correctly no matter which worker applies
    /// them. Non-blocking.
    pub(crate) fn steal_batch(&self, partition: usize, max: usize) -> Vec<Delivery> {
        if max == 0 {
            return Vec::new();
        }
        let parts = self.partitions.read();
        let p = &parts[partition % parts.len()];
        if p.len.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut inner = p.inner.lock();
        let half = inner.ready.len().div_ceil(2);
        let mut out = Vec::new();
        self.take_locked(p, &mut inner, max.min(half), &mut out);
        if !out.is_empty() {
            self.counters.steals.fetch_add(1, Ordering::Relaxed);
            self.counters
                .stolen
                .fetch_add(out.len() as u64, Ordering::Relaxed);
        }
        out
    }

    /// Parks until the queue has ready deliveries, is decommissioned, or
    /// is woken/shut down — or until `timeout` passes. Returns `true`
    /// unless it timed out, i.e. `true` means "rescan now".
    pub(crate) fn wait_ready(&self, timeout: Duration) -> bool {
        if self.ready_total.load(Ordering::SeqCst) > 0 || self.is_decommissioned() {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let entry_epoch = self.wake_epoch.load(Ordering::SeqCst);
        self.park_until(deadline, entry_epoch)
    }

    /// Wakes every parked consumer; batch pops in progress return empty.
    /// Used by subscriber shutdown so workers notice the stop flag without
    /// waiting out their park timeout.
    pub(crate) fn wake_all(&self) {
        let _guard = self.idle.lock();
        self.wake_epoch.fetch_add(1, Ordering::SeqCst);
        self.idle_cv.notify_all();
    }

    /// Whether the queue holds no ready and no in-flight deliveries.
    #[inline]
    fn is_quiescent(&self) -> bool {
        self.ready_total.load(Ordering::SeqCst) == 0
            && self.unacked_total.load(Ordering::SeqCst) == 0
    }

    /// Wakes quiescence waiters if the queue just emptied. Called after
    /// every operation that can retire the last in-flight delivery (ack,
    /// dead-letter, sweep). The notify runs under the idle mutex, which a
    /// `wait_quiescent` caller holds from its check to its park — so the
    /// waiter either observes the empty counters or is parked when the
    /// notify lands; the wakeup cannot be lost.
    fn maybe_notify_quiet(&self) {
        if self.is_quiescent() {
            let _guard = self.idle.lock();
            self.quiet_cv.notify_all();
        }
    }

    /// Blocks until the queue is quiescent (no ready, no unacked) or the
    /// deadline passes; returns whether it is quiescent. Event-driven:
    /// parks on `quiet_cv` between transitions instead of polling.
    pub(crate) fn wait_quiescent(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.idle.lock();
        loop {
            if self.is_quiescent() {
                return true;
            }
            if self.quiet_cv.wait_until(&mut guard, deadline).timed_out() {
                return self.is_quiescent();
            }
        }
    }

    /// Injects one bootstrap watermark marker into *every* partition of
    /// the live stream (DBLog chunk interleaving). Each marker is a real
    /// delivery — tag hint = partition index, so replay and acks route it
    /// home — logged as a [`WalRecord::Watermark`] so an unconsumed
    /// marker survives a crash. Markers bypass the cap and armed-drop
    /// faults (they are control flow, two per chunk per partition, and a
    /// silently dropped marker would wedge the copier's window wait).
    /// Returns how many partitions were marked: the full count on
    /// success, 0 when the queue is decommissioned or the WAL refuses
    /// the commit.
    pub(crate) fn enqueue_watermark(
        &self,
        exchange: &SharedStr,
        payload: &SharedStr,
        session: u64,
        chunk: u64,
        high: bool,
    ) -> usize {
        let parts = self.partitions.read();
        if self.is_decommissioned() {
            return 0;
        }
        // All partition locks in index order (the checkpoint's lock
        // discipline), so the markers commit as one atomic group and no
        // same-chunk copy can interleave ahead of its own high marker.
        let mut guards: Vec<_> = parts.iter().map(|p| p.inner.lock()).collect();
        let mut staged: Vec<Delivery> = Vec::with_capacity(parts.len());
        let mut buf = Vec::with_capacity(64 * parts.len());
        let mut frames = 0u32;
        for i in 0..parts.len() {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let tag = (seq << 8) | i as u64;
            if let Some(binding) = &self.wal {
                frame_record_into(
                    &mut buf,
                    &WalRecord::Watermark {
                        queue: binding.queue.clone(),
                        tag,
                        session,
                        chunk,
                        high,
                    },
                );
                frames += 1;
            }
            staged.push(Delivery {
                tag,
                exchange: exchange.clone(),
                payload: payload.clone(),
                redelivered: false,
                origin_nanos: 0,
                enqueued_nanos: mono_nanos(),
            });
        }
        if let Some(binding) = &self.wal {
            if frames > 0 && binding.wal.commit_frames(&buf, frames).is_err() {
                return 0;
            }
        }
        let added = staged.len();
        for (i, d) in staged.into_iter().enumerate() {
            guards[i].ready.push_back(d);
            parts[i].len.fetch_add(1, Ordering::Relaxed);
        }
        self.marker_ready.fetch_add(added, Ordering::SeqCst);
        self.ready_total.fetch_add(added, Ordering::SeqCst);
        self.counters
            .enqueued
            .fetch_add(added as u64, Ordering::Relaxed);
        drop(guards);
        self.finish_enqueue(&parts, added);
        added
    }

    pub(crate) fn ack(&self, tag: u64) -> bool {
        let parts = self.partitions.read();
        let p = &parts[partition_of(tag, parts.len())];
        let hit = p.inner.lock().unacked.remove(&tag).is_some();
        drop(parts);
        if hit {
            self.unacked_total.fetch_sub(1, Ordering::SeqCst);
            self.counters.acked.fetch_add(1, Ordering::Relaxed);
            self.maybe_notify_quiet();
            if let Some(binding) = &self.wal {
                binding.append_best_effort(&WalRecord::Ack {
                    queue: binding.queue.clone(),
                    tags: vec![tag],
                });
            }
        } else {
            self.counters.spurious_acks.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Acks a batch of tags, grouped so each touched partition's lock is
    /// taken once. Returns how many were live (spurious acks are counted,
    /// exactly as [`Queue::ack`]). Live tags land in one WAL record.
    pub(crate) fn ack_batch(&self, tags: &[u64]) -> u64 {
        if tags.is_empty() {
            return 0;
        }
        let parts = self.partitions.read();
        let count = parts.len();
        let mut order: Vec<(u32, u64)> = tags
            .iter()
            .map(|&tag| (partition_of(tag, count) as u32, tag))
            .collect();
        order.sort_by_key(|(p, _)| *p);
        let mut hits = 0u64;
        let mut live: Vec<u64> = Vec::new();
        let mut i = 0usize;
        while i < order.len() {
            let pi = order[i].0;
            let mut inner = parts[pi as usize].inner.lock();
            let mut removed = 0usize;
            while i < order.len() && order[i].0 == pi {
                let tag = order[i].1;
                if inner.unacked.remove(&tag).is_some() {
                    hits += 1;
                    removed += 1;
                    if self.wal.is_some() {
                        live.push(tag);
                    }
                } else {
                    self.counters.spurious_acks.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
            drop(inner);
            if removed > 0 {
                self.counters
                    .acked
                    .fetch_add(removed as u64, Ordering::Relaxed);
                self.unacked_total.fetch_sub(removed, Ordering::SeqCst);
            }
        }
        drop(parts);
        self.maybe_notify_quiet();
        if let (Some(binding), false) = (&self.wal, live.is_empty()) {
            binding.append_best_effort(&WalRecord::Ack {
                queue: binding.queue.clone(),
                tags: live,
            });
        }
        hits
    }

    /// Returns the delivery to its partition, marked redelivered, at its
    /// tag-ordered position (usually the front). A blind `push_front`
    /// here is not enough: two workers reverse-nacking their batch tails
    /// into the *same* partition can interleave, scrambling the
    /// partition's FIFO order — and once an older message sits behind a
    /// newer one, causally-chained traffic (all of one user's writes
    /// share a partition) can deadlock in a circular dependency wait.
    /// Inserting by tag keeps the ready run sorted under any
    /// interleaving, so the oldest outstanding message is always the
    /// next one popped.
    pub(crate) fn nack(&self, tag: u64) -> bool {
        let parts = self.partitions.read();
        let p = &parts[partition_of(tag, parts.len())];
        let mut inner = p.inner.lock();
        if let Some(mut delivery) = inner.unacked.remove(&tag) {
            delivery.redelivered = true;
            let marker = is_marker(&delivery);
            let pos = inner.ready.partition_point(|d| d.tag < tag);
            inner.ready.insert(pos, delivery);
            p.len.fetch_add(1, Ordering::Relaxed);
            drop(inner);
            drop(parts);
            self.unacked_total.fetch_sub(1, Ordering::SeqCst);
            if marker {
                self.marker_ready.fetch_add(1, Ordering::SeqCst);
            }
            self.ready_total.fetch_add(1, Ordering::SeqCst);
            self.counters.redelivered.fetch_add(1, Ordering::Relaxed);
            self.wake_ready(1);
            true
        } else {
            self.counters.spurious_nacks.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Moves an unacked delivery to the dead-letter store. The message
    /// leaves the delivery path but stays inspectable; the caller is
    /// expected to account for it (it is consumed, like an ack).
    pub(crate) fn dead_letter(&self, tag: u64) -> bool {
        let parts = self.partitions.read();
        let p = &parts[partition_of(tag, parts.len())];
        let removed = p.inner.lock().unacked.remove(&tag);
        drop(parts);
        if let Some(delivery) = removed {
            self.unacked_total.fetch_sub(1, Ordering::SeqCst);
            self.maybe_notify_quiet();
            self.dead.lock().push(delivery);
            self.dead_len.fetch_add(1, Ordering::Relaxed);
            self.counters.dead_lettered.fetch_add(1, Ordering::Relaxed);
            if let Some(binding) = &self.wal {
                binding.append_best_effort(&WalRecord::DeadLetter {
                    queue: binding.queue.clone(),
                    tag,
                });
            }
            true
        } else {
            false
        }
    }

    /// Snapshot of the dead-letter store.
    pub(crate) fn dead_letters(&self) -> Vec<Delivery> {
        self.dead.lock().clone()
    }

    /// Requeues all unacked deliveries (broker restart semantics), each
    /// to the front of its own partition in tag order.
    pub(crate) fn recover(&self) {
        let parts = self.partitions.read();
        for p in parts.iter() {
            let mut inner = p.inner.lock();
            if inner.unacked.is_empty() {
                continue;
            }
            let mut unacked: Vec<Delivery> = inner.unacked.drain().map(|(_, d)| d).collect();
            unacked.sort_by_key(|d| d.tag);
            let n = unacked.len();
            let markers = unacked.iter().filter(|d| is_marker(d)).count();
            for mut d in unacked {
                d.redelivered = true;
                // Tag-ordered insert, same as `nack`: a previously nacked
                // delivery may already sit in `ready` with an older tag
                // than some of these.
                let pos = inner.ready.partition_point(|r| r.tag < d.tag);
                inner.ready.insert(pos, d);
            }
            p.len.fetch_add(n, Ordering::Relaxed);
            if markers > 0 {
                self.marker_ready.fetch_add(markers, Ordering::SeqCst);
            }
            self.ready_total.fetch_add(n, Ordering::SeqCst);
            self.unacked_total.fetch_sub(n, Ordering::SeqCst);
            self.counters
                .redelivered
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        drop(parts);
        let _guard = self.idle.lock();
        self.idle_cv.notify_all();
    }

    /// Resets a decommissioned queue to empty active state (the subscriber
    /// rejoining after a partial bootstrap). The dead-letter store survives:
    /// it is an audit log, not backlog. Idempotent: an already-active queue
    /// is left untouched (its backlog is live traffic, not stale state) and
    /// `false` is returned. Armed `drop_next` faults belong to the
    /// decommissioned incarnation and are disarmed, so a reinstated queue
    /// cannot silently eat its first live messages.
    pub(crate) fn reinstate(&self) -> bool {
        let parts = self.partitions.read();
        if !self.is_decommissioned() {
            return false;
        }
        self.sweep_discard(&parts);
        self.drop_next.store(0, Ordering::SeqCst);
        self.counters.reinstated.fetch_add(1, Ordering::Relaxed);
        self.state.store(STATE_ACTIVE, Ordering::SeqCst);
        if let Some(binding) = &self.wal {
            binding.append_best_effort(&WalRecord::QueueReinstated {
                queue: binding.queue.clone(),
            });
        }
        true
    }

    /// Force-decommissions the queue, discarding its backlog, as if it had
    /// exceeded its cap (failure injection / operator action).
    pub(crate) fn force_decommission(&self) {
        let parts = self.partitions.read();
        self.state.store(STATE_DECOMMISSIONED, Ordering::SeqCst);
        self.sweep_discard(&parts);
        if let Some(binding) = &self.wal {
            binding.append_best_effort(&WalRecord::QueueKilled {
                queue: binding.queue.clone(),
            });
        }
        drop(parts);
        let _guard = self.idle.lock();
        self.idle_cv.notify_all();
    }

    /// Appends this queue's checkpoint record to the WAL. Built *and*
    /// appended while holding every partition lock (acquired in index
    /// order; all other paths hold at most one partition lock, so this
    /// cannot deadlock), so no enqueue/ack can slip between the captured
    /// state and its log position — replay may safely treat the
    /// checkpoint as a full replacement of everything before it.
    /// The record's `next_tag` field carries the next *sequence* number
    /// (tags are reconstructed from it by the same `(seq << 8) | hint`
    /// encoding at publish time). No-op for non-durable queues.
    pub(crate) fn append_checkpoint(&self) -> std::io::Result<()> {
        let Some(binding) = &self.wal else {
            return Ok(());
        };
        let parts = self.partitions.read();
        let guards: Vec<_> = parts.iter().map(|p| p.inner.lock()).collect();
        let mut pending: Vec<(u64, String, String, u64, bool)> = Vec::new();
        for inner in &guards {
            pending.extend(inner.ready.iter().map(|d| {
                (
                    d.tag,
                    d.exchange.as_str().to_owned(),
                    d.payload.as_str().to_owned(),
                    d.origin_nanos,
                    d.redelivered,
                )
            }));
            // Unacked deliveries have been seen once: a post-crash replay
            // of the checkpoint must hand them out flagged redelivered.
            pending.extend(inner.unacked.values().map(|d| {
                (
                    d.tag,
                    d.exchange.as_str().to_owned(),
                    d.payload.as_str().to_owned(),
                    d.origin_nanos,
                    true,
                )
            }));
        }
        pending.sort_unstable_by_key(|(tag, ..)| *tag);
        let dead = self
            .dead
            .lock()
            .iter()
            .map(|d| {
                (
                    d.tag,
                    d.exchange.as_str().to_owned(),
                    d.payload.as_str().to_owned(),
                    d.origin_nanos,
                )
            })
            .collect();
        let record = WalRecord::Checkpoint {
            queue: binding.queue.clone(),
            decommissioned: self.is_decommissioned(),
            next_tag: self.next_seq.load(Ordering::SeqCst),
            pending,
            dead,
        };
        // Frame locally (outside every WAL lock), then join the group
        // commit. Blocking here while holding all partition locks is
        // deadlock-free: the commit protocol takes only the WAL's own
        // staging and IO locks, never a partition lock, and the leader
        // finishes every epoch in bounded time — so this thread's epoch
        // is always drained. Concurrent enqueues blocked on *this*
        // queue's partitions simply wait their turn; enqueues to other
        // queues share the group commit with the checkpoint itself.
        let mut buf = Vec::with_capacity(256);
        frame_record_into(&mut buf, &record);
        binding.wal.commit_frames(&buf, 1)
    }
}
