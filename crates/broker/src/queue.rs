//! Durable FIFO queues with acks, dead-lettering, and the decommission
//! policy.

use crate::message::Delivery;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Queue configuration.
#[derive(Debug, Clone, Default)]
pub struct QueueConfig {
    /// Maximum backlog before the queue is killed and its subscriber
    /// decommissioned (§4.4). `None` means unbounded.
    pub max_len: Option<usize>,
}

/// Lifecycle state of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueState {
    /// Accepting and delivering messages.
    Active,
    /// Killed after exceeding its backlog cap; contents were discarded and
    /// the subscriber must partially bootstrap to rejoin (§4.4).
    Decommissioned,
}

#[derive(Debug)]
pub(crate) struct QueueInner {
    pub(crate) ready: VecDeque<Delivery>,
    pub(crate) unacked: HashMap<u64, Delivery>,
    /// Dead-letter store: deliveries a consumer gave up on. They are out of
    /// the delivery path but retained for inspection and accounting, so a
    /// poisoned message is never *silently* lost.
    pub(crate) dead: Vec<Delivery>,
    pub(crate) state: QueueState,
    pub(crate) next_tag: u64,
    pub(crate) config: QueueConfig,
    /// Counters: enqueued, delivered, acked, dropped-by-fault.
    pub(crate) enqueued: u64,
    pub(crate) acked: u64,
    pub(crate) dropped: u64,
    /// Copies refused because the queue was decommissioned at publish time.
    pub(crate) refused: u64,
    /// Backlog copies discarded when the queue was decommissioned.
    pub(crate) discarded: u64,
    /// Deliveries returned to the queue by nack or broker restart.
    pub(crate) redelivered: u64,
    /// Deliveries routed to the dead-letter store.
    pub(crate) dead_lettered: u64,
    /// Acks for tags that were unknown or already acked.
    pub(crate) spurious_acks: u64,
    /// Nacks for tags that were unknown or already acked.
    pub(crate) spurious_nacks: u64,
    /// Fault injection: number of upcoming messages to silently drop.
    pub(crate) drop_next: u64,
}

impl QueueInner {
    fn new(config: QueueConfig) -> Self {
        QueueInner {
            ready: VecDeque::new(),
            unacked: HashMap::new(),
            dead: Vec::new(),
            state: QueueState::Active,
            next_tag: 1,
            config,
            enqueued: 0,
            acked: 0,
            dropped: 0,
            refused: 0,
            discarded: 0,
            redelivered: 0,
            dead_lettered: 0,
            spurious_acks: 0,
            spurious_nacks: 0,
            drop_next: 0,
        }
    }
}

/// A single named queue. Created through
/// [`Broker::declare_queue`](crate::Broker::declare_queue).
#[derive(Debug)]
pub(crate) struct Queue {
    pub(crate) inner: Mutex<QueueInner>,
    pub(crate) ready_cv: Condvar,
}

impl Queue {
    pub(crate) fn new(config: QueueConfig) -> Self {
        Queue {
            inner: Mutex::new(QueueInner::new(config)),
            ready_cv: Condvar::new(),
        }
    }

    /// Enqueues a payload; enforces the decommission policy.
    pub(crate) fn enqueue(&self, exchange: &str, payload: &str) {
        let mut inner = self.inner.lock();
        if inner.state == QueueState::Decommissioned {
            inner.refused += 1;
            return;
        }
        if inner.drop_next > 0 {
            inner.drop_next -= 1;
            inner.dropped += 1;
            return;
        }
        if let Some(max) = inner.config.max_len {
            if inner.ready.len() >= max {
                // Kill the queue: discard the backlog and stop accepting.
                // The triggering copy is also refused, not enqueued.
                inner.discarded += (inner.ready.len() + inner.unacked.len()) as u64;
                inner.refused += 1;
                inner.ready.clear();
                inner.unacked.clear();
                inner.state = QueueState::Decommissioned;
                drop(inner);
                self.ready_cv.notify_all();
                return;
            }
        }
        let tag = inner.next_tag;
        inner.next_tag += 1;
        inner.ready.push_back(Delivery {
            tag,
            exchange: exchange.to_owned(),
            payload: payload.to_owned(),
            redelivered: false,
        });
        inner.enqueued += 1;
        drop(inner);
        self.ready_cv.notify_one();
    }

    /// Blocking pop with deadline; moves the delivery to the unacked set.
    pub(crate) fn pop(&self, timeout: Duration) -> Option<Delivery> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(delivery) = inner.ready.pop_front() {
                inner.unacked.insert(delivery.tag, delivery.clone());
                return Some(delivery);
            }
            if inner.state == QueueState::Decommissioned {
                return None;
            }
            if self.ready_cv.wait_until(&mut inner, deadline).timed_out() {
                return None;
            }
        }
    }

    pub(crate) fn ack(&self, tag: u64) -> bool {
        let mut inner = self.inner.lock();
        let hit = inner.unacked.remove(&tag).is_some();
        if hit {
            inner.acked += 1;
        } else {
            inner.spurious_acks += 1;
        }
        hit
    }

    /// Returns the delivery to the front of the queue, marked redelivered.
    pub(crate) fn nack(&self, tag: u64) -> bool {
        let mut inner = self.inner.lock();
        if let Some(mut delivery) = inner.unacked.remove(&tag) {
            delivery.redelivered = true;
            inner.redelivered += 1;
            inner.ready.push_front(delivery);
            drop(inner);
            self.ready_cv.notify_one();
            true
        } else {
            inner.spurious_nacks += 1;
            false
        }
    }

    /// Moves an unacked delivery to the dead-letter store. The message
    /// leaves the delivery path but stays inspectable; the caller is
    /// expected to account for it (it is consumed, like an ack).
    pub(crate) fn dead_letter(&self, tag: u64) -> bool {
        let mut inner = self.inner.lock();
        if let Some(delivery) = inner.unacked.remove(&tag) {
            inner.dead.push(delivery);
            inner.dead_lettered += 1;
            true
        } else {
            false
        }
    }

    /// Snapshot of the dead-letter store.
    pub(crate) fn dead_letters(&self) -> Vec<Delivery> {
        self.inner.lock().dead.clone()
    }

    /// Requeues all unacked deliveries (broker restart semantics).
    pub(crate) fn recover(&self) {
        let mut inner = self.inner.lock();
        let mut unacked: Vec<Delivery> = inner.unacked.drain().map(|(_, d)| d).collect();
        unacked.sort_by_key(|d| d.tag);
        inner.redelivered += unacked.len() as u64;
        for mut d in unacked.into_iter().rev() {
            d.redelivered = true;
            inner.ready.push_front(d);
        }
        drop(inner);
        self.ready_cv.notify_all();
    }

    /// Resets a decommissioned queue to empty active state (the subscriber
    /// rejoining after a partial bootstrap). The dead-letter store survives:
    /// it is an audit log, not backlog.
    pub(crate) fn reinstate(&self) {
        let mut inner = self.inner.lock();
        inner.discarded += (inner.ready.len() + inner.unacked.len()) as u64;
        inner.ready.clear();
        inner.unacked.clear();
        inner.state = QueueState::Active;
    }
}
