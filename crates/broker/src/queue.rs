//! Durable FIFO queues with acks, dead-lettering, and the decommission
//! policy.

use crate::message::{Delivery, SharedStr};
use crate::wal::{Wal, WalRecord};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_telemetry::mono_nanos;

/// A queue's handle on the broker WAL: the shared log plus the queue's
/// own name for record attribution.
///
/// Logging discipline: an enqueue is logged *before* the in-memory push
/// (admission implies the record is on the log, so a confirmed publish
/// survives a crash under `FsyncPolicy::EveryWrite`); acks, dead-letters,
/// and lifecycle transitions are logged after the in-memory change,
/// best-effort (losing an ack record merely redelivers after restart —
/// at-least-once is preserved, exactly-once was never promised).
#[derive(Debug)]
pub(crate) struct WalBinding {
    pub(crate) wal: Arc<Wal>,
    pub(crate) queue: String,
}

impl WalBinding {
    /// Best-effort append for post-change records; errors are swallowed
    /// (the in-memory state is already authoritative for this process,
    /// and replay-side conservatism covers the loss).
    fn append_best_effort(&self, record: &WalRecord) {
        let _ = self.wal.append(record);
    }
}

/// Queue configuration.
#[derive(Debug, Clone, Default)]
pub struct QueueConfig {
    /// Maximum backlog before the queue is killed and its subscriber
    /// decommissioned (§4.4). `None` means unbounded.
    pub max_len: Option<usize>,
}

/// Lifecycle state of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueState {
    /// Accepting and delivering messages.
    Active,
    /// Killed after exceeding its backlog cap; contents were discarded and
    /// the subscriber must partially bootstrap to rejoin (§4.4).
    Decommissioned,
}

#[derive(Debug)]
pub(crate) struct QueueInner {
    pub(crate) ready: VecDeque<Delivery>,
    pub(crate) unacked: HashMap<u64, Delivery>,
    /// Dead-letter store: deliveries a consumer gave up on. They are out of
    /// the delivery path but retained for inspection and accounting, so a
    /// poisoned message is never *silently* lost.
    pub(crate) dead: Vec<Delivery>,
    pub(crate) state: QueueState,
    pub(crate) next_tag: u64,
    pub(crate) config: QueueConfig,
    /// Bumped by [`Queue::wake_all`]; a parked `pop_batch` returns empty
    /// when it observes a new epoch, so shutdown never waits out a timeout.
    pub(crate) wake_epoch: u64,
    /// Counters: enqueued, delivered, acked, dropped-by-fault.
    pub(crate) enqueued: u64,
    pub(crate) acked: u64,
    pub(crate) dropped: u64,
    /// Copies refused because the queue was decommissioned at publish time.
    pub(crate) refused: u64,
    /// Backlog copies discarded when the queue was decommissioned.
    pub(crate) discarded: u64,
    /// Deliveries returned to the queue by nack or broker restart.
    pub(crate) redelivered: u64,
    /// Deliveries routed to the dead-letter store.
    pub(crate) dead_lettered: u64,
    /// Acks for tags that were unknown or already acked.
    pub(crate) spurious_acks: u64,
    /// Nacks for tags that were unknown or already acked.
    pub(crate) spurious_nacks: u64,
    /// Fault injection: number of upcoming messages to silently drop.
    pub(crate) drop_next: u64,
    /// Times this queue was reinstated after a decommission.
    pub(crate) reinstated: u64,
}

impl QueueInner {
    fn new(config: QueueConfig) -> Self {
        QueueInner {
            ready: VecDeque::new(),
            unacked: HashMap::new(),
            dead: Vec::new(),
            state: QueueState::Active,
            next_tag: 1,
            config,
            wake_epoch: 0,
            enqueued: 0,
            acked: 0,
            dropped: 0,
            refused: 0,
            discarded: 0,
            redelivered: 0,
            dead_lettered: 0,
            spurious_acks: 0,
            spurious_nacks: 0,
            drop_next: 0,
            reinstated: 0,
        }
    }

    /// Admits one payload under the held lock. Returns `true` if the copy
    /// was enqueued (vs refused, dropped, or cap-killed). When the queue
    /// is WAL-backed, the enqueue record is appended *before* the push;
    /// an append failure refuses the copy (accepted implies logged).
    fn admit(
        &mut self,
        exchange: &SharedStr,
        payload: &SharedStr,
        origin_nanos: u64,
        wal: Option<&WalBinding>,
    ) -> bool {
        if self.state == QueueState::Decommissioned {
            self.refused += 1;
            return false;
        }
        if self.drop_next > 0 {
            // Injected silent drop: the copy vanishes before reaching the
            // log, exactly as a lost network frame would.
            self.drop_next -= 1;
            self.dropped += 1;
            return false;
        }
        if let Some(max) = self.config.max_len {
            if self.ready.len() >= max {
                // Kill the queue: discard the backlog and stop accepting.
                // The triggering copy is also refused, not enqueued.
                self.discarded += (self.ready.len() + self.unacked.len()) as u64;
                self.refused += 1;
                self.ready.clear();
                self.unacked.clear();
                self.state = QueueState::Decommissioned;
                if let Some(binding) = wal {
                    binding.append_best_effort(&WalRecord::QueueKilled {
                        queue: binding.queue.clone(),
                    });
                }
                return false;
            }
        }
        let tag = self.next_tag;
        if let Some(binding) = wal {
            let record = WalRecord::Enqueue {
                queue: binding.queue.clone(),
                tag,
                exchange: exchange.as_str().to_owned(),
                payload: payload.as_str().to_owned(),
                origin_nanos,
            };
            if binding.wal.append(&record).is_err() {
                self.refused += 1;
                return false;
            }
        }
        self.next_tag += 1;
        self.ready.push_back(Delivery {
            tag,
            exchange: exchange.clone(),
            payload: payload.clone(),
            redelivered: false,
            origin_nanos,
            enqueued_nanos: mono_nanos(),
        });
        self.enqueued += 1;
        true
    }
}

/// A single named queue. Created through
/// [`Broker::declare_queue`](crate::Broker::declare_queue).
#[derive(Debug)]
pub(crate) struct Queue {
    pub(crate) inner: Mutex<QueueInner>,
    pub(crate) ready_cv: Condvar,
    /// `Some` when the owning broker is durable; immutable after creation.
    pub(crate) wal: Option<WalBinding>,
}

impl Queue {
    pub(crate) fn new(config: QueueConfig, wal: Option<WalBinding>) -> Self {
        Queue {
            inner: Mutex::new(QueueInner::new(config)),
            ready_cv: Condvar::new(),
            wal,
        }
    }

    /// Rebuilds a queue from recovered WAL state. Recovered pending
    /// deliveries are conservatively flagged `redelivered` (after a crash
    /// there is no record of whether a delivery was ever seen) and their
    /// `enqueued_nanos` are restamped at recovery time.
    pub(crate) fn restore(
        config: QueueConfig,
        wal: Option<WalBinding>,
        decommissioned: bool,
        next_tag: u64,
        pending: Vec<(u64, SharedStr, SharedStr, u64)>,
        dead: Vec<(u64, SharedStr, SharedStr, u64)>,
    ) -> Self {
        let mut inner = QueueInner::new(config);
        let now = mono_nanos();
        for (tag, exchange, payload, origin_nanos) in pending {
            inner.ready.push_back(Delivery {
                tag,
                exchange,
                payload,
                redelivered: true,
                origin_nanos,
                enqueued_nanos: now,
            });
        }
        for (tag, exchange, payload, origin_nanos) in dead {
            inner.dead.push(Delivery {
                tag,
                exchange,
                payload,
                redelivered: true,
                origin_nanos,
                enqueued_nanos: now,
            });
        }
        inner.next_tag = next_tag.max(1);
        if decommissioned {
            inner.state = QueueState::Decommissioned;
        }
        Queue {
            inner: Mutex::new(inner),
            ready_cv: Condvar::new(),
            wal,
        }
    }

    /// Enqueues a payload; enforces the decommission policy. The payload is
    /// shared, not copied.
    pub(crate) fn enqueue(&self, exchange: &SharedStr, payload: &SharedStr, origin_nanos: u64) {
        let mut inner = self.inner.lock();
        let added = inner.admit(exchange, payload, origin_nanos, self.wal.as_ref());
        let killed = inner.state == QueueState::Decommissioned;
        drop(inner);
        if killed {
            self.ready_cv.notify_all();
        } else if added {
            self.ready_cv.notify_one();
        }
    }

    /// Enqueues a batch of payloads under a single lock acquisition,
    /// applying the same per-copy admission policy as [`Queue::enqueue`]
    /// (so a mid-batch cap kill refuses the remainder, exactly as N
    /// individual publishes would).
    pub(crate) fn enqueue_batch(&self, exchange: &SharedStr, payloads: &[(SharedStr, u64)]) {
        if payloads.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let mut added = 0usize;
        for (payload, origin) in payloads {
            if inner.admit(exchange, payload, *origin, self.wal.as_ref()) {
                added += 1;
            }
        }
        let killed = inner.state == QueueState::Decommissioned;
        drop(inner);
        if killed || added > 1 {
            self.ready_cv.notify_all();
        } else if added == 1 {
            self.ready_cv.notify_one();
        }
    }

    /// Blocking pop with deadline; moves the delivery to the unacked set.
    pub(crate) fn pop(&self, timeout: Duration) -> Option<Delivery> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(delivery) = inner.ready.pop_front() {
                inner.unacked.insert(delivery.tag, delivery.clone());
                return Some(delivery);
            }
            if inner.state == QueueState::Decommissioned {
                return None;
            }
            if self.ready_cv.wait_until(&mut inner, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Blocking batch pop: parks on the condvar until at least one delivery
    /// is ready, then drains up to `max` in FIFO order under the single lock
    /// acquisition. Returns empty on timeout, decommission, or a
    /// [`Queue::wake_all`] issued after the wait began (shutdown).
    pub(crate) fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<Delivery> {
        if max == 0 {
            return Vec::new();
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        let epoch = inner.wake_epoch;
        loop {
            if !inner.ready.is_empty() {
                let n = inner.ready.len().min(max);
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    let delivery = inner.ready.pop_front().expect("len checked");
                    inner.unacked.insert(delivery.tag, delivery.clone());
                    out.push(delivery);
                }
                return out;
            }
            if inner.state == QueueState::Decommissioned || inner.wake_epoch != epoch {
                return Vec::new();
            }
            if self.ready_cv.wait_until(&mut inner, deadline).timed_out() {
                return Vec::new();
            }
        }
    }

    /// Wakes every parked consumer; batch pops in progress return empty.
    /// Used by subscriber shutdown so workers notice the stop flag without
    /// waiting out their park timeout.
    pub(crate) fn wake_all(&self) {
        let mut inner = self.inner.lock();
        inner.wake_epoch += 1;
        drop(inner);
        self.ready_cv.notify_all();
    }

    pub(crate) fn ack(&self, tag: u64) -> bool {
        let mut inner = self.inner.lock();
        let hit = inner.unacked.remove(&tag).is_some();
        if hit {
            inner.acked += 1;
            if let Some(binding) = &self.wal {
                binding.append_best_effort(&WalRecord::Ack {
                    queue: binding.queue.clone(),
                    tags: vec![tag],
                });
            }
        } else {
            inner.spurious_acks += 1;
        }
        hit
    }

    /// Acks a batch of tags under one lock acquisition. Returns how many
    /// were live (spurious acks are counted, exactly as [`Queue::ack`]).
    pub(crate) fn ack_batch(&self, tags: &[u64]) -> u64 {
        let mut inner = self.inner.lock();
        let mut hits = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for tag in tags {
            if inner.unacked.remove(tag).is_some() {
                inner.acked += 1;
                hits += 1;
                if self.wal.is_some() {
                    live.push(*tag);
                }
            } else {
                inner.spurious_acks += 1;
            }
        }
        if let (Some(binding), false) = (&self.wal, live.is_empty()) {
            binding.append_best_effort(&WalRecord::Ack {
                queue: binding.queue.clone(),
                tags: live,
            });
        }
        hits
    }

    /// Returns the delivery to the front of the queue, marked redelivered.
    pub(crate) fn nack(&self, tag: u64) -> bool {
        let mut inner = self.inner.lock();
        if let Some(mut delivery) = inner.unacked.remove(&tag) {
            delivery.redelivered = true;
            inner.redelivered += 1;
            inner.ready.push_front(delivery);
            drop(inner);
            self.ready_cv.notify_one();
            true
        } else {
            inner.spurious_nacks += 1;
            false
        }
    }

    /// Moves an unacked delivery to the dead-letter store. The message
    /// leaves the delivery path but stays inspectable; the caller is
    /// expected to account for it (it is consumed, like an ack).
    pub(crate) fn dead_letter(&self, tag: u64) -> bool {
        let mut inner = self.inner.lock();
        if let Some(delivery) = inner.unacked.remove(&tag) {
            inner.dead.push(delivery);
            inner.dead_lettered += 1;
            if let Some(binding) = &self.wal {
                binding.append_best_effort(&WalRecord::DeadLetter {
                    queue: binding.queue.clone(),
                    tag,
                });
            }
            true
        } else {
            false
        }
    }

    /// Snapshot of the dead-letter store.
    pub(crate) fn dead_letters(&self) -> Vec<Delivery> {
        self.inner.lock().dead.clone()
    }

    /// Requeues all unacked deliveries (broker restart semantics).
    pub(crate) fn recover(&self) {
        let mut inner = self.inner.lock();
        let mut unacked: Vec<Delivery> = inner.unacked.drain().map(|(_, d)| d).collect();
        unacked.sort_by_key(|d| d.tag);
        inner.redelivered += unacked.len() as u64;
        for mut d in unacked.into_iter().rev() {
            d.redelivered = true;
            inner.ready.push_front(d);
        }
        drop(inner);
        self.ready_cv.notify_all();
    }

    /// Resets a decommissioned queue to empty active state (the subscriber
    /// rejoining after a partial bootstrap). The dead-letter store survives:
    /// it is an audit log, not backlog. Idempotent: an already-active queue
    /// is left untouched (its backlog is live traffic, not stale state) and
    /// `false` is returned. Armed `drop_next` faults belong to the
    /// decommissioned incarnation and are disarmed, so a reinstated queue
    /// cannot silently eat its first live messages.
    pub(crate) fn reinstate(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.state != QueueState::Decommissioned {
            return false;
        }
        inner.discarded += (inner.ready.len() + inner.unacked.len()) as u64;
        inner.ready.clear();
        inner.unacked.clear();
        inner.drop_next = 0;
        inner.reinstated += 1;
        inner.state = QueueState::Active;
        if let Some(binding) = &self.wal {
            binding.append_best_effort(&WalRecord::QueueReinstated {
                queue: binding.queue.clone(),
            });
        }
        true
    }

    /// Force-decommissions the queue, discarding its backlog, as if it had
    /// exceeded its cap (failure injection / operator action).
    pub(crate) fn force_decommission(&self) {
        let mut inner = self.inner.lock();
        inner.discarded += (inner.ready.len() + inner.unacked.len()) as u64;
        inner.ready.clear();
        inner.unacked.clear();
        inner.state = QueueState::Decommissioned;
        if let Some(binding) = &self.wal {
            binding.append_best_effort(&WalRecord::QueueKilled {
                queue: binding.queue.clone(),
            });
        }
        drop(inner);
        self.ready_cv.notify_all();
    }

    /// Appends this queue's checkpoint record to the WAL. Built *and*
    /// appended under the queue lock, so no enqueue/ack can slip between
    /// the captured state and its log position — replay may safely treat
    /// the checkpoint as a full replacement of everything before it.
    /// No-op for non-durable queues.
    pub(crate) fn append_checkpoint(&self) -> std::io::Result<()> {
        let Some(binding) = &self.wal else {
            return Ok(());
        };
        let inner = self.inner.lock();
        let mut pending: Vec<(u64, String, String, u64, bool)> = inner
            .ready
            .iter()
            .map(|d| {
                (
                    d.tag,
                    d.exchange.as_str().to_owned(),
                    d.payload.as_str().to_owned(),
                    d.origin_nanos,
                    d.redelivered,
                )
            })
            // Unacked deliveries have been seen once: a post-crash replay
            // of the checkpoint must hand them out flagged redelivered.
            .chain(inner.unacked.values().map(|d| {
                (
                    d.tag,
                    d.exchange.as_str().to_owned(),
                    d.payload.as_str().to_owned(),
                    d.origin_nanos,
                    true,
                )
            }))
            .collect();
        pending.sort_unstable_by_key(|(tag, ..)| *tag);
        let dead = inner
            .dead
            .iter()
            .map(|d| {
                (
                    d.tag,
                    d.exchange.as_str().to_owned(),
                    d.payload.as_str().to_owned(),
                    d.origin_nanos,
                )
            })
            .collect();
        let record = WalRecord::Checkpoint {
            queue: binding.queue.clone(),
            decommissioned: inner.state == QueueState::Decommissioned,
            next_tag: inner.next_tag,
            pending,
            dead,
        };
        binding.wal.append(&record).map(|_| ())
    }
}
