//! Checkpoint compaction racing a live group-commit load.
//!
//! The deadlock hazard: `Queue::append_checkpoint` holds *all* partition
//! locks while it writes the checkpoint frame, and that write goes through
//! the same WAL commit machinery as the publish hot path. If a checkpoint
//! writer could ever end up waiting on a group-commit epoch whose leader
//! needs a partition lock, the broker would stall forever. The protocol's
//! freedom argument (see `append_checkpoint` and DESIGN.md): a leader
//! takes only the WAL staging and IO locks, never a partition lock, and
//! finishes each epoch in bounded time — so a checkpoint's commit always
//! drains. This test is the regression: checkpoints loop concurrently
//! with keyed batch publishes and acking consumers, and the run must both
//! terminate and recover to exactly published-minus-acked.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use synapse_broker::{Broker, FsyncPolicy, QueueConfig, SharedStr, WalConfig};

const PARTS: usize = 8;
const PUBLISHERS: usize = 4;
const BATCHES_PER_PUBLISHER: usize = 30;
const BATCH: usize = 8;

fn temp_dir() -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "synapse-checkpoint-load-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn checkpoint_compaction_survives_concurrent_group_commits() {
    let dir = temp_dir();
    let cfg = || {
        WalConfig::new(&dir)
            .segment_max_bytes(8192)
            .fsync(FsyncPolicy::Interval(8))
    };
    let (broker, _) = Broker::open_durable(cfg()).expect("fresh open");
    let broker = Arc::new(broker);
    broker.declare_queue(
        "q",
        QueueConfig {
            max_len: None,
            partitions: PARTS,
        },
    );
    broker.bind("x", "q");

    let done = Arc::new(AtomicBool::new(false));
    let acked: Arc<Mutex<BTreeSet<String>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let mut published: BTreeSet<String> = BTreeSet::new();

    // Two consumers ack whatever they can pop while the storm runs, so
    // Ack records (the relaxed lane) interleave with staged batches and
    // checkpoint frames in the same commit stream.
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let broker = broker.clone();
            let done = done.clone();
            let acked = acked.clone();
            std::thread::spawn(move || {
                let consumer = broker.consumer("q").expect("queue declared");
                loop {
                    let batch = consumer.pop_batch(4, Duration::from_millis(1));
                    if batch.is_empty() {
                        if done.load(Ordering::Acquire) {
                            return;
                        }
                        continue;
                    }
                    let mut acked = acked.lock().unwrap();
                    for d in batch {
                        assert!(consumer.ack(d.tag), "ack of a live delivery");
                        acked.insert(d.payload.as_str().to_owned());
                    }
                }
            })
        })
        .collect();

    // The checkpoint thread compacts as fast as it can: every iteration
    // rolls the segment, rewrites live state under all partition locks,
    // and GCs history — squarely against in-flight group commits.
    let checkpoints = {
        let broker = broker.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut runs = 0u64;
            while !done.load(Ordering::Acquire) {
                broker.checkpoint().expect("checkpoint under load");
                runs += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            runs
        })
    };

    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|t| {
            let broker = broker.clone();
            std::thread::spawn(move || {
                for b in 0..BATCHES_PER_PUBLISHER {
                    let batch: Vec<(SharedStr, u64, u64)> = (0..BATCH)
                        .map(|i| {
                            let key = 1 + ((t * 31 + b * 7 + i) as u64 % 200);
                            (SharedStr::from(format!("t{t}-b{b}-i{i}")), 0, key)
                        })
                        .collect();
                    broker
                        .publish_batch_routed("x", batch)
                        .expect("publish under checkpoint load");
                }
            })
        })
        .collect();

    for t in 0..PUBLISHERS {
        for b in 0..BATCHES_PER_PUBLISHER {
            for i in 0..BATCH {
                published.insert(format!("t{t}-b{b}-i{i}"));
            }
        }
    }
    for p in publishers {
        p.join().expect("publisher thread");
    }
    done.store(true, Ordering::Release);
    for c in consumers {
        c.join().expect("consumer thread");
    }
    let checkpoint_runs = checkpoints.join().expect("checkpoint thread");
    assert!(checkpoint_runs >= 1, "the compactor actually ran");

    let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();
    let stats = broker.wal_stats().expect("durable broker");
    assert!(
        stats.group_commits >= 1,
        "the load ran through group commit"
    );
    drop(broker);

    // Recovery is the arbiter: exactly published-minus-acked survives.
    let (broker, _) = Broker::open_durable(cfg()).expect("reopen");
    broker.declare_queue(
        "q",
        QueueConfig {
            max_len: None,
            partitions: PARTS,
        },
    );
    let consumer = broker.consumer("q").expect("queue declared");
    let mut survivors = BTreeSet::new();
    while let Some(d) = consumer.pop(Duration::ZERO) {
        assert!(
            survivors.insert(d.payload.as_str().to_owned()),
            "payload {:?} recovered twice",
            d.payload.as_str()
        );
    }
    let expected: BTreeSet<String> = published.difference(&acked).cloned().collect();
    assert_eq!(
        survivors, expected,
        "recovered backlog must be exactly published minus acked"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
