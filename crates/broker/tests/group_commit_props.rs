//! Property test for the group-commit WAL: equivalence with per-record
//! appends.
//!
//! The group-commit protocol changes *how* frames reach the disk (staged
//! batches, one fsync per leader round, multi-frame writes that never
//! split across a segment roll) but must never change *what* the log
//! means. The property: for any single-threaded operation sequence, a
//! broker logging through group commit and a broker logging through the
//! legacy per-record path recover to identical queue states — same
//! partition depths, same per-partition payload order, same dead-letter
//! store. Segment boundaries are allowed to differ (a staged batch rolls
//! once, its per-record twin may roll mid-batch); the replayed state is
//! not.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;
use synapse_broker::{Broker, FsyncPolicy, QueueConfig, SharedStr, WalConfig};

const PARTS: usize = 4;

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "synapse-gc-props-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One step of the driven sequence. Keys stay below 256 so the tag hint
/// *is* the key and partition membership is a pure function of the op
/// stream.
#[derive(Debug, Clone)]
enum Op {
    /// `publish_routed` with this routing key.
    Publish { key: u64 },
    /// `publish_batch_routed`: one staged multi-frame append on the
    /// group-commit side, N separate appends on the legacy side.
    PublishBatch { keys: Vec<u64> },
    /// Pop up to `n` from partition `part`, ack them all.
    PopAck { part: usize, n: usize },
    /// Pop up to `n` from partition `part`, dead-letter them all.
    PopDead { part: usize, n: usize },
    /// Checkpoint compaction (rolls the segment, GCs history).
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest's `prop_oneof!` is uniform; repeating the
    // publish arms biases the mix toward traffic over drains.
    prop_oneof![
        (1u64..200).prop_map(|key| Op::Publish { key }),
        (1u64..200).prop_map(|key| Op::Publish { key }),
        prop::collection::vec(1u64..200, 1..6).prop_map(|keys| Op::PublishBatch { keys }),
        prop::collection::vec(1u64..200, 1..6).prop_map(|keys| Op::PublishBatch { keys }),
        (0usize..PARTS, 1usize..5).prop_map(|(part, n)| Op::PopAck { part, n }),
        (0usize..PARTS, 1usize..4).prop_map(|(part, n)| Op::PopDead { part, n }),
        Just(Op::Checkpoint),
    ]
}

/// Drives `ops` against a fresh durable broker, drops it (flushing any
/// staged tail), reopens, and returns the observable queue state:
/// partition depths, per-partition drained payloads in pop order, and the
/// dead-letter payload set.
fn drive_and_recover(
    dir: &std::path::Path,
    group_commit: bool,
    ops: &[Op],
) -> (Vec<usize>, Vec<Vec<String>>, Vec<String>) {
    let cfg = || {
        WalConfig::new(dir)
            .segment_max_bytes(2048)
            .fsync(FsyncPolicy::Interval(4))
            .group_commit(group_commit)
    };
    let qcfg = QueueConfig {
        max_len: None,
        partitions: PARTS,
    };
    let (broker, _) = Broker::open_durable(cfg()).expect("fresh open");
    broker.declare_queue("q", qcfg.clone());
    broker.bind("x", "q");
    let consumer = broker.consumer("q").expect("queue declared");

    let mut seq = 0u64;
    for op in ops {
        match op {
            Op::Publish { key } => {
                let p = format!("m{seq}-k{key}");
                seq += 1;
                broker.publish_routed("x", p, 0, *key).expect("publish");
            }
            Op::PublishBatch { keys } => {
                let batch: Vec<(SharedStr, u64, u64)> = keys
                    .iter()
                    .map(|key| {
                        let p = format!("m{seq}-k{key}");
                        seq += 1;
                        (SharedStr::from(p), 0, *key)
                    })
                    .collect();
                broker
                    .publish_batch_routed("x", batch)
                    .expect("batch publish");
            }
            Op::PopAck { part, n } => {
                for d in consumer.pop_batch_from(*part, *n, Duration::ZERO) {
                    assert!(consumer.ack(d.tag), "ack of a live delivery");
                }
            }
            Op::PopDead { part, n } => {
                for d in consumer.pop_batch_from(*part, *n, Duration::ZERO) {
                    assert!(
                        consumer.dead_letter(d.tag),
                        "dead-letter of a live delivery"
                    );
                }
            }
            Op::Checkpoint => {
                broker.checkpoint().expect("checkpoint");
            }
        }
    }
    drop(consumer);
    drop(broker);

    let (broker, report) = Broker::open_durable(cfg()).expect("reopen");
    assert_eq!(
        report.torn_entries_dropped, 0,
        "clean close leaves no torn tail"
    );
    broker.declare_queue("q", qcfg);
    let consumer = broker.consumer("q").expect("queue declared");
    let depths = broker.partition_depths("q").expect("partitioned queue");
    let mut drained: Vec<Vec<String>> = vec![Vec::new(); PARTS];
    for (part, out) in drained.iter_mut().enumerate() {
        loop {
            let batch = consumer.pop_batch_from(part, 16, Duration::ZERO);
            if batch.is_empty() {
                break;
            }
            out.extend(batch.iter().map(|d| d.payload.as_str().to_owned()));
        }
    }
    let mut dead: Vec<String> = broker
        .dead_letters("q")
        .unwrap_or_default()
        .iter()
        .map(|d| d.payload.as_str().to_owned())
        .collect();
    dead.sort();
    let _ = std::fs::remove_dir_all(dir);
    (depths, drained, dead)
}

proptest! {
    // The vendored runner's default 64 cases, each a sequence of up to 40
    // ops, sweep publishes, staged batches, acks, dead letters, and
    // checkpoints through both log shapes.
    #[test]
    fn group_commit_replays_like_per_record_appends(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        let grouped = drive_and_recover(&temp_dir("grouped"), true, &ops);
        let legacy = drive_and_recover(&temp_dir("legacy"), false, &ops);
        prop_assert_eq!(
            &grouped.0, &legacy.0,
            "partition depths diverge between group-commit and per-record logs"
        );
        prop_assert_eq!(
            &grouped.1, &legacy.1,
            "per-partition replay order diverges"
        );
        prop_assert_eq!(
            &grouped.2, &legacy.2,
            "dead-letter stores diverge"
        );
    }
}
