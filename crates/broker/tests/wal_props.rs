//! Property tests for the broker WAL: codec round-trips and the torn-tail
//! invariant.
//!
//! The unit tests in `wal.rs` pin specific corruption shapes; these
//! properties sweep the input space. The load-bearing claims:
//!
//! 1. `WalRecord` encode → decode is the identity, and no strict prefix of
//!    an encoding decodes to anything (so a torn frame can never be
//!    mistaken for a shorter valid record).
//! 2. Truncating the log file at *any* byte offset never panics on
//!    reopen, and replay yields exactly a prefix of what was appended —
//!    which is the mechanism behind "acked messages never resurrect as
//!    unacked and unacked never flip to acked": a prefix of the record
//!    stream can lose suffix acks (redelivery, at-least-once) but can
//!    never invent one.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use synapse_broker::{FsyncPolicy, Wal, WalConfig, WalRecord};

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "synapse-wal-props-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    let queue = "[a-z]{1,8}";
    let text = "[ -~]{0,24}";
    prop_oneof![
        (queue, any::<u64>(), text, text, any::<u64>()).prop_map(
            |(queue, tag, exchange, payload, origin_nanos)| WalRecord::Enqueue {
                queue,
                tag,
                exchange,
                payload,
                origin_nanos,
            }
        ),
        (queue, prop::collection::vec(any::<u64>(), 0..8))
            .prop_map(|(queue, tags)| WalRecord::Ack { queue, tags }),
        (queue, any::<u64>()).prop_map(|(queue, tag)| WalRecord::DeadLetter { queue, tag }),
        queue.prop_map(|queue| WalRecord::QueueKilled { queue }),
        queue.prop_map(|queue| WalRecord::QueueReinstated { queue }),
        (
            queue,
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(queue, tag, session, chunk, high)| WalRecord::Watermark {
                queue,
                tag,
                session,
                chunk,
                high,
            }),
        (
            queue,
            any::<bool>(),
            any::<u64>(),
            prop::collection::vec(
                (any::<u64>(), text, text, any::<u64>(), any::<bool>()),
                0..5
            ),
            prop::collection::vec((any::<u64>(), text, text, any::<u64>()), 0..5),
        )
            .prop_map(|(queue, decommissioned, next_tag, pending, dead)| {
                WalRecord::Checkpoint {
                    queue,
                    decommissioned,
                    next_tag,
                    pending,
                    dead,
                }
            }),
    ]
}

/// Acked tags per queue observed in a record stream — the fold the torn
/// properties compare across truncation.
fn acked_tags(records: &[WalRecord]) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for r in records {
        if let WalRecord::Ack { queue, tags } = r {
            for t in tags {
                out.push((queue.clone(), *t));
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn encode_decode_round_trips(record in record_strategy()) {
        let encoded = record.encode();
        prop_assert_eq!(WalRecord::decode(&encoded), Some(record));
    }

    #[test]
    fn no_strict_prefix_decodes(record in record_strategy(), cut_ppm in 0u64..1_000_000) {
        let encoded = record.encode();
        // Sample one strict prefix per case; the sweep across cases
        // covers the space without O(len) decodes every run.
        let cut = (encoded.len() as u64 * cut_ppm / 1_000_000) as usize;
        prop_assert!(cut < encoded.len());
        prop_assert_eq!(WalRecord::decode(&encoded[..cut]), None);
    }

    #[test]
    fn flipping_any_byte_never_round_trips_silently(
        record in record_strategy(),
        pos_ppm in 0u64..1_000_000,
        flip in 1u8..=255,
    ) {
        let encoded = record.encode();
        let pos = (encoded.len() as u64 * pos_ppm / 1_000_000) as usize;
        let mut corrupt = encoded.clone();
        corrupt[pos.min(encoded.len() - 1)] ^= flip;
        // Decode may fail (usual) or succeed on a different record (the
        // CRC layer above catches that) — it must never return the
        // original from corrupted bytes.
        if let Some(decoded) = WalRecord::decode(&corrupt) {
            prop_assert!(decoded != WalRecord::decode(&encoded).unwrap());
        }
    }
}

proptest! {
    #[test]
    fn arbitrary_truncation_replays_a_prefix(
        records in prop::collection::vec(record_strategy(), 1..16),
        cut_ppm in 0u64..=1_000_000,
    ) {
        let dir = temp_dir("torn");
        // Large enough that these tiny record streams never roll; small
        // enough that preallocating the segment stays cheap per case.
        let cfg = WalConfig::new(&dir)
            .segment_max_bytes(64 << 10)
            .fsync(FsyncPolicy::Off);
        let end;
        {
            let (wal, replayed, _) = Wal::open(cfg.clone()).expect("fresh open");
            prop_assert!(replayed.is_empty());
            for r in &records {
                wal.append(r).expect("append");
            }
            wal.sync().expect("sync");
            end = wal.position().offset;
        }
        // Tear the (single) segment at an arbitrary byte of its *valid*
        // extent — including inside the header and at offset 0. (The
        // file itself is longer: segments are preallocated to capacity,
        // so the byte past `end` is already the zero tail replay treats
        // as the clean end of the log.)
        let path = dir.join("segment-00000000.wal");
        let cut = end * cut_ppm / 1_000_000;
        let file = std::fs::OpenOptions::new().write(true).open(&path).expect("open");
        file.set_len(cut).expect("truncate");
        drop(file);

        let (_wal, replayed, summary) = Wal::open(cfg).expect("reopen never fails");
        // Replay is exactly a prefix of what was appended.
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()]);
        prop_assert_eq!(summary.entries_replayed, replayed.len() as u64);
        // The ack fold of a prefix is a subset of the original ack fold:
        // truncation can forget acks (at-least-once redelivery) but can
        // never mint one for a tag that was not acked pre-crash.
        let original = acked_tags(&records);
        for pair in acked_tags(&replayed) {
            prop_assert!(original.contains(&pair));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_log_stays_appendable(
        records in prop::collection::vec(record_strategy(), 1..8),
        cut_ppm in 0u64..=1_000_000,
    ) {
        let dir = temp_dir("appendable");
        let cfg = WalConfig::new(&dir)
            .segment_max_bytes(64 << 10)
            .fsync(FsyncPolicy::EveryWrite);
        let end;
        {
            let (wal, _, _) = Wal::open(cfg.clone()).expect("fresh open");
            for r in &records {
                wal.append(r).expect("append");
            }
            end = wal.position().offset;
        }
        let path = dir.join("segment-00000000.wal");
        let cut = end * cut_ppm / 1_000_000;
        let file = std::fs::OpenOptions::new().write(true).open(&path).expect("open");
        file.set_len(cut).expect("truncate");
        drop(file);

        // A recovered log accepts new appends, and a third open replays
        // prefix + the new record in order.
        let (wal, replayed, _) = Wal::open(cfg.clone()).expect("reopen");
        let marker = WalRecord::QueueKilled { queue: "marker".into() };
        wal.append(&marker).expect("append after recovery");
        drop(wal);
        let (_wal, again, _) = Wal::open(cfg).expect("third open");
        prop_assert_eq!(again.len(), replayed.len() + 1);
        prop_assert_eq!(&again[..replayed.len()], &replayed[..]);
        prop_assert_eq!(&again[replayed.len()], &marker);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
