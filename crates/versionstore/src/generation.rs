//! The reliably-stored generation number.
//!
//! When a *publisher's* version store dies, its counters are gone and
//! message dependency values can no longer be compared across the loss. The
//! paper's recovery (§4.4): a generation number held in a reliable
//! coordination service (Chubby / ZooKeeper) is incremented and embedded in
//! every subsequent message; subscribers drain the old generation, flush
//! their version stores, and resume. This type is that coordination
//! service's stand-in: unlike [`crate::VersionStore`], it never loses state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A durable, shared, monotonically increasing generation counter.
///
/// # Examples
///
/// ```
/// use synapse_versionstore::GenerationStore;
///
/// let gens = GenerationStore::new();
/// assert_eq!(gens.current(), 1);
/// assert_eq!(gens.increment(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GenerationStore {
    current: Arc<AtomicU64>,
}

impl GenerationStore {
    /// Creates a store at generation 1 (the value in Fig. 6(b)).
    pub fn new() -> Self {
        GenerationStore {
            current: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Reads the current generation.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }

    /// Increments and returns the new generation.
    pub fn increment(&self) -> u64 {
        self.current.fetch_add(1, Ordering::SeqCst) + 1
    }
}

impl Default for GenerationStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_one_and_increments() {
        let g = GenerationStore::new();
        assert_eq!(g.current(), 1);
        assert_eq!(g.increment(), 2);
        assert_eq!(g.current(), 2);
    }

    #[test]
    fn clones_share_state() {
        let g = GenerationStore::new();
        let g2 = g.clone();
        g.increment();
        assert_eq!(g2.current(), 2);
    }
}
