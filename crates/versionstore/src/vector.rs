//! Per-writer version vectors — the multi-writer generalization of the
//! store's scalar per-object version.
//!
//! A [`VersionVector`] maps a *writer id* (the stable hash of the writing
//! application's name) to that writer's per-object counter. Scalar
//! versions from the single-writer era live on as component
//! [`LEGACY_WRITER`] (id 0): a legacy component acts as a *floor* under
//! every real writer's component when two vectors are compared, because in
//! the single-writer world each object key had exactly one (unrecorded)
//! writer — so the unattributed count *is* that writer's count, whichever
//! writer later claims the key.
//!
//! Comparison yields a [`Dominance`]: `Dominates`/`Dominated` when one
//! side's history contains the other's, `Equal` for identical vectors, and
//! `Concurrent` when each side has seen writes the other has not — the
//! case the conflict-resolution plane exists for.
//!
//! The representation is a small-vec: up to [`INLINE_COMPONENTS`]
//! `(writer, counter)` pairs inline (the 1–2 writer common case allocates
//! nothing), spilling to a heap vector beyond that. Components are kept
//! sorted by writer id so joins and comparisons are linear merges and the
//! wire encoding is deterministic.

/// Writer id reserved for unattributed (pre-vector, scalar-era) versions.
pub const LEGACY_WRITER: u64 = 0;

/// Components stored inline before spilling to the heap.
pub const INLINE_COMPONENTS: usize = 2;

/// Outcome of comparing two version vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// Identical histories.
    Equal,
    /// `self` has seen everything `other` has, and more.
    Dominates,
    /// `other` has seen everything `self` has, and more.
    Dominated,
    /// Each side has seen writes the other has not.
    Concurrent,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    Inline {
        len: u8,
        slots: [(u64, u64); INLINE_COMPONENTS],
    },
    Spilled(Vec<(u64, u64)>),
}

/// A compact per-writer version vector. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionVector {
    repr: Repr,
}

impl Default for VersionVector {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionVector {
    /// The empty vector (no writer has a recorded component).
    pub fn new() -> Self {
        VersionVector {
            repr: Repr::Inline {
                len: 0,
                slots: [(0, 0); INLINE_COMPONENTS],
            },
        }
    }

    /// A vector with a single `(writer, counter)` component.
    pub fn component(writer: u64, counter: u64) -> Self {
        let mut v = Self::new();
        v.set(writer, counter);
        v
    }

    /// A legacy scalar version as a vector (component [`LEGACY_WRITER`]).
    pub fn scalar(version: u64) -> Self {
        Self::component(LEGACY_WRITER, version)
    }

    /// Builds a vector from `(writer, counter)` pairs in any order;
    /// duplicate writers keep their max.
    pub fn from_components(components: &[(u64, u64)]) -> Self {
        let mut v = Self::new();
        for (writer, counter) in components {
            if *counter > v.get(*writer) {
                v.set(*writer, *counter);
            }
        }
        v
    }

    /// The sorted `(writer, counter)` component slice.
    pub fn components(&self) -> &[(u64, u64)] {
        match &self.repr {
            Repr::Inline { len, slots } => &slots[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components().len()
    }

    /// Whether no component is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The counter recorded for `writer` (0 when absent).
    pub fn get(&self, writer: u64) -> u64 {
        let comps = self.components();
        match comps.binary_search_by_key(&writer, |(w, _)| *w) {
            Ok(i) => comps[i].1,
            Err(_) => 0,
        }
    }

    /// The largest counter across all components (0 when empty). This is
    /// the scalar a legacy reader sees — watermark keys and pub-store
    /// version marks only ever carry the legacy component, so for them it
    /// reads back exactly the scalar that was stored.
    pub fn max_counter(&self) -> u64 {
        self.components().iter().map(|(_, c)| *c).max().unwrap_or(0)
    }

    /// Sum of all counters — the total-history length the LWW stamp
    /// orders by.
    pub fn sum(&self) -> u64 {
        self.components()
            .iter()
            .fold(0u64, |acc, (_, c)| acc.saturating_add(*c))
    }

    /// Sets `writer`'s component to `counter` (inserting it if absent,
    /// removing it when `counter` is 0).
    pub fn set(&mut self, writer: u64, counter: u64) {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                let n = *len as usize;
                match slots[..n].binary_search_by_key(&writer, |(w, _)| *w) {
                    Ok(i) => {
                        if counter == 0 {
                            slots.copy_within(i + 1..n, i);
                            *len -= 1;
                        } else {
                            slots[i].1 = counter;
                        }
                    }
                    Err(i) => {
                        if counter == 0 {
                            return;
                        }
                        if n < INLINE_COMPONENTS {
                            slots.copy_within(i..n, i + 1);
                            slots[i] = (writer, counter);
                            *len += 1;
                        } else {
                            let mut spilled = slots[..n].to_vec();
                            spilled.insert(i, (writer, counter));
                            self.repr = Repr::Spilled(spilled);
                        }
                    }
                }
            }
            Repr::Spilled(v) => match v.binary_search_by_key(&writer, |(w, _)| *w) {
                Ok(i) => {
                    if counter == 0 {
                        v.remove(i);
                    } else {
                        v[i].1 = counter;
                    }
                }
                Err(i) => {
                    if counter != 0 {
                        v.insert(i, (writer, counter));
                    }
                }
            },
        }
    }

    /// Component-wise max with `other` (the lattice join): afterwards
    /// `self` dominates-or-equals both inputs.
    pub fn join(&mut self, other: &VersionVector) {
        for (writer, counter) in other.components() {
            if *counter > self.get(*writer) {
                self.set(*writer, *counter);
            }
        }
    }

    /// Whether any component belongs to a real (non-legacy) writer.
    fn has_real_writers(&self) -> bool {
        self.components().iter().any(|(w, _)| *w != LEGACY_WRITER)
    }

    /// Compares the histories of `self` and `other`.
    ///
    /// The legacy component (writer 0) floors every real writer's
    /// component: stored scalar 5 vs incoming `{A: 3}` reads as `A`
    /// already at 5 — exactly the scalar comparison the single-writer era
    /// performed, since the unattributed count belonged to the key's one
    /// writer. When neither side has real writers the legacy components
    /// compare directly as scalars.
    pub fn compare(&self, other: &VersionVector) -> Dominance {
        let a0 = self.get(LEGACY_WRITER);
        let b0 = other.get(LEGACY_WRITER);
        if !self.has_real_writers() && !other.has_real_writers() {
            return match a0.cmp(&b0) {
                std::cmp::Ordering::Equal => Dominance::Equal,
                std::cmp::Ordering::Greater => Dominance::Dominates,
                std::cmp::Ordering::Less => Dominance::Dominated,
            };
        }
        let (mut ahead, mut behind) = (false, false);
        let a = self.components();
        let b = other.components();
        let (mut i, mut j) = (0, 0);
        loop {
            let wa = a.get(i).map(|(w, _)| *w);
            let wb = b.get(j).map(|(w, _)| *w);
            let writer = match (wa, wb) {
                (None, None) => break,
                (Some(w), None) => w,
                (None, Some(w)) => w,
                (Some(x), Some(y)) => x.min(y),
            };
            if Some(writer) == wa {
                i += 1;
            }
            if Some(writer) == wb {
                j += 1;
            }
            if writer == LEGACY_WRITER {
                continue;
            }
            let av = self.get(writer).max(a0);
            let bv = other.get(writer).max(b0);
            if av > bv {
                ahead = true;
            } else if bv > av {
                behind = true;
            }
            if ahead && behind {
                return Dominance::Concurrent;
            }
        }
        match (ahead, behind) {
            (false, false) => Dominance::Equal,
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::Dominated,
            (true, true) => Dominance::Concurrent,
        }
    }

    /// The LWW stamp `(total history length, tie-break writer)` of a
    /// version whose vector is `self` and whose writer is `writer` —
    /// compared lexicographically, so longer histories win and the higher
    /// writer id breaks exact ties. Distinct versions never share a stamp:
    /// one writer's successive versions of an object strictly grow its own
    /// component (so the sum), and equal sums from different writers
    /// differ in the writer.
    pub fn lww_stamp(&self, writer: u64) -> (u64, u64) {
        (self.sum(), writer)
    }
}

impl std::fmt::Display for VersionVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (w, c)) in self.components().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}:{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vector_compares_equal_to_itself() {
        let v = VersionVector::new();
        assert!(v.is_empty());
        assert_eq!(v.compare(&VersionVector::new()), Dominance::Equal);
        assert_eq!(v.max_counter(), 0);
        assert_eq!(v.sum(), 0);
    }

    #[test]
    fn scalar_vectors_compare_like_scalars() {
        let a = VersionVector::scalar(5);
        let b = VersionVector::scalar(3);
        assert_eq!(a.compare(&b), Dominance::Dominates);
        assert_eq!(b.compare(&a), Dominance::Dominated);
        assert_eq!(a.compare(&VersionVector::scalar(5)), Dominance::Equal);
        assert_eq!(a.compare(&VersionVector::new()), Dominance::Dominates);
    }

    #[test]
    fn set_keeps_components_sorted_and_spills_past_inline() {
        let mut v = VersionVector::new();
        v.set(30, 3);
        v.set(10, 1);
        v.set(20, 2);
        assert_eq!(v.components(), &[(10, 1), (20, 2), (30, 3)]);
        assert_eq!(v.get(20), 2);
        v.set(20, 0);
        assert_eq!(v.components(), &[(10, 1), (30, 3)]);
        v.set(10, 7);
        assert_eq!(v.get(10), 7);
    }

    #[test]
    fn inline_removal_compacts_without_spilling() {
        let mut v = VersionVector::new();
        v.set(1, 1);
        v.set(2, 2);
        v.set(1, 0);
        assert_eq!(v.components(), &[(2, 2)]);
        v.set(3, 0);
        assert_eq!(v.components(), &[(2, 2)]);
    }

    #[test]
    fn dominance_detects_concurrency() {
        let a = VersionVector::from_components(&[(1, 2), (2, 1)]);
        let b = VersionVector::from_components(&[(1, 1), (2, 3)]);
        assert_eq!(a.compare(&b), Dominance::Concurrent);
        assert_eq!(b.compare(&a), Dominance::Concurrent);

        let c = VersionVector::from_components(&[(1, 2), (2, 3)]);
        assert_eq!(c.compare(&a), Dominance::Dominates);
        assert_eq!(a.compare(&c), Dominance::Dominated);
        assert_eq!(c.compare(&c.clone()), Dominance::Equal);
    }

    #[test]
    fn one_sided_components_read_as_zero() {
        let a = VersionVector::component(1, 4);
        let b = VersionVector::component(2, 4);
        assert_eq!(a.compare(&b), Dominance::Concurrent);
        assert_eq!(
            a.compare(&VersionVector::component(1, 3)),
            Dominance::Dominates
        );
    }

    /// The upgrade path: a stored legacy scalar floors the incoming
    /// writer's component, reproducing the scalar-era comparison.
    #[test]
    fn legacy_component_floors_real_writers() {
        let stored = VersionVector::scalar(5);
        assert_eq!(
            stored.compare(&VersionVector::component(9, 3)),
            Dominance::Dominates,
            "legacy 5 vs writer at 3: incoming is stale"
        );
        assert_eq!(
            stored.compare(&VersionVector::component(9, 7)),
            Dominance::Dominated,
            "incoming writer moved past the legacy scalar"
        );
        assert_eq!(
            stored.compare(&VersionVector::component(9, 5)),
            Dominance::Equal,
            "exact tie readmits, as the scalar >= did"
        );
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VersionVector::from_components(&[(1, 2), (2, 1)]);
        let b = VersionVector::from_components(&[(1, 1), (2, 3), (3, 4)]);
        a.join(&b);
        assert_eq!(a.components(), &[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(a.compare(&b), Dominance::Dominates);
    }

    #[test]
    fn lww_stamps_order_by_sum_then_writer() {
        let a = VersionVector::from_components(&[(1, 2), (2, 1)]);
        let b = VersionVector::component(2, 3);
        assert_eq!(a.sum(), 3);
        assert_eq!(b.sum(), 3);
        assert!(b.lww_stamp(2) > a.lww_stamp(1), "equal sums: writer breaks");
        let c = VersionVector::component(1, 4);
        assert!(c.lww_stamp(1) > b.lww_stamp(2), "longer history wins");
    }

    #[test]
    fn display_renders_sorted_components() {
        let v = VersionVector::from_components(&[(2, 3), (1, 1)]);
        assert_eq!(v.to_string(), "{1:1, 2:3}");
    }
}
