//! The DBLog-style watermark gate: the subscriber-side reconciliation
//! window a bootstrap copier opens around each chunk select.
//!
//! Protocol (per chunk): the copier calls [`WatermarkGate::begin_chunk`],
//! the node injects a *low* watermark marker into every partition of the
//! subscriber's queue, selects the chunk, injects a *high* watermark, and
//! calls [`WatermarkGate::await_window`]. Subscriber workers report the
//! markers they consume ([`WatermarkGate::note_marker`]) and, while a
//! partition sits between its lo and hi marker, every dependency key they
//! apply ([`WatermarkGate::note_applied`]). When all partitions have seen
//! both markers, the window closes and [`WatermarkGate::take_touched`]
//! yields the keys the live stream touched *during* the select — chunk
//! rows for those keys are stale by construction and are dropped in favor
//! of the live stream; everything else merges through the queue with no
//! drain phase.
//!
//! The gate is an optimization, not a correctness gate: admission into the
//! replica is decided by [`crate::VersionStore::admit_copy`] against
//! explicitly-recorded versions, so a window that times out (slow worker,
//! injected fault) merely forgoes the pre-filter and lets the version
//! check discard the same rows one by one. `await_window` therefore
//! proceeds on timeout and reports it, rather than stalling the copier.

use crate::store::DepKey;
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

#[derive(Default)]
struct GateInner {
    /// Bootstrap session the current window belongs to; markers from
    /// other sessions (e.g. redelivered after a crash of a superseded
    /// attempt) are ignored.
    session: u64,
    chunk: u64,
    /// Whether a window is currently open at all.
    open: bool,
    lo_seen: Vec<bool>,
    hi_seen: Vec<bool>,
    /// Keys applied by live deliveries while their partition was inside
    /// the window.
    touched: HashSet<DepKey>,
    /// Windows that closed by timeout instead of marker arrival.
    timed_out: u64,
}

impl GateInner {
    fn window_complete(&self) -> bool {
        self.open && self.hi_seen.iter().all(|seen| *seen)
    }
}

/// Shared between the bootstrap copier (one per node) and the subscriber
/// workers. See the module docs for the protocol.
#[derive(Default)]
pub struct WatermarkGate {
    inner: Mutex<GateInner>,
    closed: Condvar,
    /// Fast-path flag the live apply path checks before taking the lock:
    /// `true` only while a bootstrap session is running. Workers on a
    /// steady-state node pay one relaxed load per batch and nothing else.
    active: AtomicBool,
}

impl WatermarkGate {
    /// Creates an inactive gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a bootstrap session as running: live appliers start checking
    /// in with [`WatermarkGate::note_applied`].
    pub fn activate(&self) {
        self.active.store(true, Ordering::Release);
    }

    /// Marks the session finished and discards any half-open window.
    pub fn deactivate(&self) {
        let mut inner = self.inner.lock();
        inner.open = false;
        inner.touched.clear();
        self.active.store(false, Ordering::Release);
        self.closed.notify_all();
    }

    /// Whether a bootstrap session is running (relaxed fast path for the
    /// live apply loop).
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Opens the reconciliation window for `(session, chunk)` across
    /// `partitions` queue partitions, replacing any previous window.
    pub fn begin_chunk(&self, session: u64, chunk: u64, partitions: usize) {
        let mut inner = self.inner.lock();
        inner.session = session;
        inner.chunk = chunk;
        inner.open = true;
        inner.lo_seen.clear();
        inner.lo_seen.resize(partitions, false);
        inner.hi_seen.clear();
        inner.hi_seen.resize(partitions, false);
        inner.touched.clear();
    }

    /// Records a consumed watermark marker. Markers for a stale session or
    /// chunk (crash redelivery of an abandoned window) are ignored — the
    /// payload is self-describing precisely so this check is possible.
    pub fn note_marker(&self, session: u64, chunk: u64, partition: usize, high: bool) {
        let mut inner = self.inner.lock();
        if !inner.open || inner.session != session || inner.chunk != chunk {
            return;
        }
        let slot = if high {
            inner.hi_seen.get_mut(partition)
        } else {
            inner.lo_seen.get_mut(partition)
        };
        if let Some(seen) = slot {
            *seen = true;
        }
        if inner.window_complete() {
            self.closed.notify_all();
        }
    }

    /// Records keys applied by a live delivery on `partition`. Only keys
    /// applied strictly inside the window (lo marker consumed, hi marker
    /// not yet) matter: anything before lo is older than the chunk select
    /// began, anything after hi is newer than rows already reconciled.
    pub fn note_applied(&self, partition: usize, keys: &[DepKey]) {
        if !self.is_active() {
            return;
        }
        let mut inner = self.inner.lock();
        if !inner.open {
            return;
        }
        let in_window = inner.lo_seen.get(partition).copied().unwrap_or(false)
            && !inner.hi_seen.get(partition).copied().unwrap_or(false);
        if in_window {
            inner.touched.extend(keys.iter().copied());
        }
    }

    /// Blocks until every partition has consumed the current window's high
    /// watermark, or `timeout` passes. Returns whether the window actually
    /// completed; `false` (timeout, or the gate was deactivated under the
    /// copier) is survivable — the caller skips the pre-filter and lets
    /// per-row version admission do the same work.
    pub fn await_window(&self, session: u64, chunk: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if !inner.open || inner.session != session || inner.chunk != chunk {
                return false;
            }
            if inner.window_complete() {
                return true;
            }
            if self.closed.wait_until(&mut inner, deadline).timed_out() {
                inner.timed_out += 1;
                return false;
            }
        }
    }

    /// Closes the current window and returns the keys live deliveries
    /// touched inside it.
    pub fn take_touched(&self) -> HashSet<DepKey> {
        let mut inner = self.inner.lock();
        inner.open = false;
        std::mem::take(&mut inner.touched)
    }

    /// Windows that closed by timeout instead of marker arrival since
    /// construction.
    pub fn windows_timed_out(&self) -> u64 {
        self.inner.lock().timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn window_closes_when_all_partitions_see_hi() {
        let gate = Arc::new(WatermarkGate::new());
        gate.activate();
        gate.begin_chunk(1, 0, 2);

        let waiter = {
            let gate = gate.clone();
            thread::spawn(move || gate.await_window(1, 0, Duration::from_secs(5)))
        };
        gate.note_marker(1, 0, 0, false);
        gate.note_marker(1, 0, 1, false);
        gate.note_marker(1, 0, 0, true);
        thread::sleep(Duration::from_millis(20));
        gate.note_marker(1, 0, 1, true);
        assert!(waiter.join().unwrap(), "window completes");
    }

    #[test]
    fn touched_keys_are_collected_only_inside_the_window() {
        let gate = WatermarkGate::new();
        gate.activate();
        gate.begin_chunk(7, 3, 1);

        gate.note_applied(0, &[1]); // before lo: ignored
        gate.note_marker(7, 3, 0, false);
        gate.note_applied(0, &[2, 3]); // inside: collected
        gate.note_marker(7, 3, 0, true);
        gate.note_applied(0, &[4]); // after hi: ignored

        assert!(gate.await_window(7, 3, Duration::from_millis(50)));
        let touched = gate.take_touched();
        assert_eq!(touched, HashSet::from([2, 3]));
    }

    #[test]
    fn stale_session_and_chunk_markers_are_ignored() {
        let gate = WatermarkGate::new();
        gate.activate();
        gate.begin_chunk(2, 5, 1);
        // Redelivered markers from an abandoned attempt must not close the
        // current window.
        gate.note_marker(1, 5, 0, true);
        gate.note_marker(2, 4, 0, true);
        assert!(!gate.await_window(2, 5, Duration::from_millis(20)));
        assert_eq!(gate.windows_timed_out(), 1);
    }

    #[test]
    fn deactivate_unblocks_waiters_and_stops_collection() {
        let gate = Arc::new(WatermarkGate::new());
        gate.activate();
        gate.begin_chunk(1, 0, 1);
        let waiter = {
            let gate = gate.clone();
            thread::spawn(move || gate.await_window(1, 0, Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        gate.deactivate();
        assert!(!waiter.join().unwrap(), "deactivation aborts the wait");
        gate.note_applied(0, &[9]);
        assert!(gate.take_touched().is_empty());
    }
}
