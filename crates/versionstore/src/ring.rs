//! Dynamo-style consistent hash ring for sharding the version store.

/// A consistent hash ring mapping 64-bit keys onto `n` shards via virtual
/// nodes (§4.2: "Synapse shards the version store using a hash ring similar
/// to Dynamo").
///
/// # Examples
///
/// ```
/// use synapse_versionstore::HashRing;
///
/// let ring = HashRing::new(4, 16);
/// let shard = ring.route(42);
/// assert!(shard < 4);
/// assert_eq!(shard, ring.route(42), "routing is deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted ring positions and the shard that owns each.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds a ring with `shards` shards and `vnodes` virtual nodes per
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one virtual node");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                points.push((mix(((shard as u64) << 32) ^ v as u64), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(pos, _)| *pos);
        HashRing { points, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Routes a key to its owning shard (first ring point clockwise).
    pub fn route(&self, key: u64) -> usize {
        let h = mix(key);
        let idx = self.points.partition_point(|(pos, _)| *pos < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_takes_everything() {
        let ring = HashRing::new(1, 8);
        for k in 0..100 {
            assert_eq!(ring.route(k), 0);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let ring = HashRing::new(8, 64);
        let mut counts = [0usize; 8];
        for k in 0..80_000u64 {
            counts[ring.route(k)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((5_000..15_000).contains(c), "shard {i} got {c} of 80k keys");
        }
    }

    #[test]
    fn routing_is_stable() {
        let a = HashRing::new(4, 16);
        let b = HashRing::new(4, 16);
        for k in 0..1000 {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = HashRing::new(0, 1);
    }
}
