//! Sharded in-memory dependency version store — the Redis of the paper.
//!
//! Synapse tracks, for every dependency (an object, hashed into a fixed
//! *effective dependency* space), two counters at the publisher — `ops`, the
//! number of operations that have referenced the object, and `version`, the
//! object's version — and a single `ops` counter at each subscriber (§4.2).
//! The original stores these in Redis, runs every multi-key update as an
//! atomic Lua script, and shards the store over a Dynamo-style hash ring.
//!
//! This crate reproduces that stack:
//!
//! * [`VersionStore`] — the sharded store; every public operation is atomic
//!   over all the keys it touches (shard locks are taken in index order so
//!   cross-shard scripts cannot deadlock, mirroring §4.2's "mechanisms to
//!   avoid deadlocks on subscribers");
//! * publisher script [`VersionStore::publish_bump`] and subscriber scripts
//!   [`VersionStore::wait_for`] / [`VersionStore::apply`];
//! * bulk operations for the three-step bootstrap (§4.4);
//! * [`VersionStore::kill`] failure injection, which loses all contents —
//!   the event that forces a generation bump at the publisher or a partial
//!   bootstrap at a subscriber;
//! * [`GenerationStore`] — the reliably-stored generation number (the
//!   paper's Chubby/ZooKeeper stand-in).

pub mod generation;
pub mod ring;
pub mod store;
pub mod vector;
pub mod watermark;

pub use generation::GenerationStore;
pub use ring::HashRing;
pub use store::{
    BumpScratch, DepKey, DepWaitSet, DumpEntry, StoreError, StoreTimingSnapshot, VectorAdmit,
    VersionStore, WaitOutcome,
};
pub use vector::{Dominance, VersionVector, INLINE_COMPONENTS, LEGACY_WRITER};
pub use watermark::WatermarkGate;
