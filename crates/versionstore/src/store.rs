//! The sharded version store and its atomic scripts.

use crate::ring::HashRing;
use crate::vector::{Dominance, VersionVector, LEGACY_WRITER};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An effective dependency key — a dependency name already hashed into the
/// fixed dependency space (§4.2: "Synapse hashes dependency names with a
/// stable hash function at the publisher ... all version stores consume
/// O(1) memory").
pub type DepKey = u64;

/// Approximate per-entry memory cost the paper cites ("each dependency
/// consumes around 100 bytes of memory").
const BYTES_PER_ENTRY: usize = 100;

/// Errors from version store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store was killed by failure injection and has not been revived.
    Dead,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Dead => write!(f, "version store is dead"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Outcome of a blocking dependency wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// All dependencies were satisfied.
    Ready,
    /// The deadline passed with at least one dependency unsatisfied —
    /// the situation behind the §6.5 production deadlock.
    TimedOut,
}

/// Outcome of a vector freshness check ([`VersionStore::advance_vector`]):
/// the dominance classification of an incoming write against the stored
/// per-object vector, with the store's LWW verdict attached when the two
/// are concurrent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorAdmit {
    /// The incoming write dominates (or equals) everything applied so far:
    /// apply it. Equal vectors re-apply, preserving the scalar-era
    /// redelivery semantics.
    Fresh,
    /// The stored vector dominates the incoming write: it is stale,
    /// discard it.
    Stale,
    /// Neither history contains the other — a genuine multi-writer
    /// conflict. `lww_wins` is the store's default verdict: whether the
    /// incoming version's LWW stamp (history length, then writer id)
    /// beats the stamp of the content currently stored. The resolver
    /// plane may honor it (LWW) or ignore it (merge callbacks).
    Concurrent {
        /// Whether the incoming version wins last-writer-wins.
        lww_wins: bool,
    },
}

/// Caller-owned scratch buffers for [`VersionStore::publish_bump_into`].
/// The publisher keeps one per thread so the bump script's route and
/// touched-shard working sets are allocated once, not per message.
#[derive(Debug, Default)]
pub struct BumpScratch {
    routes: Vec<usize>,
    touched: Vec<bool>,
}

/// A wait set prepared once per message by [`VersionStore::prepare_wait`]:
/// every `(key, required)` pair routed to its shard up front and grouped so
/// the blocking wait and the satisfied-fast-path take **one lock per
/// touched shard** instead of one per key — and re-checking after a wakeup
/// re-routes nothing.
#[derive(Debug, Default, Clone)]
pub struct DepWaitSet {
    /// `(shard, key, required)` sorted by shard (stable, so per-shard key
    /// order follows the message).
    entries: Vec<(u32, DepKey, u64)>,
}

impl DepWaitSet {
    /// Number of dependencies in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set holds no dependencies.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Store-side timing: how many apply scripts and blocking waits this store
/// ran, and the wall time they consumed. Plain relaxed atomics — cheap
/// enough to stay unconditionally live; the node surfaces them as
/// telemetry counters so store time is attributable without the store
/// depending on the telemetry crate.
#[derive(Debug, Default)]
struct StoreTiming {
    applies: AtomicU64,
    apply_nanos: AtomicU64,
    waits: AtomicU64,
    wait_nanos: AtomicU64,
}

/// Snapshot of [`VersionStore::timing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreTimingSnapshot {
    /// Completed apply scripts (one per message batch).
    pub applies: u64,
    /// Total wall time inside apply scripts.
    pub apply_nanos: u64,
    /// Completed blocking dependency waits.
    pub waits: u64,
    /// Total wall time inside blocking waits (parked time included).
    pub wait_nanos: u64,
}

/// Per-dependency counters. On the publisher `ops` and the (legacy
/// component of the) vector are used; on a subscriber `ops` plus the full
/// per-writer vector for the freshness/dominance check.
///
/// `versioned` records whether the vector was ever *explicitly* written
/// for this key (by a live apply's freshness mark or an admitted bootstrap
/// copy) — an entry created as a side effect of `ops` bookkeeping has an
/// empty vector without meaning "version 0 was observed". Bootstrap
/// reconciliation needs the distinction: a copy with marker 0 must be
/// admitted against a never-versioned key (a row created before any
/// subscriber existed) but discarded against a key whose version 0 was
/// recorded by an applied destroy (the deleted-row-resurrection bug).
///
/// `winner_sum`/`winner_writer` are the LWW stamp of the content the
/// replica currently holds for the key: the stamp of the last version that
/// won admission (fresh apply or concurrent LWW win). Stamps only ever
/// increase — a dominating version's history is strictly longer than what
/// it dominates — so "keep the max stamp" is order-independent and two
/// replicas that see the same writes converge on the same winner.
#[derive(Debug, Default, Clone)]
struct Entry {
    ops: u64,
    vector: VersionVector,
    winner_sum: u64,
    winner_writer: u64,
    versioned: bool,
}

impl Entry {
    /// Folds `stamp` into the winner stamp, returning whether it won.
    fn note_stamp(&mut self, stamp: (u64, u64)) -> bool {
        if stamp > (self.winner_sum, self.winner_writer) {
            self.winner_sum = stamp.0;
            self.winner_writer = stamp.1;
            true
        } else {
            false
        }
    }
}

/// One durable version-store entry — the on-disk form of [`Entry`]. Unlike
/// the bootstrap snapshot (`(key, ops)` pairs), a dump carries the full
/// per-writer vector, the explicit-write flag, and the LWW winner stamp,
/// so freshness marks, destroy tombstones, bootstrap watermarks, *and*
/// conflict-resolution state survive a crash-restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpEntry {
    /// The dependency key.
    pub key: DepKey,
    /// The dependency-counter value.
    pub ops: u64,
    /// Whether the vector was ever explicitly written (tombstones!).
    pub versioned: bool,
    /// LWW stamp of the currently-held content: total history length.
    pub winner_sum: u64,
    /// LWW stamp of the currently-held content: tie-break writer id.
    pub winner_writer: u64,
    /// Sorted `(writer, counter)` vector components.
    pub vector: Vec<(u64, u64)>,
}

impl DumpEntry {
    /// A scalar-era (pre-vector) entry: the legacy `(key, ops, version,
    /// versioned)` tuple, mapped onto the reserved legacy writer — the
    /// form old-format snapshots decode into.
    pub fn scalar(key: DepKey, ops: u64, version: u64, versioned: bool) -> Self {
        DumpEntry {
            key,
            ops,
            versioned,
            winner_sum: version,
            winner_writer: LEGACY_WRITER,
            vector: if version > 0 {
                vec![(LEGACY_WRITER, version)]
            } else {
                Vec::new()
            },
        }
    }
}

#[derive(Default)]
struct Shard {
    entries: Mutex<HashMap<DepKey, Entry>>,
    changed: Condvar,
    /// Per-shard kill switch (fault injection): a dead shard loses its
    /// contents and fails every operation routed to it.
    dead: AtomicBool,
}

/// The sharded dependency version store. See the crate docs.
///
/// Failure injection operates at shard granularity: [`VersionStore::kill_shard`]
/// kills one shard (operations touching other shards keep working), while
/// [`VersionStore::kill`] / [`VersionStore::revive`] retain the historical
/// whole-store semantics by fanning out over every shard.
pub struct VersionStore {
    shards: Vec<Arc<Shard>>,
    ring: HashRing,
    timing: StoreTiming,
}

impl VersionStore {
    /// Creates a store with `shards` shards (16 virtual nodes each).
    pub fn new(shards: usize) -> Self {
        let ring = HashRing::new(shards, 16);
        VersionStore {
            shards: (0..shards).map(|_| Arc::new(Shard::default())).collect(),
            ring,
            timing: StoreTiming::default(),
        }
    }

    /// Apply/wait call counts and wall time since construction.
    pub fn timing(&self) -> StoreTimingSnapshot {
        StoreTimingSnapshot {
            applies: self.timing.applies.load(Ordering::Relaxed),
            apply_nanos: self.timing.apply_nanos.load(Ordering::Relaxed),
            waits: self.timing.waits.load(Ordering::Relaxed),
            wait_nanos: self.timing.wait_nanos.load(Ordering::Relaxed),
        }
    }

    /// Convenience single-shard store.
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Whole-store operations fail while *any* shard is dead.
    fn check_alive(&self) -> Result<(), StoreError> {
        if self.is_dead() {
            Err(StoreError::Dead)
        } else {
            Ok(())
        }
    }

    /// Key-routed operations fail only when one of *their* shards is dead.
    fn check_shards_alive(&self, keys: &[DepKey]) -> Result<(), StoreError> {
        for key in keys {
            if self.shards[self.ring.route(*key)]
                .dead
                .load(Ordering::SeqCst)
            {
                return Err(StoreError::Dead);
            }
        }
        Ok(())
    }

    /// Kills one shard: its contents are lost and every operation routed to
    /// it fails until [`VersionStore::revive_shard`]. Out-of-range indexes
    /// are ignored.
    pub fn kill_shard(&self, index: usize) {
        if let Some(shard) = self.shards.get(index) {
            shard.dead.store(true, Ordering::SeqCst);
            shard.entries.lock().clear();
            // Wake all waiters so they observe death instead of hanging.
            shard.changed.notify_all();
        }
    }

    /// Revives a killed shard, empty. Out-of-range indexes are ignored.
    pub fn revive_shard(&self, index: usize) {
        if let Some(shard) = self.shards.get(index) {
            shard.dead.store(false, Ordering::SeqCst);
            shard.changed.notify_all();
        }
    }

    /// Whether one shard is currently dead.
    pub fn shard_is_dead(&self, index: usize) -> bool {
        self.shards
            .get(index)
            .map(|s| s.dead.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// Indexes of all currently-dead shards.
    pub fn dead_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|i| self.shards[*i].dead.load(Ordering::SeqCst))
            .collect()
    }

    /// Shard index a key routes to (for targeted fault injection).
    pub fn shard_for(&self, key: DepKey) -> usize {
        self.ring.route(key)
    }

    /// Kills the whole store (every shard): contents are lost and every
    /// operation fails until [`VersionStore::revive`].
    pub fn kill(&self) {
        for index in 0..self.shards.len() {
            self.kill_shard(index);
        }
    }

    /// Revives every killed shard, empty.
    pub fn revive(&self) {
        for index in 0..self.shards.len() {
            self.revive_shard(index);
        }
    }

    /// Returns `true` while any shard is dead. A partially-dead store is
    /// reported dead because the bump protocol cannot guarantee a complete
    /// dependency picture (§4.2), and recovery (generation bump + flush or
    /// bootstrap) is whole-store.
    pub fn is_dead(&self) -> bool {
        self.shards.iter().any(|s| s.dead.load(Ordering::SeqCst))
    }

    /// Locks every shard named in `routes` in index order (cross-shard
    /// atomicity without deadlocks). The result is indexed by shard number —
    /// `guards[i]` is `Some` iff shard `i` is routed — so per-key guard
    /// lookup is O(1) instead of a linear scan of the locked set.
    fn lock_routed(&self, routes: &[usize]) -> Vec<Option<MutexGuard<'_, HashMap<DepKey, Entry>>>> {
        let mut touched = vec![false; self.shards.len()];
        for r in routes {
            touched[*r] = true;
        }
        touched
            .into_iter()
            .enumerate()
            .map(|(i, hit)| hit.then(|| self.shards[i].entries.lock()))
            .collect()
    }

    /// The publisher's atomic script (§4.2): for each dependency, increment
    /// `ops`; for write dependencies, set `version = ops`. Returns the
    /// dependency values to embed in the message — `version` for read
    /// dependencies, `version - 1` for write dependencies.
    ///
    /// `deps` pairs each key with `is_write`.
    pub fn publish_bump(&self, deps: &[(DepKey, bool)]) -> Result<Vec<(DepKey, u64)>, StoreError> {
        let mut scratch = BumpScratch::default();
        let mut out = Vec::with_capacity(deps.len());
        self.publish_bump_into(deps, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`VersionStore::publish_bump`] with caller-owned scratch and output
    /// buffers: the route table, touched-shard map, and dependency-value
    /// output reuse the caller's allocations across messages. `out` is
    /// cleared and filled in `deps` order.
    pub fn publish_bump_into(
        &self,
        deps: &[(DepKey, bool)],
        scratch: &mut BumpScratch,
        out: &mut Vec<(DepKey, u64)>,
    ) -> Result<(), StoreError> {
        out.clear();
        scratch.routes.clear();
        scratch.touched.clear();
        scratch.touched.resize(self.shards.len(), false);
        // Route each key once, failing before any lock if a routed shard is
        // dead (same all-or-nothing semantics as `check_shards_alive`).
        for (key, _) in deps {
            let route = self.ring.route(*key);
            if self.shards[route].dead.load(Ordering::SeqCst) {
                return Err(StoreError::Dead);
            }
            scratch.touched[route] = true;
            scratch.routes.push(route);
        }
        // Lock touched shards in index order (cross-shard atomicity without
        // deadlocks). The guard vector itself is per-call — guards borrow
        // `self` — but it is the only allocation left on this path.
        let mut guards: Vec<Option<MutexGuard<'_, HashMap<DepKey, Entry>>>> = scratch
            .touched
            .iter()
            .enumerate()
            .map(|(i, hit)| hit.then(|| self.shards[i].entries.lock()))
            .collect();
        for ((key, is_write), shard_idx) in deps.iter().zip(&scratch.routes) {
            let guard = guards[*shard_idx].as_mut().expect("routed shard locked");
            let entry = guard.entry(*key).or_default();
            entry.ops += 1;
            let value = if *is_write {
                // The publisher's own version mark rides the legacy
                // component: a pub-store entry has exactly one writer —
                // this store's owner — so the unattributed slot is its
                // natural home and dumps stay readable as scalars.
                entry.vector.set(LEGACY_WRITER, entry.ops);
                entry.ops - 1
            } else {
                entry.vector.max_counter()
            };
            out.push((*key, value));
        }
        Ok(())
    }

    /// Routes every `(key, required)` pair and groups the set by shard into
    /// `set`, reusing its allocation. Prepare once per message, then call
    /// [`VersionStore::wait_prepared`] / [`VersionStore::satisfied_prepared`]
    /// any number of times without re-routing.
    pub fn prepare_wait(&self, deps: &[(DepKey, u64)], set: &mut DepWaitSet) {
        set.entries.clear();
        set.entries.extend(
            deps.iter()
                .map(|(k, req)| (self.ring.route(*k) as u32, *k, *req)),
        );
        set.entries.sort_by_key(|(shard, _, _)| *shard);
    }

    /// Blocks until every `(key, required)` pair satisfies
    /// `ops(key) >= required`, or the deadline passes (§4.2: the subscriber
    /// "waits until all specified dependencies' versions in its version
    /// store are greater than or equal to those in the message").
    pub fn wait_for(
        &self,
        deps: &[(DepKey, u64)],
        timeout: Duration,
    ) -> Result<WaitOutcome, StoreError> {
        let mut set = DepWaitSet::default();
        self.prepare_wait(deps, &mut set);
        self.wait_prepared(&set, timeout)
    }

    /// Blocking wait over a prepared set: one lock per touched shard, with
    /// all of a shard's keys re-checked under that single lock after each
    /// wakeup.
    pub fn wait_prepared(
        &self,
        set: &DepWaitSet,
        timeout: Duration,
    ) -> Result<WaitOutcome, StoreError> {
        let begun = Instant::now();
        let outcome = self.wait_prepared_inner(set, begun + timeout);
        self.timing.waits.fetch_add(1, Ordering::Relaxed);
        self.timing
            .wait_nanos
            .fetch_add(begun.elapsed().as_nanos() as u64, Ordering::Relaxed);
        outcome
    }

    fn wait_prepared_inner(
        &self,
        set: &DepWaitSet,
        deadline: Instant,
    ) -> Result<WaitOutcome, StoreError> {
        let mut start = 0;
        while start < set.entries.len() {
            let shard_idx = set.entries[start].0 as usize;
            let mut end = start + 1;
            while end < set.entries.len() && set.entries[end].0 as usize == shard_idx {
                end += 1;
            }
            let shard = &self.shards[shard_idx];
            let mut entries = shard.entries.lock();
            // `done` only advances: ops counters are monotonic while the
            // shard lock is dropped during a wait.
            let mut done = start;
            loop {
                if shard.dead.load(Ordering::SeqCst) {
                    return Err(StoreError::Dead);
                }
                while done < end {
                    let (_, key, required) = set.entries[done];
                    if entries.get(&key).map(|e| e.ops).unwrap_or(0) >= required {
                        done += 1;
                    } else {
                        break;
                    }
                }
                if done == end {
                    break;
                }
                if shard.changed.wait_until(&mut entries, deadline).timed_out() {
                    return Ok(WaitOutcome::TimedOut);
                }
            }
            start = end;
        }
        Ok(WaitOutcome::Ready)
    }

    /// Non-blocking variant of [`VersionStore::wait_for`].
    pub fn satisfied(&self, deps: &[(DepKey, u64)]) -> Result<bool, StoreError> {
        let mut set = DepWaitSet::default();
        self.prepare_wait(deps, &mut set);
        self.satisfied_prepared(&set)
    }

    /// Non-blocking check over a prepared set: one lock per touched shard.
    /// Fails with [`StoreError::Dead`] if *any* routed shard is dead, even
    /// when an earlier key is already unsatisfied (same contract as
    /// `satisfied`'s up-front liveness check).
    pub fn satisfied_prepared(&self, set: &DepWaitSet) -> Result<bool, StoreError> {
        let mut previous = usize::MAX;
        for (shard, _, _) in &set.entries {
            let shard_idx = *shard as usize;
            if shard_idx != previous {
                if self.shards[shard_idx].dead.load(Ordering::SeqCst) {
                    return Err(StoreError::Dead);
                }
                previous = shard_idx;
            }
        }
        let mut start = 0;
        while start < set.entries.len() {
            let shard_idx = set.entries[start].0 as usize;
            let mut end = start + 1;
            while end < set.entries.len() && set.entries[end].0 as usize == shard_idx {
                end += 1;
            }
            let entries = self.shards[shard_idx].entries.lock();
            for (_, key, required) in &set.entries[start..end] {
                if entries.get(key).map(|e| e.ops).unwrap_or(0) < *required {
                    return Ok(false);
                }
            }
            start = end;
        }
        Ok(true)
    }

    /// The subscriber's post-processing script: increment `ops` for every
    /// dependency in the message, waking any waiters.
    ///
    /// Accepts the concatenated key lists of a whole message batch: each
    /// touched shard is locked once for the entire call, and only the shards
    /// actually touched are notified — causal waiters parked on unrelated
    /// shards are not spuriously woken.
    pub fn apply(&self, keys: &[DepKey]) -> Result<(), StoreError> {
        let begun = Instant::now();
        self.check_shards_alive(keys)?;
        let routes: Vec<usize> = keys.iter().map(|k| self.ring.route(*k)).collect();
        let mut guards = self.lock_routed(&routes);
        for (key, shard_idx) in keys.iter().zip(&routes) {
            guards[*shard_idx]
                .as_mut()
                .expect("routed shard locked")
                .entry(*key)
                .or_default()
                .ops += 1;
        }
        for (i, guard) in guards.into_iter().enumerate() {
            if let Some(guard) = guard {
                drop(guard);
                self.shards[i].changed.notify_all();
            }
        }
        self.timing.applies.fetch_add(1, Ordering::Relaxed);
        self.timing
            .apply_nanos
            .fetch_add(begun.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Vector freshness check — the multi-writer generalization of the
    /// scalar `advance_latest`. Classifies `incoming` (the write's version
    /// vector, authored by `writer`) against the stored vector:
    ///
    /// * **dominates or equal** → [`VectorAdmit::Fresh`]: the stored
    ///   vector advances to the join and the write must be applied. Equal
    ///   vectors re-apply — the freshness mark is written before the
    ///   engine apply, so a redelivery after a transient apply failure
    ///   must pass rather than be dropped (applies are idempotent
    ///   upserts).
    /// * **dominated** → [`VectorAdmit::Stale`]: discard (§4.2: "the
    ///   subscriber also discards any messages with a version lower than
    ///   what is stored").
    /// * **concurrent** → [`VectorAdmit::Concurrent`]: the stored vector
    ///   still advances to the join (both histories are now known here)
    ///   and the LWW verdict is returned for the resolver plane. The
    ///   winner stamp is folded in either way, so replicas converge on
    ///   the max-stamp version no matter the delivery order.
    pub fn advance_vector(
        &self,
        key: DepKey,
        incoming: &VersionVector,
        writer: u64,
    ) -> Result<VectorAdmit, StoreError> {
        self.check_shards_alive(&[key])?;
        let shard = &self.shards[self.ring.route(key)];
        let mut entries = shard.entries.lock();
        let entry = entries.entry(key).or_default();
        let stamp = incoming.lww_stamp(writer);
        match incoming.compare(&entry.vector) {
            Dominance::Dominates | Dominance::Equal => {
                entry.vector.join(incoming);
                entry.versioned = true;
                entry.note_stamp(stamp);
                Ok(VectorAdmit::Fresh)
            }
            Dominance::Dominated => Ok(VectorAdmit::Stale),
            Dominance::Concurrent => {
                entry.vector.join(incoming);
                entry.versioned = true;
                let lww_wins = entry.note_stamp(stamp);
                Ok(VectorAdmit::Concurrent { lww_wins })
            }
        }
    }

    /// Scalar freshness check: records `version` as the latest seen for
    /// `key` and returns `true`, or `false` if a strictly newer version was
    /// already recorded. Equal versions re-apply (redelivery). This is the
    /// single-writer view of [`VersionStore::advance_vector`] — the scalar
    /// rides the legacy vector component, whose floor semantics reproduce
    /// the old `version >= stored` comparison exactly.
    pub fn advance_latest(&self, key: DepKey, version: u64) -> Result<bool, StoreError> {
        Ok(matches!(
            self.advance_vector(key, &VersionVector::scalar(version), LEGACY_WRITER)?,
            VectorAdmit::Fresh
        ))
    }

    /// Bootstrap-copy admission check against a full vector: admits the
    /// copy iff the key was never explicitly versioned or the copy's
    /// vector *strictly dominates* the stored one. Unlike
    /// [`VersionStore::advance_vector`], equal vectors are *discarded* —
    /// a copy that ties with an applied live write is the same publisher
    /// operation observed twice, and the live apply already holds the
    /// authoritative payload — and so are concurrent ones: ties (and
    /// races) lose to the live stream, which resolves conflicts with full
    /// context while a copy is just a point-in-time row image.
    pub fn admit_copy_vector(
        &self,
        key: DepKey,
        incoming: &VersionVector,
        writer: u64,
    ) -> Result<bool, StoreError> {
        self.check_shards_alive(&[key])?;
        let shard = &self.shards[self.ring.route(key)];
        let mut entries = shard.entries.lock();
        let entry = entries.entry(key).or_default();
        let admit = !entry.versioned || incoming.compare(&entry.vector) == Dominance::Dominates;
        if admit {
            entry.vector.join(incoming);
            entry.versioned = true;
            entry.note_stamp(incoming.lww_stamp(writer));
        }
        Ok(admit)
    }

    /// Scalar bootstrap-copy admission: a never-versioned key admits any
    /// marker (including 0: rows created before the copy started carry
    /// marker 0 and no live write has touched them); otherwise the marker
    /// must be strictly newer than the recorded version — ties lose to
    /// the live stream (the deleted-row-resurrection rule).
    pub fn admit_copy(&self, key: DepKey, marker: u64) -> Result<bool, StoreError> {
        self.admit_copy_vector(key, &VersionVector::scalar(marker), LEGACY_WRITER)
    }

    /// Reads a key's recorded latest version as a scalar — the largest
    /// vector component (0 when absent). Used by the bootstrap copier to
    /// capture each record's publisher-side version and to read back chunk
    /// watermarks (which only ever carry the legacy component).
    pub fn latest_version(&self, key: DepKey) -> Result<u64, StoreError> {
        self.check_shards_alive(&[key])?;
        let shard = &self.shards[self.ring.route(key)];
        let entries = shard.entries.lock();
        Ok(entries
            .get(&key)
            .map(|e| e.vector.max_counter())
            .unwrap_or(0))
    }

    /// Reads a key's full recorded version vector (empty when absent).
    /// The publisher stamps outgoing writes of bidirectional models with
    /// this (joined with its own bumped component), so a write advertises
    /// every foreign write it causally follows.
    pub fn latest_vector(&self, key: DepKey) -> Result<VersionVector, StoreError> {
        self.check_shards_alive(&[key])?;
        let shard = &self.shards[self.ring.route(key)];
        let entries = shard.entries.lock();
        Ok(entries
            .get(&key)
            .map(|e| e.vector.clone())
            .unwrap_or_default())
    }

    /// Bootstrap watermark compare-and-load: keeps the max of `value` and
    /// the stored version for `key`, returning whatever ends up stored.
    /// Monotone, so a retried chunk can never move a watermark backwards.
    /// Watermarks live on the legacy vector component — they are plain
    /// resume cursors, not multi-writer histories.
    pub fn load_watermark(&self, key: DepKey, value: u64) -> Result<u64, StoreError> {
        self.check_shards_alive(&[key])?;
        let shard = &self.shards[self.ring.route(key)];
        let mut entries = shard.entries.lock();
        let entry = entries.entry(key).or_default();
        let stored = entry.vector.get(LEGACY_WRITER).max(value);
        entry.vector.set(LEGACY_WRITER, stored);
        Ok(stored)
    }

    /// Drops a bootstrap watermark (resets the key's version to 0). Called
    /// when a bootstrap completes — or restarts from scratch — so a later
    /// bootstrap re-copies every record instead of resuming past rows that
    /// may have changed since.
    pub fn clear_watermark(&self, key: DepKey) -> Result<(), StoreError> {
        self.check_shards_alive(&[key])?;
        let shard = &self.shards[self.ring.route(key)];
        let mut entries = shard.entries.lock();
        if let Some(entry) = entries.get_mut(&key) {
            entry.vector.set(LEGACY_WRITER, 0);
        }
        Ok(())
    }

    /// Reads a key's `ops` counter (0 when absent).
    pub fn ops(&self, key: DepKey) -> Result<u64, StoreError> {
        self.check_shards_alive(&[key])?;
        let shard = &self.shards[self.ring.route(key)];
        let entries = shard.entries.lock();
        Ok(entries.get(&key).map(|e| e.ops).unwrap_or(0))
    }

    /// Bulk-dumps all entries as `(key, ops)` — step one of bootstrap
    /// (§4.4: "all current publisher versions are sent in bulk").
    pub fn snapshot(&self) -> Result<Vec<(DepKey, u64)>, StoreError> {
        self.check_alive()?;
        let mut out = Vec::new();
        for shard in &self.shards {
            let entries = shard.entries.lock();
            out.extend(entries.iter().map(|(k, e)| (*k, e.ops)));
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Bulk-loads `(key, ops)` pairs, keeping the max with any existing
    /// counter, and wakes waiters. Each touched shard is locked once for
    /// the whole snapshot and only touched shards are notified.
    pub fn load_snapshot(&self, entries: &[(DepKey, u64)]) -> Result<(), StoreError> {
        self.check_alive()?;
        let routes: Vec<usize> = entries.iter().map(|(k, _)| self.ring.route(*k)).collect();
        let mut guards = self.lock_routed(&routes);
        for ((key, ops), shard_idx) in entries.iter().zip(&routes) {
            let entry = guards[*shard_idx]
                .as_mut()
                .expect("routed shard locked")
                .entry(*key)
                .or_default();
            entry.ops = entry.ops.max(*ops);
        }
        for (i, guard) in guards.into_iter().enumerate() {
            if let Some(guard) = guard {
                drop(guard);
                self.shards[i].changed.notify_all();
            }
        }
        Ok(())
    }

    /// Bulk-dumps all entries as [`DumpEntry`] values — the durability
    /// plane's snapshot form. Unlike [`VersionStore::snapshot`] (the §4.4
    /// bootstrap bulk-send, which carries only `ops`), a dump also carries
    /// each entry's full version vector, its explicit-write flag, and its
    /// LWW winner stamp, so freshness marks, destroy tombstones (an empty
    /// vector with the flag set), bootstrap watermarks, *and* resolution
    /// state survive a crash-restart. Sorted by key for a deterministic
    /// on-disk image.
    pub fn dump(&self) -> Result<Vec<DumpEntry>, StoreError> {
        self.check_alive()?;
        let mut out = Vec::new();
        for shard in &self.shards {
            let entries = shard.entries.lock();
            out.extend(entries.iter().map(|(k, e)| DumpEntry {
                key: *k,
                ops: e.ops,
                versioned: e.versioned,
                winner_sum: e.winner_sum,
                winner_writer: e.winner_writer,
                vector: e.vector.components().to_vec(),
            }));
        }
        out.sort_unstable_by_key(|e| e.key);
        Ok(out)
    }

    /// Bulk-loads [`DumpEntry`] values, keeping the max of each counter
    /// (component-wise for the vector, stamp-wise for the winner, OR for
    /// the explicit-write flag) against any existing entry, and wakes
    /// waiters on touched shards. Max-merge makes the load idempotent and
    /// safe to combine with live traffic racing in after recovery.
    pub fn load_dump(&self, entries: &[DumpEntry]) -> Result<(), StoreError> {
        self.check_alive()?;
        let routes: Vec<usize> = entries.iter().map(|e| self.ring.route(e.key)).collect();
        let mut guards = self.lock_routed(&routes);
        for (dumped, shard_idx) in entries.iter().zip(&routes) {
            let entry = guards[*shard_idx]
                .as_mut()
                .expect("routed shard locked")
                .entry(dumped.key)
                .or_default();
            entry.ops = entry.ops.max(dumped.ops);
            entry
                .vector
                .join(&VersionVector::from_components(&dumped.vector));
            entry.versioned |= dumped.versioned;
            entry.note_stamp((dumped.winner_sum, dumped.winner_writer));
        }
        for (i, guard) in guards.into_iter().enumerate() {
            if let Some(guard) = guard {
                drop(guard);
                self.shards[i].changed.notify_all();
            }
        }
        Ok(())
    }

    /// Clears every counter (generation change, §4.4: subscribers "flush
    /// their version store").
    pub fn flush(&self) -> Result<(), StoreError> {
        self.check_alive()?;
        for shard in &self.shards {
            shard.entries.lock().clear();
            shard.changed.notify_all();
        }
        Ok(())
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// Returns `true` if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint (the paper's ~100 bytes/dependency).
    pub fn approx_memory_bytes(&self) -> usize {
        self.len() * BYTES_PER_ENTRY
    }

    /// Number of shards backing the store.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Replays Fig. 8's four writes and checks every counter and message
    /// dependency value against the figure.
    #[test]
    fn fig8_publisher_counter_evolution() {
        let store = VersionStore::single();
        let (u1, u2, p1, c1, c2) = (1u64, 2, 3, 4, 5);

        // W1: write_deps [user1, post1].
        let m1 = store.publish_bump(&[(u1, true), (p1, true)]).unwrap();
        assert_eq!(m1, vec![(u1, 0), (p1, 0)]);

        // W2: read_deps [post1], write_deps [user2, comment1].
        let m2 = store
            .publish_bump(&[(u2, true), (c1, true), (p1, false)])
            .unwrap();
        assert_eq!(m2, vec![(u2, 0), (c1, 0), (p1, 1)]);

        // W3: read_deps [post1], write_deps [user1, comment2].
        let m3 = store
            .publish_bump(&[(u1, true), (c2, true), (p1, false)])
            .unwrap();
        assert_eq!(m3, vec![(u1, 1), (c2, 0), (p1, 1)]);

        // W4: write_deps [user1, post1].
        let m4 = store.publish_bump(&[(u1, true), (p1, true)]).unwrap();
        assert_eq!(m4, vec![(u1, 2), (p1, 3)]);
    }

    /// The subscriber side of Fig. 8: M2/M3 need M1; M4 needs all three.
    #[test]
    fn fig8_subscriber_dependency_graph() {
        let store = VersionStore::single();
        let (u1, u2, p1, c1, c2) = (1u64, 2, 3, 4, 5);
        let m1 = [(u1, 0), (p1, 0)];
        let m2 = [(u2, 0), (c1, 0), (p1, 1)];
        let m3 = [(u1, 1), (c2, 0), (p1, 1)];
        let m4 = [(u1, 2), (p1, 3)];

        assert!(store.satisfied(&m1).unwrap());
        assert!(!store.satisfied(&m2).unwrap());
        assert!(!store.satisfied(&m3).unwrap());

        store.apply(&[u1, p1]).unwrap(); // process M1
        assert!(store.satisfied(&m2).unwrap());
        assert!(store.satisfied(&m3).unwrap());
        assert!(!store.satisfied(&m4).unwrap());

        store.apply(&[u2, c1, p1]).unwrap(); // process M2
        assert!(!store.satisfied(&m4).unwrap());
        store.apply(&[u1, c2, p1]).unwrap(); // process M3
        assert!(store.satisfied(&m4).unwrap());
    }

    #[test]
    fn wait_for_blocks_until_apply() {
        let store = Arc::new(VersionStore::new(4));
        let waiter = {
            let store = store.clone();
            thread::spawn(move || store.wait_for(&[(7, 1)], Duration::from_secs(5)).unwrap())
        };
        thread::sleep(Duration::from_millis(30));
        store.apply(&[7]).unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Ready);
    }

    #[test]
    fn wait_for_times_out_on_missing_dependency() {
        let store = VersionStore::single();
        let out = store
            .wait_for(&[(9, 3)], Duration::from_millis(30))
            .unwrap();
        assert_eq!(out, WaitOutcome::TimedOut);
    }

    #[test]
    fn cross_shard_bump_is_consistent() {
        let store = VersionStore::new(8);
        let deps: Vec<(DepKey, bool)> = (0..64).map(|k| (k, true)).collect();
        let out = store.publish_bump(&deps).unwrap();
        assert!(out.iter().all(|(_, v)| *v == 0));
        let out = store.publish_bump(&deps).unwrap();
        assert!(out.iter().all(|(_, v)| *v == 1));
    }

    #[test]
    fn concurrent_bumps_never_lose_increments() {
        let store = Arc::new(VersionStore::new(4));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..500 {
                    store.publish_bump(&[(1, true), (2, false)]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.ops(1).unwrap(), 4000);
        assert_eq!(store.ops(2).unwrap(), 4000);
    }

    #[test]
    fn kill_fails_operations_and_wakes_waiters() {
        let store = Arc::new(VersionStore::new(2));
        store.apply(&[1]).unwrap();
        let waiter = {
            let store = store.clone();
            thread::spawn(move || store.wait_for(&[(5, 1)], Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(30));
        store.kill();
        assert_eq!(waiter.join().unwrap(), Err(StoreError::Dead));
        assert_eq!(store.ops(1), Err(StoreError::Dead));
        store.revive();
        assert_eq!(store.ops(1).unwrap(), 0, "contents were lost");
    }

    #[test]
    fn shard_kill_is_partial() {
        let store = VersionStore::new(4);
        // Find two keys on different shards.
        let key_a = 1u64;
        let shard_a = store.shard_for(key_a);
        let key_b = (2..1000)
            .find(|k| store.shard_for(*k) != shard_a)
            .expect("some key routes elsewhere");
        store.apply(&[key_a, key_b]).unwrap();

        store.kill_shard(shard_a);
        assert!(store.is_dead(), "any dead shard marks the store dead");
        assert_eq!(store.dead_shards(), vec![shard_a]);
        assert_eq!(store.ops(key_a), Err(StoreError::Dead));
        // The other shard keeps serving.
        assert_eq!(store.ops(key_b).unwrap(), 1);
        store.apply(&[key_b]).unwrap();
        assert_eq!(store.ops(key_b).unwrap(), 2);
        // Ops spanning the dead shard fail atomically (nothing applied).
        assert_eq!(store.apply(&[key_a, key_b]), Err(StoreError::Dead));
        assert_eq!(store.ops(key_b).unwrap(), 2);
        // Whole-store operations refuse to run on a partially-dead store.
        assert_eq!(store.snapshot(), Err(StoreError::Dead));
        assert_eq!(store.flush(), Err(StoreError::Dead));

        store.revive_shard(shard_a);
        assert!(!store.is_dead());
        assert_eq!(store.ops(key_a).unwrap(), 0, "shard contents were lost");
        assert_eq!(store.ops(key_b).unwrap(), 2, "other shard kept its data");
    }

    #[test]
    fn shard_kill_wakes_waiters_on_that_shard() {
        let store = Arc::new(VersionStore::new(4));
        let key = 5u64;
        let target = store.shard_for(key);
        let waiter = {
            let store = store.clone();
            thread::spawn(move || store.wait_for(&[(key, 1)], Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(30));
        store.kill_shard(target);
        assert_eq!(waiter.join().unwrap(), Err(StoreError::Dead));
    }

    #[test]
    fn snapshot_roundtrips_through_load() {
        let publisher = VersionStore::new(4);
        publisher
            .publish_bump(&[(1, true), (2, true), (3, false)])
            .unwrap();
        publisher.publish_bump(&[(1, true)]).unwrap();
        let snap = publisher.snapshot().unwrap();
        let subscriber = VersionStore::new(2);
        subscriber.load_snapshot(&snap).unwrap();
        assert_eq!(subscriber.ops(1).unwrap(), 2);
        assert_eq!(subscriber.ops(2).unwrap(), 1);
        assert_eq!(subscriber.ops(3).unwrap(), 1);
    }

    #[test]
    fn load_snapshot_keeps_newer_local_counters() {
        let store = VersionStore::single();
        store.apply(&[1]).unwrap();
        store.apply(&[1]).unwrap();
        store.load_snapshot(&[(1, 1)]).unwrap();
        assert_eq!(store.ops(1).unwrap(), 2);
    }

    #[test]
    fn advance_latest_discards_stale_versions() {
        let store = VersionStore::single();
        assert!(store.advance_latest(1, 0).unwrap());
        assert!(store.advance_latest(1, 3).unwrap());
        assert!(!store.advance_latest(1, 2).unwrap(), "stale version");
        assert!(store.advance_latest(1, 4).unwrap());
        assert_eq!(store.latest_version(1).unwrap(), 4);
    }

    /// The freshness mark is written before the engine apply, so a
    /// redelivery of the same version (after a transient apply failure)
    /// must pass the check and re-apply rather than be dropped.
    #[test]
    fn advance_latest_readmits_equal_versions() {
        let store = VersionStore::single();
        assert!(store.advance_latest(1, 5).unwrap());
        assert!(store.advance_latest(1, 5).unwrap(), "redelivery re-applies");
        assert!(!store.advance_latest(1, 4).unwrap(), "older stays stale");
    }

    #[test]
    fn watermarks_are_monotone_and_clearable() {
        let store = VersionStore::new(2);
        assert_eq!(store.latest_version(7).unwrap(), 0, "absent key reads 0");
        assert_eq!(store.load_watermark(7, 16).unwrap(), 16);
        assert_eq!(store.load_watermark(7, 12).unwrap(), 16, "never regresses");
        assert_eq!(store.load_watermark(7, 48).unwrap(), 48);
        assert_eq!(store.latest_version(7).unwrap(), 48);
        store.clear_watermark(7).unwrap();
        assert_eq!(store.latest_version(7).unwrap(), 0);
    }

    #[test]
    fn watermark_calls_fail_when_the_owning_shard_is_dead() {
        let store = VersionStore::new(2);
        store.load_watermark(3, 9).unwrap();
        store.kill_shard(store.shard_for(3));
        assert!(store.load_watermark(3, 10).is_err());
        assert!(store.latest_version(3).is_err());
        store.revive_shard(store.shard_for(3));
        // Shard contents were lost with the kill: the watermark is gone and
        // the caller must restart its copy from scratch.
        assert_eq!(store.latest_version(3).unwrap(), 0);
    }

    #[test]
    fn dump_roundtrips_ops_and_versions() {
        let store = VersionStore::new(4);
        store.publish_bump(&[(1, true), (2, false)]).unwrap();
        store.publish_bump(&[(1, true)]).unwrap();
        store.load_watermark(9, 42).unwrap();
        let dump = store.dump().unwrap();
        assert!(
            dump.windows(2).all(|w| w[0].key < w[1].key),
            "sorted by key"
        );

        let restored = VersionStore::new(2);
        restored.load_dump(&dump).unwrap();
        assert_eq!(restored.ops(1).unwrap(), 2);
        assert_eq!(restored.latest_version(1).unwrap(), 2, "versions survive");
        assert_eq!(restored.ops(2).unwrap(), 1);
        assert_eq!(
            restored.latest_version(9).unwrap(),
            42,
            "watermarks (stored as versions) survive the round trip"
        );
    }

    #[test]
    fn load_dump_max_merges_both_fields() {
        let store = VersionStore::single();
        store.apply(&[1]).unwrap();
        store.apply(&[1]).unwrap();
        store.advance_latest(1, 7).unwrap();
        // Stale dump: neither field regresses.
        store
            .load_dump(&[DumpEntry::scalar(1, 1, 3, false)])
            .unwrap();
        assert_eq!(store.ops(1).unwrap(), 2);
        assert_eq!(store.latest_version(1).unwrap(), 7);
        // Newer dump: both fields advance.
        store
            .load_dump(&[DumpEntry::scalar(1, 10, 12, true)])
            .unwrap();
        assert_eq!(store.ops(1).unwrap(), 10);
        assert_eq!(store.latest_version(1).unwrap(), 12);
    }

    /// A copy admitted against a never-versioned key (marker 0 included:
    /// rows created before the bootstrap started) must land; a copy tying
    /// with or older than an explicitly-recorded version must be
    /// discarded — including the version-0 tombstone an applied destroy
    /// leaves behind (the deleted-row-resurrection bug).
    #[test]
    fn admit_copy_distinguishes_tombstones_from_unversioned_keys() {
        let store = VersionStore::new(2);
        // Entry exists from ops bookkeeping (snapshot load) but was never
        // explicitly versioned: a marker-0 copy must be admitted.
        store.load_snapshot(&[(1, 1)]).unwrap();
        assert!(store.admit_copy(1, 0).unwrap(), "unversioned key admits");
        assert!(
            !store.admit_copy(1, 0).unwrap(),
            "second identical copy ties"
        );

        // An applied destroy records version 0 explicitly; a stale copy of
        // the pre-delete row (marker 0) must now be discarded.
        assert!(store.advance_latest(2, 0).unwrap());
        assert!(!store.admit_copy(2, 0).unwrap(), "tombstone wins over copy");

        // A copy strictly newer than the applied version is admitted; the
        // live stream's own `>=` readmit still re-applies its version.
        assert!(store.advance_latest(3, 4).unwrap());
        assert!(!store.admit_copy(3, 4).unwrap(), "tie goes to live stream");
        assert!(store.admit_copy(3, 5).unwrap(), "strictly newer copy lands");
        assert!(store.advance_latest(3, 5).unwrap(), "live readmits equal");
    }

    /// The explicit-write flag must survive a dump/load round trip:
    /// restoring a snapshot must not turn tombstones back into
    /// unversioned keys (which would re-admit stale copies after a
    /// crash-restart).
    #[test]
    fn dump_preserves_versioned_flag() {
        let store = VersionStore::new(2);
        store.load_snapshot(&[(1, 3)]).unwrap(); // never versioned
        store.advance_latest(2, 0).unwrap(); // tombstone
        let dump = store.dump().unwrap();

        let restored = VersionStore::single();
        restored.load_dump(&dump).unwrap();
        assert!(restored.admit_copy(1, 0).unwrap(), "still unversioned");
        assert!(!restored.admit_copy(2, 0).unwrap(), "tombstone survived");
    }

    #[test]
    fn load_dump_wakes_waiters() {
        let store = Arc::new(VersionStore::new(2));
        let waiter = {
            let store = store.clone();
            thread::spawn(move || store.wait_for(&[(5, 3)], Duration::from_secs(5)).unwrap())
        };
        thread::sleep(Duration::from_millis(30));
        store
            .load_dump(&[DumpEntry::scalar(5, 3, 3, false)])
            .unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Ready);
    }

    /// Two writers advancing disjoint components are classified as
    /// concurrent; the join is recorded so a causally-later write from
    /// either side dominates afterwards.
    #[test]
    fn advance_vector_classifies_concurrent_writers() {
        let store = VersionStore::single();
        let (a, b) = (11u64, 22u64);
        assert_eq!(
            store
                .advance_vector(1, &VersionVector::component(a, 1), a)
                .unwrap(),
            VectorAdmit::Fresh
        );
        // Writer B never saw A's write: concurrent. B's stamp (1, 22)
        // beats A's (1, 11) on the writer tie-break.
        assert_eq!(
            store
                .advance_vector(1, &VersionVector::component(b, 1), b)
                .unwrap(),
            VectorAdmit::Concurrent { lww_wins: true }
        );
        // A write that has seen both components dominates the join.
        let merged = VersionVector::from_components(&[(a, 2), (b, 1)]);
        assert_eq!(
            store.advance_vector(1, &merged, a).unwrap(),
            VectorAdmit::Fresh
        );
        // Anything older than the join is stale.
        assert_eq!(
            store
                .advance_vector(1, &VersionVector::component(a, 1), a)
                .unwrap(),
            VectorAdmit::Stale
        );
    }

    /// The LWW verdict is order-independent: whichever of two concurrent
    /// versions arrives second, the max-stamp version ends up the winner
    /// on every replica.
    #[test]
    fn lww_verdict_converges_across_delivery_orders() {
        let (a, b) = (11u64, 22u64);
        let va = VersionVector::component(a, 1);
        let vb = VersionVector::component(b, 1);

        let first = VersionStore::single();
        first.advance_vector(1, &va, a).unwrap();
        let verdict_ab = first.advance_vector(1, &vb, b).unwrap();

        let second = VersionStore::single();
        second.advance_vector(1, &vb, b).unwrap();
        let verdict_ba = second.advance_vector(1, &va, a).unwrap();

        // B has the higher writer id, so B's version wins on both sides:
        // delivered second it wins, delivered first it holds.
        assert_eq!(verdict_ab, VectorAdmit::Concurrent { lww_wins: true });
        assert_eq!(verdict_ba, VectorAdmit::Concurrent { lww_wins: false });
    }

    /// Concurrent copies lose to the live stream: only strict vector
    /// dominance admits a bootstrap row against a versioned key.
    #[test]
    fn admit_copy_vector_requires_strict_dominance() {
        let store = VersionStore::single();
        let (a, b) = (11u64, 22u64);
        store
            .advance_vector(1, &VersionVector::component(a, 2), a)
            .unwrap();
        assert!(
            !store
                .admit_copy_vector(1, &VersionVector::component(b, 9), b)
                .unwrap(),
            "concurrent copy loses to live"
        );
        assert!(
            !store
                .admit_copy_vector(1, &VersionVector::component(a, 2), a)
                .unwrap(),
            "tie loses to live"
        );
        let newer = VersionVector::from_components(&[(a, 3), (b, 9)]);
        assert!(
            store.admit_copy_vector(1, &newer, a).unwrap(),
            "strictly dominating copy lands"
        );
    }

    /// Vector entries round-trip through dump/load: components, the
    /// explicit-write flag, and the winner stamp all survive, and the
    /// merge keeps the max of each.
    #[test]
    fn dump_roundtrips_vector_entries() {
        let store = VersionStore::new(2);
        let (a, b) = (11u64, 22u64);
        store
            .advance_vector(1, &VersionVector::component(a, 1), a)
            .unwrap();
        store
            .advance_vector(1, &VersionVector::component(b, 2), b)
            .unwrap();
        let dump = store.dump().unwrap();
        let entry = dump.iter().find(|e| e.key == 1).unwrap();
        assert_eq!(entry.vector, vec![(a, 1), (b, 2)]);
        assert_eq!((entry.winner_sum, entry.winner_writer), (2, b));

        let restored = VersionStore::single();
        restored.load_dump(&dump).unwrap();
        let vec_back = restored.latest_vector(1).unwrap();
        assert_eq!(vec_back.components(), &[(a, 1), (b, 2)]);
        // The restored stamp still outranks A's version 1: a redelivery
        // of the loser stays a loser after recovery.
        assert_eq!(
            restored
                .advance_vector(1, &VersionVector::component(a, 1), a)
                .unwrap(),
            VectorAdmit::Stale
        );
    }

    #[test]
    fn flush_clears_counters() {
        let store = VersionStore::new(2);
        store.apply(&[1, 2, 3]).unwrap();
        assert_eq!(store.len(), 3);
        store.flush().unwrap();
        assert!(store.is_empty());
        assert_eq!(store.approx_memory_bytes(), 0);
    }

    /// A batched apply (concatenated key lists of several messages) must
    /// increment duplicated keys once per occurrence, exactly as separate
    /// applies would.
    #[test]
    fn batched_apply_counts_duplicate_keys_per_occurrence() {
        let batched = VersionStore::new(4);
        batched.apply(&[1, 2, 1, 3, 1]).unwrap();
        let sequential = VersionStore::new(4);
        for keys in [[1u64, 2].as_slice(), &[1, 3], &[1]] {
            sequential.apply(keys).unwrap();
        }
        for key in [1u64, 2, 3] {
            assert_eq!(batched.ops(key).unwrap(), sequential.ops(key).unwrap());
        }
        assert_eq!(batched.ops(1).unwrap(), 3);
    }

    /// Applying keys routed to one shard must still wake waiters parked on
    /// that shard (the targeted notification can narrow, never skip).
    #[test]
    fn targeted_notify_still_wakes_routed_waiters() {
        let store = Arc::new(VersionStore::new(8));
        let keys: Vec<DepKey> = (0..32).collect();
        let deps: Vec<(DepKey, u64)> = keys.iter().map(|k| (*k, 1)).collect();
        let waiter = {
            let store = store.clone();
            thread::spawn(move || store.wait_for(&deps, Duration::from_secs(5)).unwrap())
        };
        thread::sleep(Duration::from_millis(30));
        store.apply(&keys).unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Ready);
    }

    /// The scratch-reusing bump must produce exactly the dependency values
    /// of the allocating wrapper, message after message with the same
    /// buffers.
    #[test]
    fn publish_bump_into_matches_publish_bump() {
        let reference = VersionStore::new(4);
        let reused = VersionStore::new(4);
        let mut scratch = BumpScratch::default();
        let mut out = Vec::new();
        for round in 0..20u64 {
            let deps: Vec<(DepKey, bool)> = (0..30)
                .map(|k| (k * 7 % 13, (k + round).is_multiple_of(3)))
                .collect();
            let expected = reference.publish_bump(&deps).unwrap();
            reused
                .publish_bump_into(&deps, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, expected);
        }
    }

    /// A prepared wait set can be re-checked and re-waited without
    /// re-routing, with the same outcomes as the per-call API.
    #[test]
    fn prepared_wait_set_matches_unprepared_api() {
        let store = Arc::new(VersionStore::new(4));
        let deps: Vec<(DepKey, u64)> = (0..16).map(|k| (k, 1)).collect();
        let mut set = DepWaitSet::default();
        store.prepare_wait(&deps, &mut set);
        assert_eq!(set.len(), deps.len());
        assert!(!store.satisfied_prepared(&set).unwrap());
        assert_eq!(
            store
                .wait_prepared(&set, Duration::from_millis(20))
                .unwrap(),
            WaitOutcome::TimedOut
        );

        let waiter = {
            let store = store.clone();
            let set = set.clone();
            thread::spawn(move || store.wait_prepared(&set, Duration::from_secs(5)).unwrap())
        };
        thread::sleep(Duration::from_millis(30));
        let keys: Vec<DepKey> = deps.iter().map(|(k, _)| *k).collect();
        store.apply(&keys).unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Ready);
        assert!(store.satisfied_prepared(&set).unwrap());
    }

    /// A dead routed shard fails the prepared check even when an earlier
    /// key is already unsatisfied — liveness is checked before
    /// satisfaction, as in the unprepared API.
    #[test]
    fn prepared_satisfied_reports_death_before_unsatisfied_keys() {
        let store = VersionStore::new(4);
        let key_a = 1u64;
        let shard_a = store.shard_for(key_a);
        let key_b = (2..1000)
            .find(|k| store.shard_for(*k) != shard_a)
            .expect("some key routes elsewhere");
        let mut set = DepWaitSet::default();
        store.prepare_wait(&[(key_a, 5), (key_b, 5)], &mut set);
        store.kill_shard(store.shard_for(key_b));
        assert_eq!(store.satisfied_prepared(&set), Err(StoreError::Dead));
    }

    #[test]
    fn memory_accounting_matches_paper_estimate() {
        let store = VersionStore::new(4);
        let keys: Vec<DepKey> = (0..1000).collect();
        store.apply(&keys).unwrap();
        assert_eq!(store.approx_memory_bytes(), 100 * 1000);
    }
}
