//! Applies fault events to the live system under test.
//!
//! The [`Injector`] holds handles to the broker, the per-side version
//! stores, and the per-side [`DbFaults`] arming panels, and translates
//! each [`FaultKind`] into the corresponding substrate call. It keeps
//! deterministic counters of everything it scheduled: because countdown
//! faults record the *armed* amount (fixed by the plan) rather than an
//! outcome subject to thread timing, [`InjectorStats`] is identical
//! across runs of the same plan.

use crate::plan::{FaultEvent, FaultKind, FaultPlan, Side};
use std::sync::Arc;
use std::time::Duration;
use synapse_broker::Broker;
use synapse_db::DbFaults;
use synapse_versionstore::VersionStore;

/// Deterministic totals of faults scheduled through one injector.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InjectorStats {
    /// Deliveries scheduled to be dropped.
    pub drops_scheduled: u64,
    /// Publishes scheduled to fail transiently.
    pub publish_failures_scheduled: u64,
    /// Broker restarts triggered.
    pub broker_restarts: u64,
    /// Version-store shards killed.
    pub shard_kills: u64,
    /// Revive sweeps applied to version stores.
    pub shard_revives: u64,
    /// Database writes scheduled to fail transiently.
    pub db_write_errors_scheduled: u64,
    /// Database writes scheduled to be delayed.
    pub db_latency_spikes_scheduled: u64,
    /// Events that named a side with no registered target.
    pub skipped: u64,
}

impl InjectorStats {
    /// Total faults scheduled (excluding skips).
    pub fn total_scheduled(&self) -> u64 {
        self.drops_scheduled
            + self.publish_failures_scheduled
            + self.broker_restarts
            + self.shard_kills
            + self.shard_revives
            + self.db_write_errors_scheduled
            + self.db_latency_spikes_scheduled
    }
}

/// Dispatches [`FaultKind`]s onto broker / version-store / db handles.
pub struct Injector {
    broker: Broker,
    queue: String,
    stores: [Option<Arc<VersionStore>>; 2],
    dbs: [Option<DbFaults>; 2],
    stats: InjectorStats,
}

impl Injector {
    /// Creates an injector targeting `queue` on `broker`; version stores
    /// and db fault panels are attached per side with the builder methods.
    pub fn new(broker: Broker, queue: impl Into<String>) -> Self {
        Self {
            broker,
            queue: queue.into(),
            stores: [None, None],
            dbs: [None, None],
            stats: InjectorStats::default(),
        }
    }

    /// Registers the version store for one side.
    pub fn with_store(mut self, side: Side, store: Arc<VersionStore>) -> Self {
        self.stores[side.index()] = Some(store);
        self
    }

    /// Registers the db fault panel for one side.
    pub fn with_db(mut self, side: Side, faults: DbFaults) -> Self {
        self.dbs[side.index()] = Some(faults);
        self
    }

    /// Applies one fault; returns `false` if the event named a side with
    /// no registered target (counted in [`InjectorStats::skipped`]).
    pub fn apply(&mut self, kind: &FaultKind) -> bool {
        match *kind {
            FaultKind::DropMessages { n } => {
                self.broker.inject_drop_next(&self.queue, n);
                self.stats.drops_scheduled += n;
            }
            FaultKind::PublishFailures { n } => {
                self.broker.inject_publish_failures(n);
                self.stats.publish_failures_scheduled += n;
            }
            FaultKind::BrokerRestart => {
                self.broker.recover();
                self.stats.broker_restarts += 1;
            }
            FaultKind::KillShard { side, shard } => match &self.stores[side.index()] {
                Some(store) => {
                    store.kill_shard(shard % store.shard_count());
                    self.stats.shard_kills += 1;
                }
                None => return self.skip(),
            },
            FaultKind::ReviveShards { side } => match &self.stores[side.index()] {
                Some(store) => {
                    store.revive();
                    self.stats.shard_revives += 1;
                }
                None => return self.skip(),
            },
            FaultKind::DbWriteErrors { side, n } => match &self.dbs[side.index()] {
                Some(db) => {
                    db.inject_write_errors(n);
                    self.stats.db_write_errors_scheduled += n;
                }
                None => return self.skip(),
            },
            FaultKind::DbLatencySpike { side, ops, micros } => match &self.dbs[side.index()] {
                Some(db) => {
                    db.inject_latency_spikes(ops, Duration::from_micros(micros));
                    self.stats.db_latency_spikes_scheduled += ops;
                }
                None => return self.skip(),
            },
        }
        true
    }

    /// Consumes every plan event due at `tick` and applies it; returns
    /// how many events fired.
    pub fn apply_due(&mut self, plan: &mut FaultPlan, tick: u64) -> usize {
        let due: Vec<FaultEvent> = plan.take_due(tick);
        for event in &due {
            self.apply(&event.kind);
        }
        due.len()
    }

    /// Deterministic totals of everything scheduled so far.
    pub fn stats(&self) -> InjectorStats {
        self.stats
    }

    fn skip(&mut self) -> bool {
        self.stats.skipped += 1;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;
    use synapse_broker::QueueConfig;

    fn harness() -> (
        Broker,
        Arc<VersionStore>,
        Arc<VersionStore>,
        DbFaults,
        DbFaults,
    ) {
        let broker = Broker::new();
        broker.declare_queue("q", QueueConfig::default());
        broker.bind("x", "q");
        (
            broker,
            Arc::new(VersionStore::new(4)),
            Arc::new(VersionStore::new(4)),
            DbFaults::new(),
            DbFaults::new(),
        )
    }

    #[test]
    fn applies_every_kind_to_registered_targets() {
        let (broker, pub_store, sub_store, pub_db, sub_db) = harness();
        let mut injector = Injector::new(broker.clone(), "q")
            .with_store(Side::Publisher, pub_store.clone())
            .with_store(Side::Subscriber, sub_store.clone())
            .with_db(Side::Publisher, pub_db.clone())
            .with_db(Side::Subscriber, sub_db.clone());

        assert!(injector.apply(&FaultKind::PublishFailures { n: 2 }));
        assert!(injector.apply(&FaultKind::KillShard {
            side: Side::Subscriber,
            shard: 1,
        }));
        assert!(sub_store.shard_is_dead(1));
        assert!(injector.apply(&FaultKind::ReviveShards {
            side: Side::Subscriber,
        }));
        assert!(!sub_store.shard_is_dead(1));
        assert!(injector.apply(&FaultKind::DbWriteErrors {
            side: Side::Publisher,
            n: 3,
        }));
        assert!(pub_db.is_armed());
        assert!(injector.apply(&FaultKind::DropMessages { n: 1 }));
        assert!(injector.apply(&FaultKind::BrokerRestart));

        let stats = injector.stats();
        assert_eq!(stats.publish_failures_scheduled, 2);
        assert_eq!(stats.shard_kills, 1);
        assert_eq!(stats.shard_revives, 1);
        assert_eq!(stats.db_write_errors_scheduled, 3);
        assert_eq!(stats.drops_scheduled, 1);
        assert_eq!(stats.broker_restarts, 1);
        assert_eq!(stats.skipped, 0);

        // Armed publish failures are visible through broker behaviour.
        assert!(broker.publish("x", "one").is_err());
        assert!(broker.publish("x", "two").is_err());
        assert!(broker.publish("x", "three").is_ok());
    }

    #[test]
    fn missing_targets_are_skipped_not_fatal() {
        let (broker, ..) = harness();
        let mut injector = Injector::new(broker, "q");
        assert!(!injector.apply(&FaultKind::KillShard {
            side: Side::Publisher,
            shard: 0,
        }));
        assert!(!injector.apply(&FaultKind::DbWriteErrors {
            side: Side::Subscriber,
            n: 1,
        }));
        assert_eq!(injector.stats().skipped, 2);
        assert_eq!(injector.stats().total_scheduled(), 0);
    }

    #[test]
    fn applying_the_same_plan_twice_yields_identical_stats() {
        let spec = FaultSpec {
            events: 24,
            shards: 4,
            ..FaultSpec::default()
        };
        let mut totals = Vec::new();
        for _ in 0..2 {
            let (broker, pub_store, sub_store, pub_db, sub_db) = harness();
            let mut injector = Injector::new(broker, "q")
                .with_store(Side::Publisher, pub_store)
                .with_store(Side::Subscriber, sub_store)
                .with_db(Side::Publisher, pub_db)
                .with_db(Side::Subscriber, sub_db);
            let mut plan = FaultPlan::generate(0xDEAD_BEEF, &spec);
            let mut tick = 0;
            while plan.remaining() > 0 {
                tick += 1;
                injector.apply_due(&mut plan, tick);
            }
            totals.push(injector.stats());
        }
        assert_eq!(totals[0], totals[1]);
        assert!(totals[0].total_scheduled() > 0);
    }
}
