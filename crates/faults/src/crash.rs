//! The crash-restart fault family.
//!
//! The durability plane (broker WAL + version-store snapshots) claims that
//! a node can be killed at any point and recover without losing an acked
//! message. This module generates the *kill schedule* that a crash-restart
//! soak drives against that claim: a seeded sequence of rounds, each
//! running some number of operations and then dying at one of the crash
//! points the WAL and snapshot stores expose as injectable faults.
//!
//! Like [`FaultPlan`](crate::plan::FaultPlan), generation is pure: the
//! same seed yields byte-identical plans on every machine, so soak
//! assertions ("zero acked-message loss for every kill point") are exact,
//! not statistical. The point rotation guarantees coverage — every crash
//! point appears in every window of [`CrashPoint::ALL`]'s length — while
//! the seeded offsets vary *when* within a round the crash lands and how
//! many bytes a torn tail loses.

use crate::rng::SeededRng;

/// Where in the durability plane a round's crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Kill mid-append: the WAL writes a strict prefix of one frame and
    /// the process dies (`Wal::inject_partial_append`).
    MidAppend,
    /// Torn segment tail: the process dies after its last append reaches
    /// the page cache but before the final frame is fully on disk — the
    /// restart sees a truncated last frame.
    TornTail,
    /// Lying disk: fsyncs report success without syncing, then power
    /// fails (`Wal::inject_drop_fsyncs` + `Wal::simulate_power_failure`).
    DroppedFsync,
    /// Kill while a version-store snapshot is half-written
    /// (`SnapshotStore::inject_interrupt_next`).
    MidSnapshot,
    /// Kill mid-group-commit: a leader's multi-frame staged batch reaches
    /// the disk only as a strict prefix — complete frames of the batch
    /// survive and replay, the cut frame is torn-tail truncated
    /// (`Wal::inject_partial_append` with a multi-record batch in flight).
    MidGroupCommit,
}

impl CrashPoint {
    /// All crash points, in rotation order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::MidAppend,
        CrashPoint::TornTail,
        CrashPoint::DroppedFsync,
        CrashPoint::MidSnapshot,
        CrashPoint::MidGroupCommit,
    ];
}

/// One round of a crash plan: run `after_ops` operations, then die at
/// `point`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Operations (publishes/acks, driver-counted) to run before dying.
    /// Always at least 1, so every round does some work first.
    pub after_ops: u64,
    /// Which crash point kills this round.
    pub point: CrashPoint,
    /// For tearing points: how many bytes to cut off the tail (in
    /// `[1, 64]`). Points that don't tear ignore it.
    pub cut_back: u64,
}

/// A seeded schedule of crash-restart rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// The rounds, in execution order.
    pub events: Vec<CrashEvent>,
}

impl CrashPlan {
    /// Generates a plan of `rounds` crash events, each landing within a
    /// round of at most `ops_per_round` operations.
    ///
    /// Coverage guarantee: crash points are assigned by rotation from a
    /// seeded starting offset, so any `rounds >= CrashPoint::ALL.len()`
    /// exercises every point at least once — randomness varies the order
    /// and timing, never the coverage.
    pub fn generate(seed: u64, rounds: usize, ops_per_round: u64) -> CrashPlan {
        let mut rng = SeededRng::new(seed);
        let ops_per_round = ops_per_round.max(1);
        let start = rng.gen_below(CrashPoint::ALL.len() as u64) as usize;
        let events = (0..rounds)
            .map(|i| CrashEvent {
                after_ops: rng.gen_range(1, ops_per_round + 1),
                point: CrashPoint::ALL[(start + i) % CrashPoint::ALL.len()],
                cut_back: rng.gen_range(1, 65),
            })
            .collect();
        CrashPlan { seed, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_plan() {
        let a = CrashPlan::generate(0x5EED, 12, 40);
        let b = CrashPlan::generate(0x5EED, 12, 40);
        assert_eq!(a, b);
        assert_ne!(a, CrashPlan::generate(0x5EEE, 12, 40));
    }

    #[test]
    fn every_point_is_covered_per_rotation_window() {
        for seed in 0..16u64 {
            let plan = CrashPlan::generate(seed, 8, 40);
            let first_window: HashSet<CrashPoint> = plan.events[..CrashPoint::ALL.len()]
                .iter()
                .map(|e| e.point)
                .collect();
            assert_eq!(
                first_window.len(),
                CrashPoint::ALL.len(),
                "seed {seed}: one full rotation covers every crash point"
            );
        }
    }

    #[test]
    fn bounds_hold_for_many_seeds() {
        for seed in 0..32u64 {
            let plan = CrashPlan::generate(seed, 10, 25);
            assert_eq!(plan.events.len(), 10);
            for e in &plan.events {
                assert!((1..=25).contains(&e.after_ops), "after_ops in [1, cap]");
                assert!((1..=64).contains(&e.cut_back), "cut_back in [1, 64]");
            }
        }
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let plan = CrashPlan::generate(7, 0, 0);
        assert!(plan.events.is_empty());
        let plan = CrashPlan::generate(7, 3, 1);
        assert!(plan.events.iter().all(|e| e.after_ops == 1));
    }
}
