//! Deterministic fault-injection plane for the Synapse reproduction.
//!
//! The paper's §6.5 postmortem describes a production incident where a
//! dead dependency wedged the whole replication pipeline. Reproducing
//! that class of failure — and proving the hardening that prevents it —
//! requires injecting faults *deterministically*: the same seed must
//! produce the same schedule of broker drops, publish failures, restarts,
//! shard kills, and database errors on every run, so that counter totals
//! can be asserted exactly.
//!
//! The plane has four pieces:
//!
//! * [`SeededRng`] — a splitmix64 stream; the only source of randomness.
//! * [`FaultClock`] — a logical tick counter advanced by the test driver
//!   once per unit of work, replacing wall-clock time.
//! * [`FaultPlan`] — a seeded schedule of [`FaultEvent`]s pinned to
//!   ticks; generated plans pair every shard kill with a later revive so
//!   the system always has a path out of the §6.5 wedge.
//! * [`Injector`] — dispatches due events onto live broker /
//!   version-store / db handles and keeps deterministic
//!   [`InjectorStats`].
//!
//! Everything here is countdown-based ("fail the next n writes"), never
//! probabilistic at the substrate: probability lives only in plan
//! generation, where it is pinned by the seed.

pub mod clock;
pub mod crash;
pub mod hook;
pub mod injector;
pub mod plan;
pub mod rng;

pub use clock::FaultClock;
pub use crash::{CrashEvent, CrashPlan, CrashPoint};
pub use hook::PhaseHook;
pub use injector::{Injector, InjectorStats};
pub use plan::{FaultEvent, FaultKind, FaultPlan, FaultSpec, Side};
pub use rng::SeededRng;
