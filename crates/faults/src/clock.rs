//! Logical clock driving fault schedules.
//!
//! Fault plans fire on *logical ticks*, not wall-clock time: the soak
//! driver ticks the clock once per unit of work (one publish, one apply),
//! so a plan event at tick 37 always lands between the same two operations
//! regardless of scheduler timing. This is what makes injected-fault
//! counters reproducible across runs of the same seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared monotonically increasing tick counter; clones share state.
#[derive(Debug, Clone, Default)]
pub struct FaultClock {
    ticks: Arc<AtomicU64>,
}

impl FaultClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by one tick and returns the new tick value.
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Current tick without advancing.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic_and_shared() {
        let clock = FaultClock::new();
        let other = clock.clone();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.tick(), 1);
        assert_eq!(other.tick(), 2);
        assert_eq!(clock.now(), 2);
    }
}
