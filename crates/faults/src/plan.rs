//! Seeded fault schedules.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s, each pinned to a
//! logical tick of a [`FaultClock`](crate::FaultClock). Plans are either
//! hand-written ([`FaultPlan::from_events`]) or generated from a seed and a
//! [`FaultSpec`] ([`FaultPlan::generate`]); generation is a pure function
//! of `(seed, spec)`, so the same pair always yields the same schedule.
//!
//! Generated plans are *recoverable by construction*: every
//! [`FaultKind::KillShard`] is paired with a [`FaultKind::ReviveShards`]
//! scheduled strictly later, mirroring the paper's §6.5 postmortem — the
//! incident wedged because the system had no automatic path back from a
//! dead dependency, and the reproduction must always be able to exercise
//! that path.

use crate::rng::SeededRng;

/// Which side of the pub/sub pair a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    Publisher,
    Subscriber,
}

impl Side {
    /// Stable array index for per-side lookup tables.
    pub fn index(self) -> usize {
        match self {
            Side::Publisher => 0,
            Side::Subscriber => 1,
        }
    }
}

/// One injectable fault. Countdown faults (`n`, `ops`) arm the next so
/// many operations rather than firing probabilistically, keeping
/// injection counts deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Broker silently drops the next `n` deliveries to the target queue
    /// (lost-message fault; §4.2's at-least-once machinery must re-cover).
    DropMessages { n: u64 },
    /// Broker refuses the next `n` publishes with a transient error
    /// (publisher must retry against its journal).
    PublishFailures { n: u64 },
    /// Broker restart: all unacked deliveries return to ready state and
    /// are redelivered (at-least-once redelivery storm).
    BrokerRestart,
    /// Kill one version-store shard on the given side (§6.5-style
    /// dependency-store death; blocked waiters wake with an error).
    KillShard { side: Side, shard: usize },
    /// Revive all dead shards on the given side.
    ReviveShards { side: Side },
    /// Fail the next `n` database writes on the given side with a
    /// transient `Unavailable` error.
    DbWriteErrors { side: Side, n: u64 },
    /// Delay the next `ops` database writes on the given side by
    /// `micros` each.
    DbLatencySpike { side: Side, ops: u64, micros: u64 },
}

/// A fault pinned to a logical tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub at_tick: u64,
    pub kind: FaultKind,
}

/// Shape parameters for generated plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Ticks covered by the plan; events land in `[1, horizon]`.
    pub horizon: u64,
    /// Number of primary events to generate (paired revives come extra).
    pub events: usize,
    /// Shard count of the targeted version stores.
    pub shards: usize,
    /// Maximum countdown for burst faults (drops, publish failures,
    /// write errors, spikes).
    pub max_burst: u64,
    /// Extra latency charged per spiked operation, in microseconds.
    pub spike_micros: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            horizon: 1_000,
            events: 32,
            shards: 4,
            max_burst: 3,
            spike_micros: 200,
        }
    }
}

/// An ordered, consumable schedule of fault events.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// Generates a plan as a pure function of `(seed, spec)`.
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SeededRng::new(seed);
        let mut events = Vec::with_capacity(spec.events * 2);
        for _ in 0..spec.events {
            let at_tick = rng.gen_range(1, spec.horizon + 1);
            let kind = match rng.gen_below(7) {
                0 => FaultKind::DropMessages {
                    n: rng.gen_range(1, spec.max_burst + 1),
                },
                1 => FaultKind::PublishFailures {
                    n: rng.gen_range(1, spec.max_burst + 1),
                },
                2 => FaultKind::BrokerRestart,
                3 => {
                    let side = pick_side(&mut rng);
                    let shard = rng.gen_below(spec.shards.max(1) as u64) as usize;
                    FaultKind::KillShard { side, shard }
                }
                4 => FaultKind::ReviveShards {
                    side: pick_side(&mut rng),
                },
                5 => FaultKind::DbWriteErrors {
                    side: pick_side(&mut rng),
                    n: rng.gen_range(1, spec.max_burst + 1),
                },
                _ => FaultKind::DbLatencySpike {
                    side: pick_side(&mut rng),
                    ops: rng.gen_range(1, spec.max_burst + 1),
                    micros: spec.spike_micros,
                },
            };
            events.push(FaultEvent { at_tick, kind });
            // Recoverability invariant: every kill is followed by a revive
            // strictly later in the schedule (possibly past the horizon).
            if let FaultKind::KillShard { side, .. } = kind {
                let delay = rng.gen_range(1, (spec.horizon / 8).max(2));
                events.push(FaultEvent {
                    at_tick: at_tick + delay,
                    kind: FaultKind::ReviveShards { side },
                });
            }
        }
        Self::sorted(seed, events)
    }

    /// Builds a plan from explicit events (sorted by tick, stable).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        Self::sorted(0, events)
    }

    fn sorted(seed: u64, mut events: Vec<FaultEvent>) -> Self {
        // Stable sort keeps same-tick events in insertion order, which is
        // part of the determinism contract.
        events.sort_by_key(|e| e.at_tick);
        Self {
            seed,
            events,
            cursor: 0,
        }
    }

    /// Seed the plan was generated from (0 for hand-written plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All events, in firing order (including already-consumed ones).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events not yet consumed by [`FaultPlan::take_due`].
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Consumes and returns every event scheduled at or before `tick`.
    pub fn take_due(&mut self, tick: u64) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at_tick <= tick {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }
}

fn pick_side(rng: &mut SeededRng) -> Side {
    if rng.gen_ratio(1, 2) {
        Side::Publisher
    } else {
        Side::Subscriber
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(0xFEED, &spec);
        let b = FaultPlan::generate(0xFEED, &spec);
        assert_eq!(a.events(), b.events());
        assert!(!a.events().is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(1, &spec);
        let b = FaultPlan::generate(2, &spec);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn every_kill_has_a_later_revive_on_the_same_side() {
        let spec = FaultSpec {
            events: 64,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0xC0FFEE, &spec);
        for (i, event) in plan.events().iter().enumerate() {
            if let FaultKind::KillShard { side, .. } = event.kind {
                let healed = plan.events()[i..].iter().any(|later| {
                    later.at_tick > event.at_tick && later.kind == FaultKind::ReviveShards { side }
                });
                assert!(healed, "kill at tick {} never revived", event.at_tick);
            }
        }
    }

    #[test]
    fn take_due_drains_in_order_without_replay() {
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent {
                at_tick: 5,
                kind: FaultKind::BrokerRestart,
            },
            FaultEvent {
                at_tick: 2,
                kind: FaultKind::DropMessages { n: 1 },
            },
            FaultEvent {
                at_tick: 9,
                kind: FaultKind::PublishFailures { n: 2 },
            },
        ]);
        assert_eq!(plan.take_due(1), vec![]);
        let due = plan.take_due(5);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].at_tick, 2);
        assert_eq!(due[1].at_tick, 5);
        assert_eq!(plan.take_due(5), vec![]);
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.take_due(100).len(), 1);
    }
}
