//! Bootstrap-phase fault hook.
//!
//! The fault plan pins events to *ticks* of the driver's logical clock,
//! which works for steady-state soaks but cannot aim a fault at a moment
//! inside a recovery protocol ("kill a shard while the copier is on its
//! second chunk"). A [`PhaseHook`] closes that gap: tests register faults
//! against named protocol phases (the labels are chosen by the test — for
//! bootstrap they are typically `"snapshot"`, `"copying"`, `"reconciling"`,
//! `"finalizing"`),
//! and the system under test reports each phase entry through
//! [`PhaseHook::enter`], which fires every registration due at that entry
//! through the [`Injector`].
//!
//! Registrations are `(phase, nth-entry, fault)` triples, so a test can
//! let the first chunk copy cleanly and strike the second — deterministic
//! by construction: phase entries are a property of the protocol, not of
//! thread timing.

use crate::injector::Injector;
use crate::plan::FaultKind;
use std::collections::HashMap;

/// One registered phase fault.
#[derive(Debug, Clone)]
struct PhaseFault {
    /// 1-based entry count of the phase at which to fire.
    at_entry: u64,
    fault: FaultKind,
    fired: bool,
}

/// Registry of faults keyed to protocol-phase entries.
#[derive(Debug, Default)]
pub struct PhaseHook {
    /// Phase label → entry counter (how many times the phase was entered).
    entries: HashMap<String, u64>,
    /// Phase label → registered faults.
    faults: HashMap<String, Vec<PhaseFault>>,
}

impl PhaseHook {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `fault` to fire the `at_entry`-th time (1-based) the named
    /// phase is entered. Multiple faults may be armed on the same entry;
    /// they fire in registration order.
    pub fn on_entry(&mut self, phase: &str, at_entry: u64, fault: FaultKind) {
        self.faults
            .entry(phase.to_owned())
            .or_default()
            .push(PhaseFault {
                at_entry: at_entry.max(1),
                fault,
                fired: false,
            });
    }

    /// Reports that the system under test entered `phase`; fires every
    /// registration due at this entry through `injector`. Returns how many
    /// faults fired. Each registration fires at most once.
    pub fn enter(&mut self, phase: &str, injector: &mut Injector) -> usize {
        let count = self.entries.entry(phase.to_owned()).or_insert(0);
        *count += 1;
        let entry = *count;
        let mut fired = 0;
        if let Some(faults) = self.faults.get_mut(phase) {
            for f in faults.iter_mut() {
                if !f.fired && f.at_entry == entry {
                    f.fired = true;
                    injector.apply(&f.fault);
                    fired += 1;
                }
            }
        }
        fired
    }

    /// How many times `phase` has been entered so far.
    pub fn entries(&self, phase: &str) -> u64 {
        self.entries.get(phase).copied().unwrap_or(0)
    }

    /// Whether every registered fault has fired.
    pub fn exhausted(&self) -> bool {
        self.faults.values().all(|fs| fs.iter().all(|f| f.fired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;
    use synapse_broker::Broker;

    fn harness() -> (Broker, Injector) {
        let broker = Broker::new();
        broker.declare_queue("q", Default::default());
        let injector = Injector::new(broker.clone(), "q");
        (broker, injector)
    }

    #[test]
    fn fires_only_on_the_registered_entry_and_only_once() {
        let (_broker, mut injector) = harness();
        let mut hook = PhaseHook::new();
        hook.on_entry("copying", 2, FaultKind::DropMessages { n: 3 });

        assert_eq!(hook.enter("copying", &mut injector), 0, "first entry clean");
        assert_eq!(
            hook.enter("copying", &mut injector),
            1,
            "second entry fires"
        );
        assert_eq!(hook.enter("copying", &mut injector), 0, "no re-fire");
        assert_eq!(injector.stats().drops_scheduled, 3);
        assert_eq!(hook.entries("copying"), 3);
        assert!(hook.exhausted());
    }

    #[test]
    fn phases_are_independent_and_stack_on_one_entry() {
        let (_broker, mut injector) = harness();
        let mut hook = PhaseHook::new();
        hook.on_entry("snapshot", 1, FaultKind::PublishFailures { n: 2 });
        hook.on_entry("copying", 1, FaultKind::DropMessages { n: 1 });
        hook.on_entry("copying", 1, FaultKind::BrokerRestart);

        assert_eq!(
            hook.enter("reconciling", &mut injector),
            0,
            "unregistered phase"
        );
        assert_eq!(hook.enter("snapshot", &mut injector), 1);
        assert_eq!(
            hook.enter("copying", &mut injector),
            2,
            "both fire in order"
        );
        assert_eq!(injector.stats().publish_failures_scheduled, 2);
        assert_eq!(injector.stats().drops_scheduled, 1);
        assert_eq!(injector.stats().broker_restarts, 1);
        assert!(hook.exhausted());
    }
}
