//! Seeded random source for fault plans.
//!
//! The fault plane never consults wall-clock time or OS entropy: every
//! random choice flows from one `u64` seed through splitmix64, so a plan
//! generated from seed `S` is byte-identical on every machine and every
//! run. [`SeededRng::fork`] derives independent child streams (e.g. one
//! per soak phase) without the parent and child ever sharing draws.

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw draw (splitmix64 output function).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "gen_below(0)");
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi)`; `lo < hi` required.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_below(hi - lo)
    }

    /// Bernoulli draw that fires `num` times out of `den`.
    pub fn gen_ratio(&mut self, num: u64, den: u64) -> bool {
        self.gen_below(den) < num
    }

    /// Derives an independent child stream. The label decorrelates
    /// siblings forked from the same parent state.
    pub fn fork(&mut self, label: u64) -> SeededRng {
        let mixed = self
            .next_u64()
            .wrapping_add(label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SeededRng::new(mixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_diverge_from_parent_and_siblings() {
        let mut parent = SeededRng::new(7);
        let mut left = parent.fork(0);
        let mut right = parent.fork(1);
        let (l, r, p) = (left.next_u64(), right.next_u64(), parent.next_u64());
        assert_ne!(l, r);
        assert_ne!(l, p);
        assert_ne!(r, p);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SeededRng::new(99);
        for _ in 0..1000 {
            let v = rng.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
