//! Error type for the model layer.

use std::fmt;

/// Errors raised while manipulating dynamic values, records, or schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An attribute value did not have the type required by the schema.
    TypeMismatch {
        /// Model the attribute belongs to.
        model: String,
        /// Attribute name.
        field: String,
        /// Human-readable description of the expected type.
        expected: &'static str,
        /// Human-readable description of the actual value.
        actual: String,
    },
    /// A field was referenced that the schema does not declare.
    UnknownField {
        /// Model the lookup was performed on.
        model: String,
        /// The missing field name.
        field: String,
    },
    /// A model was referenced that the schema set does not declare.
    UnknownModel(String),
    /// Wire-format text could not be parsed.
    Parse {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A structural expectation on decoded wire data was violated.
    Malformed(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TypeMismatch {
                model,
                field,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on {model}.{field}: expected {expected}, got {actual}"
            ),
            ModelError::UnknownField { model, field } => {
                write!(f, "unknown field {model}.{field}")
            }
            ModelError::UnknownModel(m) => write!(f, "unknown model {m}"),
            ModelError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            ModelError::Malformed(m) => write!(f, "malformed wire data: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}
