//! Model schemas: field declarations, types, and associations.
//!
//! A [`ModelSchema`] is the Rust equivalent of a Rails model class body: the
//! set of persisted fields (with optional types — document stores are
//! schemaless and accept anything), the associations (`belongs_to` /
//! `has_many`), and the inheritance chain used for polymorphic replication
//! (§4.1: "Synapse also includes each object's complete inheritance tree").

use crate::error::ModelError;
use crate::value::Value;
use std::collections::BTreeMap;

/// Runtime type expected for a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// No constraint — any [`Value`] is accepted (schemaless stores).
    Any,
    /// [`Value::Bool`].
    Bool,
    /// [`Value::Int`].
    Int,
    /// [`Value::Float`] (or an [`Value::Int`], widened).
    Float,
    /// [`Value::Str`].
    Str,
    /// [`Value::Array`] (MongoDB array type, Example 3 in the paper).
    Array,
    /// [`Value::Map`] (embedded document).
    Map,
}

impl FieldType {
    /// Checks whether `v` conforms to this type. `Null` conforms to every
    /// type (fields are nullable, as in Rails).
    pub fn accepts(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (FieldType::Any, _)
                | (FieldType::Bool, Value::Bool(_))
                | (FieldType::Int, Value::Int(_))
                | (FieldType::Float, Value::Float(_) | Value::Int(_))
                | (FieldType::Str, Value::Str(_))
                | (FieldType::Array, Value::Array(_))
                | (FieldType::Map, Value::Map(_))
        )
    }

    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            FieldType::Any => "any",
            FieldType::Bool => "bool",
            FieldType::Int => "int",
            FieldType::Float => "float",
            FieldType::Str => "string",
            FieldType::Array => "array",
            FieldType::Map => "map",
        }
    }
}

/// A declared persisted field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Expected runtime type.
    pub ty: FieldType,
    /// Whether the engine should maintain a secondary index on this field.
    pub indexed: bool,
}

/// Kind of association between models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssociationKind {
    /// This model holds a `<name>_id` foreign key to the target.
    BelongsTo,
    /// The target holds a foreign key back to this model.
    HasMany,
}

/// A declared association (`belongs_to :user`, `has_many :comments`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// Association name (e.g. `user1`, `friendships`).
    pub name: String,
    /// Target model name (e.g. `User`).
    pub target: String,
    /// Kind of the association.
    pub kind: AssociationKind,
}

impl Association {
    /// The foreign-key field implied by a `belongs_to` association.
    pub fn foreign_key(&self) -> String {
        format!("{}_id", self.name)
    }
}

/// Schema of a single model.
#[derive(Debug, Clone)]
pub struct ModelSchema {
    /// Model name, e.g. `User`.
    pub name: String,
    /// Inheritance chain above this model, closest ancestor first (e.g.
    /// `AdminUser` might have `["User"]`). Used to serve polymorphic
    /// subscriptions.
    pub ancestors: Vec<String>,
    /// Declared fields by name.
    pub fields: BTreeMap<String, FieldDef>,
    /// Declared associations by name.
    pub associations: BTreeMap<String, Association>,
    /// Whether undeclared attributes are accepted (document stores).
    pub open: bool,
}

impl ModelSchema {
    /// Creates a closed (strict) schema with no fields.
    pub fn new(name: impl Into<String>) -> Self {
        ModelSchema {
            name: name.into(),
            ancestors: Vec::new(),
            fields: BTreeMap::new(),
            associations: BTreeMap::new(),
            open: false,
        }
    }

    /// Creates an open (schemaless) schema, as used by document stores.
    pub fn open(name: impl Into<String>) -> Self {
        let mut s = Self::new(name);
        s.open = true;
        s
    }

    /// Declares a field with [`FieldType::Any`].
    pub fn field(self, name: impl Into<String>) -> Self {
        self.typed_field(name, FieldType::Any)
    }

    /// Declares a field with an explicit type.
    pub fn typed_field(mut self, name: impl Into<String>, ty: FieldType) -> Self {
        let name = name.into();
        self.fields.insert(
            name.clone(),
            FieldDef {
                name,
                ty,
                indexed: false,
            },
        );
        self
    }

    /// Declares an indexed field with an explicit type.
    pub fn indexed_field(mut self, name: impl Into<String>, ty: FieldType) -> Self {
        let name = name.into();
        self.fields.insert(
            name.clone(),
            FieldDef {
                name,
                ty,
                indexed: true,
            },
        );
        self
    }

    /// Declares a `belongs_to` association; also declares the implied
    /// indexed foreign-key field.
    pub fn belongs_to(mut self, name: impl Into<String>, target: impl Into<String>) -> Self {
        let assoc = Association {
            name: name.into(),
            target: target.into(),
            kind: AssociationKind::BelongsTo,
        };
        let fk = assoc.foreign_key();
        self.associations.insert(assoc.name.clone(), assoc);
        self.indexed_field(fk, FieldType::Int)
    }

    /// Declares a `has_many` association (no local field is created; the
    /// target model holds the foreign key).
    pub fn has_many(mut self, name: impl Into<String>, target: impl Into<String>) -> Self {
        let assoc = Association {
            name: name.into(),
            target: target.into(),
            kind: AssociationKind::HasMany,
        };
        self.associations.insert(assoc.name.clone(), assoc);
        self
    }

    /// Sets the inheritance chain above this model, closest ancestor first.
    pub fn inherits(mut self, ancestors: &[&str]) -> Self {
        self.ancestors = ancestors.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// The full type chain for marshalling: `[name, ancestors...]`.
    pub fn type_chain(&self) -> Vec<String> {
        let mut chain = Vec::with_capacity(1 + self.ancestors.len());
        chain.push(self.name.clone());
        chain.extend(self.ancestors.iter().cloned());
        chain
    }

    /// Validates one attribute assignment against the schema.
    pub fn check_attr(&self, field: &str, value: &Value) -> Result<(), ModelError> {
        match self.fields.get(field) {
            Some(def) => {
                if def.ty.accepts(value) {
                    Ok(())
                } else {
                    Err(ModelError::TypeMismatch {
                        model: self.name.clone(),
                        field: field.to_owned(),
                        expected: def.ty.name(),
                        actual: value.type_name().to_owned(),
                    })
                }
            }
            None if self.open => Ok(()),
            None => Err(ModelError::UnknownField {
                model: self.name.clone(),
                field: field.to_owned(),
            }),
        }
    }

    /// Validates a whole attribute map.
    pub fn check_attrs<'a>(
        &self,
        attrs: impl IntoIterator<Item = (&'a String, &'a Value)>,
    ) -> Result<(), ModelError> {
        for (k, v) in attrs {
            self.check_attr(k, v)?;
        }
        Ok(())
    }
}

/// A set of model schemas forming one service's data model.
#[derive(Debug, Clone, Default)]
pub struct SchemaSet {
    models: BTreeMap<String, ModelSchema>,
}

impl SchemaSet {
    /// Creates an empty schema set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a model schema.
    pub fn define(&mut self, schema: ModelSchema) -> &mut Self {
        self.models.insert(schema.name.clone(), schema);
        self
    }

    /// Looks up a model schema.
    pub fn get(&self, model: &str) -> Result<&ModelSchema, ModelError> {
        self.models
            .get(model)
            .ok_or_else(|| ModelError::UnknownModel(model.to_owned()))
    }

    /// Returns `true` if the model is defined.
    pub fn contains(&self, model: &str) -> bool {
        self.models.contains_key(model)
    }

    /// Iterates over all model schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ModelSchema> {
        self.models.values()
    }

    /// Names of all defined models.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    fn user_schema() -> ModelSchema {
        ModelSchema::new("User")
            .typed_field("name", FieldType::Str)
            .typed_field("age", FieldType::Int)
            .has_many("friendships", "Friendship")
    }

    #[test]
    fn field_types_accept_conforming_values() {
        assert!(FieldType::Str.accepts(&Value::from("x")));
        assert!(FieldType::Float.accepts(&Value::from(3i64)));
        assert!(FieldType::Int.accepts(&Value::Null), "fields are nullable");
        assert!(!FieldType::Int.accepts(&Value::from("x")));
        assert!(FieldType::Any.accepts(&vmap! {"a" => 1}));
    }

    #[test]
    fn closed_schema_rejects_unknown_fields() {
        let s = user_schema();
        assert!(s.check_attr("name", &Value::from("alice")).is_ok());
        let err = s.check_attr("nope", &Value::from(1)).unwrap_err();
        assert!(matches!(err, ModelError::UnknownField { .. }));
    }

    #[test]
    fn open_schema_accepts_anything() {
        let s = ModelSchema::open("Doc");
        assert!(s.check_attr("whatever", &vmap! {"x" => 1}).is_ok());
    }

    #[test]
    fn type_mismatch_is_reported() {
        let s = user_schema();
        let err = s.check_attr("age", &Value::from("old")).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn belongs_to_declares_indexed_foreign_key() {
        let s = ModelSchema::new("Comment").belongs_to("post", "Post");
        let fk = s.fields.get("post_id").expect("foreign key field");
        assert!(fk.indexed);
        assert_eq!(fk.ty, FieldType::Int);
        assert_eq!(
            s.associations.get("post").unwrap().kind,
            AssociationKind::BelongsTo
        );
    }

    #[test]
    fn type_chain_includes_ancestors() {
        let s = ModelSchema::new("AdminUser").inherits(&["User"]);
        assert_eq!(s.type_chain(), vec!["AdminUser", "User"]);
    }

    #[test]
    fn schema_set_lookup() {
        let mut set = SchemaSet::new();
        set.define(user_schema());
        assert!(set.get("User").is_ok());
        assert!(matches!(
            set.get("Ghost").unwrap_err(),
            ModelError::UnknownModel(_)
        ));
        assert_eq!(set.model_names(), vec!["User"]);
    }
}
