//! Hand-written JSON wire format.
//!
//! Synapse write messages are JSON (Fig. 6(b) in the paper). The encoder and
//! parser here are written from scratch so the reproduction controls every
//! byte that crosses the broker: encoding is canonical (map keys sorted,
//! minimal escapes) which lets tests compare messages textually.
//!
//! The grammar is standard JSON with one extension on the *decode* side
//! only: integers that fit `i64` parse to [`Value::Int`], everything else
//! numeric to [`Value::Float`].

use crate::error::ModelError;
use crate::value::Value;
use std::collections::BTreeMap;

/// Encodes a [`Value`] to canonical JSON.
///
/// # Examples
///
/// ```
/// use synapse_model::{vmap, wire};
///
/// let v = vmap! { "id" => 100, "name" => "alice" };
/// assert_eq!(wire::encode(&v), r#"{"id":100,"name":"alice"}"#);
/// ```
pub fn encode(value: &Value) -> String {
    let mut out = String::with_capacity(64);
    encode_into(value, &mut out);
    out
}

/// Encodes a [`Value`] into an existing buffer, avoiding reallocation on the
/// publisher hot path.
pub fn encode_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => encode_i64(*i, out),
        Value::Float(x) => encode_float(*x, out),
        Value::Str(s) => encode_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_into(item, out);
            }
            out.push(']');
        }
        Value::Map(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_string(k, out);
                out.push(':');
                encode_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Appends the decimal digits of `i` — same bytes as `i64`'s `Display`,
/// but written through a stack buffer instead of an intermediate `String`.
pub fn encode_i64(i: i64, out: &mut String) {
    if i < 0 {
        out.push('-');
    }
    encode_u64(i.unsigned_abs(), out);
}

/// Appends the decimal digits of `u` with no heap allocation.
pub fn encode_u64(u: u64, out: &mut String) {
    // u64::MAX is 20 digits.
    let mut buf = [0u8; 20];
    let mut pos = buf.len();
    let mut rest = u;
    loop {
        pos -= 1;
        buf[pos] = b'0' + (rest % 10) as u8;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[pos..]).expect("ascii digits"));
}

fn encode_float(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{}` on f64 never uses scientific notation, so subnormals print
        // hundreds of digits (5e-324 is ~326 chars): format onto the stack
        // and fall back to the heap only past that.
        let mut buf = FloatBuf::default();
        let s = match std::fmt::Write::write_fmt(&mut buf, format_args!("{x}")) {
            Ok(()) => buf.as_str(),
            Err(_) => {
                let s = x.to_string();
                out.push_str(&s);
                finish_float(&s, out);
                return;
            }
        };
        out.push_str(s);
        finish_float(s, out);
    } else {
        // JSON has no NaN/Infinity; Synapse never publishes them, but the
        // encoder must stay total.
        out.push_str("null");
    }
}

/// Keeps floats round-trippable as floats: `2.0` must not encode as `2`,
/// which would decode to an Int.
fn finish_float(formatted: &str, out: &mut String) {
    if !formatted.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Fixed-capacity `fmt::Write` sink for float formatting; errors on
/// overflow so the caller can fall back.
struct FloatBuf {
    buf: [u8; 512],
    len: usize,
}

impl Default for FloatBuf {
    fn default() -> Self {
        FloatBuf {
            buf: [0; 512],
            len: 0,
        }
    }
}

impl FloatBuf {
    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len]).expect("float digits are ascii")
    }
}

impl std::fmt::Write for FloatBuf {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let bytes = s.as_bytes();
        if self.len + bytes.len() > self.buf.len() {
            return Err(std::fmt::Error);
        }
        self.buf[self.len..self.len + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
        Ok(())
    }
}

/// Appends `s` as a JSON string literal (quoted, minimally escaped) — the
/// canonical escaping used everywhere a key or string crosses the wire.
pub fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // c < 0x20, so the escape is always "\u00" + 2 hex digits.
                const HEX: &[u8; 16] = b"0123456789abcdef";
                let b = c as u32;
                out.push_str("\\u00");
                out.push(HEX[(b >> 4) as usize] as char);
                out.push(HEX[(b & 0xf) as usize] as char);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn encode_string(s: &str, out: &mut String) {
    encode_str(s, out);
}

/// Parses JSON text into a [`Value`].
///
/// # Examples
///
/// ```
/// use synapse_model::wire;
///
/// let v = wire::decode(r#"{"interests":["cats","dogs"]}"#).unwrap();
/// assert_eq!(v.get("interests").as_array().unwrap().len(), 2);
/// ```
pub fn decode(text: &str) -> Result<Value, ModelError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ModelError {
        ModelError::Parse {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ModelError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ModelError> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, ModelError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected {lit}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, ModelError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, ModelError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ModelError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        let ch = if (0xd800..0xdc00).contains(&cp) {
                            // Surrogate pair: require a low surrogate next.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        s.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from raw bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ModelError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, ModelError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{varray, vmap};

    fn roundtrip(v: &Value) -> Value {
        decode(&encode(v)).expect("roundtrip decode")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Float(-1e-9),
            Value::Str(String::new()),
            Value::from("héllo \"wörld\"\n\t\\"),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Value::Float(2.0);
        assert_eq!(encode(&v), "2.0");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vmap! {
            "app" => "pub3",
            "operations" => varray![vmap! {
                "operation" => "update",
                "type" => varray!["User"],
                "id" => 100,
                "attributes" => vmap! { "interests" => varray!["cats", "dogs"] }
            }],
            "generation" => 1,
        };
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn encoding_is_canonical_and_sorted() {
        let v = vmap! { "b" => 2, "a" => 1 };
        assert_eq!(encode(&v), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn decode_accepts_whitespace() {
        let v = decode(" {\n\t\"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v, vmap! { "a" => varray![1, 2], "b" => Value::Null });
    }

    #[test]
    fn decode_rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "nul",
            "tru",
            "01x",
            "-",
            "\"abc",
            "\"\\q\"",
            "{\"a\":1,}",
            "[1 2]",
            "1 2",
            "\"\\u12\"",
            "{1:2}",
        ] {
            assert!(decode(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn decode_handles_unicode_escapes() {
        assert_eq!(decode(r#""é""#).unwrap(), Value::from("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(decode(r#""😀""#).unwrap(), Value::from("😀"));
        assert!(decode(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn control_characters_escape_and_roundtrip() {
        let v = Value::from("\u{0001}\u{001f}");
        assert_eq!(encode(&v), "\"\\u0001\\u001f\"");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(encode(&Value::from(f64::NAN)), "null");
        assert_eq!(encode(&Value::from(f64::INFINITY)), "null");
    }

    /// The stack-buffer integer formatter must emit exactly `Display`'s
    /// bytes — the wire format is pinned byte-for-byte.
    #[test]
    fn int_formatting_matches_display() {
        for i in [0i64, 1, -1, 7, -42, 1000, i64::MAX, i64::MIN] {
            let mut out = String::new();
            encode_i64(i, &mut out);
            assert_eq!(out, i.to_string());
        }
        let mut out = String::new();
        encode_u64(u64::MAX, &mut out);
        assert_eq!(out, u64::MAX.to_string());
    }

    /// The stack-buffer float formatter must emit exactly what the old
    /// `format!`-based encoder produced, including the widest finite
    /// values (f64 `Display` never uses scientific notation, so
    /// subnormals print hundreds of digits).
    #[test]
    fn float_formatting_matches_display() {
        for x in [
            0.0f64,
            -0.0,
            2.0,
            3.25,
            -1e-9,
            5e-324,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
        ] {
            let mut out = String::new();
            encode_float(x, &mut out);
            let s = format!("{x}");
            let expected = if s.contains(['.', 'e', 'E']) {
                s
            } else {
                format!("{s}.0")
            };
            assert_eq!(out, expected, "float {x:e}");
        }
    }

    #[test]
    fn huge_integers_fall_back_to_float() {
        let v = decode("92233720368547758080").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }
}
