//! Runtime-typed attribute values.
//!
//! [`Value`] plays the role that Ruby objects play in the original Synapse:
//! every attribute of every model instance is one of a small set of dynamic
//! types that all database engines and ORM adapters understand. Engines with
//! richer native types (e.g. MongoDB arrays, Elasticsearch analyzed text)
//! map onto [`Value::Array`] / [`Value::Str`]; engines with poorer types
//! (e.g. SQL without arrays) translate in their adapters, exactly as the
//! paper's Example 3 (§3.3) describes.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed attribute value.
///
/// `Value` implements a *total* order (floats via [`f64::total_cmp`]) so it
/// can serve as a key in ordered secondary indexes inside the engines.
///
/// # Examples
///
/// ```
/// use synapse_model::Value;
///
/// let interests = Value::from(vec![Value::from("cats"), Value::from("dogs")]);
/// assert_eq!(interests.as_array().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Absent / SQL NULL / Ruby nil.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list of values (MongoDB array type, Example 3 in the paper).
    Array(Vec<Value>),
    /// String-keyed map (document/embedded object).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Returns a short name for the value's runtime type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array payload, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the map payload, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key in a [`Value::Map`], returning [`Value::Null`] when
    /// absent or when `self` is not a map (Ruby `obj[key]` semantics).
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Approximate in-memory footprint in bytes, used by engines to report
    /// storage statistics.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::Array(a) => a.iter().map(Value::approx_size).sum::<usize>() + 16,
            Value::Map(m) => {
                m.iter()
                    .map(|(k, v)| k.len() + v.approx_size())
                    .sum::<usize>()
                    + 16
            }
        }
    }

    /// Rank used to order values of different runtime types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Array(_) => 5,
            Value::Map(_) => 6,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            // Mixed numeric comparison keeps `1` and `1.0` distinct in
            // indexes but numerically ordered relative to each other.
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Array(a), Array(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.iter().cmp(b.iter()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Array(a) => a.hash(state),
            Value::Map(m) => {
                for (k, v) in m {
                    k.hash(state);
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    /// Delegates to the canonical wire encoding so logs show the same JSON
    /// the broker ships.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::wire::encode(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Self {
        Value::Map(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Builds a [`Value::Map`] from `key => value` pairs.
///
/// # Examples
///
/// ```
/// use synapse_model::{vmap, Value};
///
/// let user = vmap! { "name" => "alice", "age" => 30 };
/// assert_eq!(user.get("name").as_str(), Some("alice"));
/// ```
#[macro_export]
macro_rules! vmap {
    () => { $crate::Value::Map(std::collections::BTreeMap::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut m = std::collections::BTreeMap::new();
        $( m.insert($k.to_string(), $crate::Value::from($v)); )+
        $crate::Value::Map(m)
    }};
}

/// Builds a [`Value::Array`] from elements convertible to [`Value`].
#[macro_export]
macro_rules! varray {
    ( $( $v:expr ),* $(,)? ) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($v) ),* ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_default() {
        assert!(Value::default().is_null());
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(42i64).as_int(), Some(42));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from(7i64).as_float(), Some(7.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert!(Value::Null.as_str().is_none());
    }

    #[test]
    fn map_get_returns_null_for_missing_keys() {
        let m = vmap! { "a" => 1i64 };
        assert_eq!(m.get("a").as_int(), Some(1));
        assert!(m.get("b").is_null());
        assert!(Value::from(3i64).get("a").is_null());
    }

    #[test]
    fn ordering_is_total_across_types() {
        let vals = [
            Value::Null,
            Value::from(false),
            Value::from(-3i64),
            Value::from(1.5),
            Value::from("a"),
            varray![1i64],
            vmap! { "k" => 1i64 },
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn float_ordering_handles_nan() {
        let nan = Value::from(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_ne!(nan.cmp(&Value::from(0.0)), Ordering::Equal);
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = vmap! { "a" => 1i64 };
        let big = vmap! { "a" => "a long string value stored inline" };
        assert!(big.approx_size() > small.approx_size());
    }

    #[test]
    fn type_names_cover_all_variants() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(varray![].type_name(), "array");
        assert_eq!(vmap! {}.type_name(), "map");
    }
}
