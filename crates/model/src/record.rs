//! Model instances.

use crate::id::Id;
use crate::value::Value;
use std::collections::BTreeMap;

/// A model instance: the unit of replication in Synapse.
///
/// A `Record` corresponds to one Ruby object (one row / document / node).
/// It is what the publisher marshals into a write message and what the
/// subscriber re-materializes through its own ORM.
///
/// # Examples
///
/// ```
/// use synapse_model::{Id, Record, Value};
///
/// let mut user = Record::new("User", Id(100));
/// user.set("name", "alice");
/// assert_eq!(user.get("name").as_str(), Some("alice"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Model name, e.g. `User`.
    pub model: String,
    /// Primary key.
    pub id: Id,
    /// Attribute values by name. The primary key is *not* stored here.
    pub attrs: BTreeMap<String, Value>,
    /// Full inheritance chain, most-derived first (`["AdminUser", "User"]`).
    /// Lets subscribers consume polymorphic models (§4.1).
    pub types: Vec<String>,
}

impl Record {
    /// Creates an empty record of the given model.
    pub fn new(model: impl Into<String>, id: Id) -> Self {
        let model = model.into();
        Record {
            types: vec![model.clone()],
            model,
            id,
            attrs: BTreeMap::new(),
        }
    }

    /// Creates a record with an explicit attribute map.
    pub fn with_attrs(model: impl Into<String>, id: Id, attrs: BTreeMap<String, Value>) -> Self {
        let mut r = Self::new(model, id);
        r.attrs = attrs;
        r
    }

    /// Reads an attribute; returns [`Value::Null`] when absent.
    pub fn get(&self, field: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.attrs.get(field).unwrap_or(&NULL)
    }

    /// Sets an attribute.
    pub fn set(&mut self, field: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.attrs.insert(field.into(), value.into());
        self
    }

    /// Builder-style [`Record::set`].
    pub fn with(mut self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(field, value);
        self
    }

    /// Restricts the record to a subset of attributes, dropping the rest.
    /// Used by publishers to marshal only the *published* attributes.
    pub fn project(&self, fields: &[&str]) -> Record {
        let mut out = Record::new(self.model.clone(), self.id);
        out.types = self.types.clone();
        for f in fields {
            if let Some(v) = self.attrs.get(*f) {
                out.attrs.insert((*f).to_owned(), v.clone());
            }
        }
        out
    }

    /// Returns `true` if this record's type chain includes `model` —
    /// i.e. it can be consumed by a subscription for `model`.
    pub fn is_a(&self, model: &str) -> bool {
        self.types.iter().any(|t| t == model)
    }

    /// Converts the record's attributes (plus id) into a [`Value::Map`].
    pub fn to_value(&self) -> Value {
        let mut m = self.attrs.clone();
        m.insert("id".to_owned(), Value::Int(self.id.raw() as i64));
        Value::Map(m)
    }

    /// Approximate marshalled size in bytes.
    pub fn approx_size(&self) -> usize {
        self.attrs
            .iter()
            .map(|(k, v)| k.len() + v.approx_size())
            .sum::<usize>()
            + self.model.len()
            + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{varray, vmap};

    #[test]
    fn get_missing_attribute_is_null() {
        let r = Record::new("User", Id(1));
        assert!(r.get("name").is_null());
    }

    #[test]
    fn set_and_with_are_equivalent() {
        let mut a = Record::new("User", Id(1));
        a.set("name", "x");
        let b = Record::new("User", Id(1)).with("name", "x");
        assert_eq!(a, b);
    }

    #[test]
    fn project_keeps_only_requested_fields() {
        let r = Record::new("User", Id(1))
            .with("name", "alice")
            .with("email", "a@example.com")
            .with("secret", "hunter2");
        let p = r.project(&["name", "email"]);
        assert_eq!(p.attrs.len(), 2);
        assert!(p.get("secret").is_null());
        assert_eq!(p.id, r.id);
    }

    #[test]
    fn project_skips_absent_fields() {
        let r = Record::new("User", Id(1)).with("name", "alice");
        let p = r.project(&["name", "missing"]);
        assert_eq!(p.attrs.len(), 1);
    }

    #[test]
    fn is_a_checks_type_chain() {
        let mut r = Record::new("AdminUser", Id(1));
        r.types = vec!["AdminUser".into(), "User".into()];
        assert!(r.is_a("User"));
        assert!(r.is_a("AdminUser"));
        assert!(!r.is_a("Post"));
    }

    #[test]
    fn to_value_includes_id() {
        let r = Record::new("User", Id(7)).with("tags", varray!["a"]);
        assert_eq!(r.to_value(), vmap! { "id" => 7, "tags" => varray!["a"] });
    }
}
