//! Primary keys for model instances.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Primary key of a model instance.
///
/// Ids are allocated by the *publisher* of a model (the paper's ownership
/// rule: only the owning service may create or delete instances, §3.1) and
/// travel verbatim to every subscriber, so an object is identified by the
/// same id in every database engine of the ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub u64);

impl Id {
    /// Returns the raw numeric key.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Id {
    fn from(v: u64) -> Self {
        Id(v)
    }
}

/// Thread-safe allocator of monotonically increasing [`Id`]s.
///
/// One generator exists per model per publishing service; concurrent
/// application servers of the same service share it, mirroring a database
/// sequence.
///
/// # Examples
///
/// ```
/// use synapse_model::IdGenerator;
///
/// let gen = IdGenerator::new();
/// let a = gen.next_id();
/// let b = gen.next_id();
/// assert!(b > a);
/// ```
#[derive(Debug)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Creates a generator starting at id 1.
    pub fn new() -> Self {
        IdGenerator {
            next: AtomicU64::new(1),
        }
    }

    /// Creates a generator whose first id is `first`.
    pub fn starting_at(first: u64) -> Self {
        IdGenerator {
            next: AtomicU64::new(first),
        }
    }

    /// Allocates the next id.
    pub fn next_id(&self) -> Id {
        Id(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Advances the generator so it will never re-issue `seen` — used when a
    /// subscriber is promoted to publisher during a live migration (§6.5)
    /// and must continue the id sequence it replicated.
    pub fn observe(&self, seen: Id) {
        self.next.fetch_max(seen.0 + 1, Ordering::Relaxed);
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic() {
        let g = IdGenerator::new();
        let ids: Vec<Id> = (0..100).map(|_| g.next_id()).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn observe_skips_past_seen_ids() {
        let g = IdGenerator::new();
        g.observe(Id(500));
        assert_eq!(g.next_id(), Id(501));
        // Observing an older id never rewinds.
        g.observe(Id(10));
        assert_eq!(g.next_id(), Id(502));
    }

    #[test]
    fn generator_is_safe_across_threads() {
        let g = std::sync::Arc::new(IdGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_id().raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "ids must be unique across threads");
    }
}
