//! Dynamic model layer for the Synapse reproduction.
//!
//! Synapse (EuroSys 2015) replicates data at the level of ORM objects rather
//! than database rows. The original system relies on Ruby's dynamic typing:
//! any model instance is a bag of named attributes that can be marshalled,
//! shipped, and re-materialized by a different ORM over a different database
//! engine. This crate provides the equivalent dynamic substrate for Rust:
//!
//! * [`Value`] — a runtime-typed attribute value (the Ruby object model),
//! * [`Id`] — a model-instance primary key,
//! * [`Record`] — a model instance: id + attribute map + inheritance chain,
//! * [`ModelSchema`] — per-model field and association declarations,
//! * [`wire`] — the hand-written JSON encoding used for write messages
//!   (Fig. 6(b) in the paper).
//!
//! Everything above this crate (engines, ORMs, Synapse itself) manipulates
//! these types, which is what makes cross-database replication possible
//! without compile-time knowledge of any schema.

pub mod error;
pub mod id;
pub mod record;
pub mod schema;
pub mod value;
pub mod wire;

pub use error::ModelError;
pub use id::{Id, IdGenerator};
pub use record::Record;
pub use schema::{Association, AssociationKind, FieldDef, FieldType, ModelSchema, SchemaSet};
pub use value::Value;
