//! The staged visibility-latency breakdown.
//!
//! One histogram per (delivery-mode slice, pipeline stage) pair. The
//! stages mirror a message's path from the publisher's ORM intercept to
//! the subscriber's version-store apply, plus the end-to-end
//! publish→visible latency (the paper's "message delivery delay",
//! Fig. 10/11).

use crate::histogram::{Histogram, HistogramSnapshot};

/// One stage of the replication pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// ORM write intercept: from the application's write call to the start
    /// of dependency computation (publisher thread).
    Intercept = 0,
    /// Dependency-set computation in the publisher.
    DepCompute = 1,
    /// Wire encoding of the `WriteMessage`.
    WireEncode = 2,
    /// Broker publish: route resolution and queue admission.
    BrokerEnqueue = 3,
    /// Time the delivery sat in the subscriber queue before a worker
    /// popped it.
    QueueResidency = 4,
    /// Head-of-batch delay: from the batch pop to this message's handling.
    PopBatch = 5,
    /// Causal/global dependency wait at the subscriber.
    DepWait = 6,
    /// Version-store apply (decode through commit).
    Apply = 7,
    /// End-to-end: publisher commit to subscriber visibility.
    EndToEnd = 8,
}

/// Number of pipeline stages (including end-to-end).
pub const STAGES: usize = 9;

impl Stage {
    /// All stages in pipeline order.
    pub fn all() -> [Stage; STAGES] {
        [
            Stage::Intercept,
            Stage::DepCompute,
            Stage::WireEncode,
            Stage::BrokerEnqueue,
            Stage::QueueResidency,
            Stage::PopBatch,
            Stage::DepWait,
            Stage::Apply,
            Stage::EndToEnd,
        ]
    }

    /// Dense index, `0..STAGES`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Intercept => "intercept",
            Stage::DepCompute => "dep_compute",
            Stage::WireEncode => "wire_encode",
            Stage::BrokerEnqueue => "broker_enqueue",
            Stage::QueueResidency => "queue_residency",
            Stage::PopBatch => "pop_batch",
            Stage::DepWait => "dep_wait",
            Stage::Apply => "apply",
            Stage::EndToEnd => "end_to_end",
        }
    }

    /// Parses a stable stage name back to the stage.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::all().into_iter().find(|s| s.name() == name)
    }

    /// True for the stages recorded on the subscriber side as disjoint
    /// sub-intervals of the publish→visible window; their per-mode counts
    /// equal the end-to-end count and their sums stay within it.
    pub fn is_subscriber_stage(self) -> bool {
        matches!(
            self,
            Stage::QueueResidency | Stage::PopBatch | Stage::DepWait | Stage::Apply
        )
    }
}

/// Delivery-mode slice of the staged histograms. Mirrors
/// `synapse_core::DeliveryMode` (weak < causal < global) without the
/// dependency edge — core maps into this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum ModeSlice {
    /// Weak / eventual delivery.
    Weak = 0,
    /// Causal delivery.
    Causal = 1,
    /// Global (totally ordered) delivery.
    Global = 2,
}

/// Number of delivery-mode slices.
pub const MODES: usize = 3;

impl ModeSlice {
    /// All slices.
    pub fn all() -> [ModeSlice; MODES] {
        [ModeSlice::Weak, ModeSlice::Causal, ModeSlice::Global]
    }

    /// Dense index, `0..MODES`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ModeSlice::Weak => "weak",
            ModeSlice::Causal => "causal",
            ModeSlice::Global => "global",
        }
    }

    /// Parses a stable mode name back to the slice.
    pub fn from_name(name: &str) -> Option<ModeSlice> {
        ModeSlice::all().into_iter().find(|m| m.name() == name)
    }
}

/// The full (mode × stage) histogram matrix.
#[derive(Debug)]
pub struct PipelineTelemetry {
    slices: [[Histogram; STAGES]; MODES],
}

impl Default for PipelineTelemetry {
    fn default() -> Self {
        PipelineTelemetry {
            slices: std::array::from_fn(|_| std::array::from_fn(|_| Histogram::new())),
        }
    }
}

impl PipelineTelemetry {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `nanos` into the (mode, stage) histogram.
    #[inline]
    pub fn record(&self, mode: ModeSlice, stage: Stage, nanos: u64) {
        self.slices[mode.index()][stage.index()].record(nanos);
    }

    /// The live histogram for one (mode, stage) pair.
    pub fn histogram(&self, mode: ModeSlice, stage: Stage) -> &Histogram {
        &self.slices[mode.index()][stage.index()]
    }

    /// Snapshot of every (mode, stage) histogram.
    pub fn snapshot(&self) -> [[HistogramSnapshot; STAGES]; MODES] {
        std::array::from_fn(|m| std::array::from_fn(|s| self.slices[m][s].snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::all() {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        for mode in ModeSlice::all() {
            assert_eq!(ModeSlice::from_name(mode.name()), Some(mode));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }

    #[test]
    fn records_land_in_their_slice() {
        let p = PipelineTelemetry::new();
        p.record(ModeSlice::Causal, Stage::DepWait, 500);
        p.record(ModeSlice::Causal, Stage::DepWait, 700);
        p.record(ModeSlice::Global, Stage::DepWait, 900);
        assert_eq!(p.histogram(ModeSlice::Causal, Stage::DepWait).count(), 2);
        assert_eq!(p.histogram(ModeSlice::Global, Stage::DepWait).count(), 1);
        assert_eq!(p.histogram(ModeSlice::Weak, Stage::DepWait).count(), 0);
        let snap = p.snapshot();
        assert_eq!(
            snap[ModeSlice::Causal.index()][Stage::DepWait.index()].count,
            2
        );
    }
}
