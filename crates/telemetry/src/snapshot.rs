//! Exported telemetry views.
//!
//! [`TelemetrySnapshot`] is the point-in-time summary a node surfaces on
//! its API and the bench/soak harnesses assert against: per-(mode, stage)
//! count/sum/p50/p99, the named counters, per-mode delivered counts, and
//! the event-ring occupancy. It renders to JSON (for the BENCH files) and
//! text (for humans), and round-trips through a line-oriented wire format
//! (no serde in the workspace).

use crate::histogram::HistogramSnapshot;
use crate::pipeline::{ModeSlice, Stage, MODES, STAGES};

/// Summary of one (mode, stage) histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSummary {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded nanoseconds.
    pub sum_nanos: u64,
    /// Median latency (bucket upper bound, nearest rank).
    pub p50_nanos: u64,
    /// 99th percentile latency (bucket upper bound, nearest rank).
    pub p99_nanos: u64,
}

impl StageSummary {
    fn from_histogram(h: &HistogramSnapshot) -> StageSummary {
        StageSummary {
            count: h.count,
            sum_nanos: h.sum,
            p50_nanos: h.p50(),
            p99_nanos: h.p99(),
        }
    }
}

/// A point-in-time export of one node's telemetry plane.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Per-(mode, stage) summaries, indexed `[mode.index()][stage.index()]`.
    pub stages: [[StageSummary; STAGES]; MODES],
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Messages whose end-to-end latency was recorded, per mode slice.
    pub delivered: [u64; MODES],
    /// Events currently held in the ring.
    pub events: u64,
    /// Events overwritten in the ring.
    pub events_dropped: u64,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            stages: [[StageSummary::default(); STAGES]; MODES],
            counters: Vec::new(),
            delivered: [0; MODES],
            events: 0,
            events_dropped: 0,
        }
    }
}

impl TelemetrySnapshot {
    /// Builds a snapshot from the live plane's pieces.
    pub fn from_parts(
        pipeline: [[HistogramSnapshot; STAGES]; MODES],
        counters: Vec<(String, u64)>,
        delivered: [u64; MODES],
    ) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stages: std::array::from_fn(|m| {
                std::array::from_fn(|s| StageSummary::from_histogram(&pipeline[m][s]))
            }),
            counters,
            delivered,
            events: 0,
            events_dropped: 0,
        }
    }

    /// The summary for one (mode, stage) pair.
    pub fn stage(&self, mode: ModeSlice, stage: Stage) -> &StageSummary {
        &self.stages[mode.index()][stage.index()]
    }

    /// The end-to-end summary for one mode.
    pub fn end_to_end(&self, mode: ModeSlice) -> &StageSummary {
        self.stage(mode, Stage::EndToEnd)
    }

    /// Value of a named counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Total end-to-end records across all modes.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// True when at least one message's end-to-end latency was recorded.
    pub fn has_deliveries(&self) -> bool {
        self.total_delivered() > 0
    }

    /// Checks the invariants the subscriber commit discipline guarantees:
    /// per mode, every subscriber-side stage has exactly as many records
    /// as the end-to-end histogram (they are committed together), the
    /// subscriber stage sums add up to at most the end-to-end sum (each is
    /// a disjoint sub-interval of publish→visible), and the delivered
    /// counter matches the end-to-end count.
    pub fn check_consistency(&self) -> Result<(), String> {
        for mode in ModeSlice::all() {
            let e2e = self.end_to_end(mode);
            if self.delivered[mode.index()] != e2e.count {
                return Err(format!(
                    "{}: delivered counter {} != end-to-end count {}",
                    mode.name(),
                    self.delivered[mode.index()],
                    e2e.count
                ));
            }
            let mut stage_sum = 0u64;
            for stage in Stage::all() {
                if !stage.is_subscriber_stage() {
                    continue;
                }
                let s = self.stage(mode, stage);
                if s.count != e2e.count {
                    return Err(format!(
                        "{}/{}: stage count {} != end-to-end count {}",
                        mode.name(),
                        stage.name(),
                        s.count,
                        e2e.count
                    ));
                }
                stage_sum = stage_sum.saturating_add(s.sum_nanos);
            }
            if stage_sum > e2e.sum_nanos {
                return Err(format!(
                    "{}: subscriber stage sums {}ns exceed end-to-end {}ns",
                    mode.name(),
                    stage_sum,
                    e2e.sum_nanos
                ));
            }
        }
        Ok(())
    }

    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"synapse-telemetry/v1\",\n  \"modes\": {");
        for (mi, mode) in ModeSlice::all().into_iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\n      \"delivered\": {},\n      \"stages\": {{",
                mode.name(),
                self.delivered[mode.index()]
            ));
            for (si, stage) in Stage::all().into_iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                let s = self.stage(mode, stage);
                out.push_str(&format!(
                    "\n        \"{}\": {{\"count\": {}, \"sum_nanos\": {}, \"p50_nanos\": {}, \"p99_nanos\": {}}}",
                    stage.name(),
                    s.count,
                    s.sum_nanos,
                    s.p50_nanos,
                    s.p99_nanos
                ));
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), value));
        }
        out.push_str(&format!(
            "\n  }},\n  \"events\": {},\n  \"events_dropped\": {}\n}}\n",
            self.events, self.events_dropped
        ));
        out
    }

    /// Renders a compact human-readable table (non-empty stages only).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry snapshot\n");
        for mode in ModeSlice::all() {
            if self.delivered[mode.index()] == 0
                && Stage::all()
                    .into_iter()
                    .all(|s| self.stage(mode, s).count == 0)
            {
                continue;
            }
            out.push_str(&format!(
                "  [{}] delivered={}\n",
                mode.name(),
                self.delivered[mode.index()]
            ));
            for stage in Stage::all() {
                let s = self.stage(mode, stage);
                if s.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    {:<15} count={:<8} p50={:>10}ns p99={:>10}ns\n",
                    stage.name(),
                    s.count,
                    s.p50_nanos,
                    s.p99_nanos
                ));
            }
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("  counter {name}={value}\n"));
        }
        out.push_str(&format!(
            "  events={} dropped={}\n",
            self.events, self.events_dropped
        ));
        out
    }

    /// Serializes to the line-oriented wire format ([`Self::from_wire`]
    /// parses it back; the pair round-trips exactly).
    pub fn to_wire(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("telemetry/v1\n");
        for mode in ModeSlice::all() {
            out.push_str(&format!(
                "delivered {} {}\n",
                mode.name(),
                self.delivered[mode.index()]
            ));
        }
        for mode in ModeSlice::all() {
            for stage in Stage::all() {
                let s = self.stage(mode, stage);
                out.push_str(&format!(
                    "stage {} {} {} {} {} {}\n",
                    mode.name(),
                    stage.name(),
                    s.count,
                    s.sum_nanos,
                    s.p50_nanos,
                    s.p99_nanos
                ));
            }
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        out.push_str(&format!("events {} {}\n", self.events, self.events_dropped));
        out
    }

    /// Parses the wire format produced by [`Self::to_wire`].
    pub fn from_wire(wire: &str) -> Result<TelemetrySnapshot, String> {
        let mut lines = wire.lines();
        match lines.next() {
            Some("telemetry/v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut snap = TelemetrySnapshot::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(' ').collect();
            let parse = |s: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|e| format!("bad number {s:?}: {e}"))
            };
            match fields.as_slice() {
                ["delivered", mode, n] => {
                    let mode = ModeSlice::from_name(mode)
                        .ok_or_else(|| format!("unknown mode {mode:?}"))?;
                    snap.delivered[mode.index()] = parse(n)?;
                }
                ["stage", mode, stage, count, sum, p50, p99] => {
                    let mode = ModeSlice::from_name(mode)
                        .ok_or_else(|| format!("unknown mode {mode:?}"))?;
                    let stage = Stage::from_name(stage)
                        .ok_or_else(|| format!("unknown stage {stage:?}"))?;
                    snap.stages[mode.index()][stage.index()] = StageSummary {
                        count: parse(count)?,
                        sum_nanos: parse(sum)?,
                        p50_nanos: parse(p50)?,
                        p99_nanos: parse(p99)?,
                    };
                }
                ["counter", name, value] => {
                    snap.counters.push((name.to_string(), parse(value)?));
                }
                ["events", held, dropped] => {
                    snap.events = parse(held)?;
                    snap.events_dropped = parse(dropped)?;
                }
                _ => return Err(format!("unparseable line {line:?}")),
            }
        }
        Ok(snap)
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModeSlice, Stage, Telemetry};

    fn populated() -> TelemetrySnapshot {
        let t = Telemetry::new(true);
        t.record_stage(ModeSlice::Causal, Stage::Intercept, 300);
        t.record_stage(ModeSlice::Causal, Stage::DepCompute, 400);
        t.record_visible(ModeSlice::Causal, 1_000, 200, 5_000, 900, 10_000);
        t.record_visible(ModeSlice::Weak, 500, 100, 0, 700, 4_000);
        t.counters().add("publisher.messages", 2);
        t.counters().add("subscriber.acks", 2);
        t.snapshot()
    }

    #[test]
    fn wire_round_trips_exactly() {
        let snap = populated();
        let parsed = TelemetrySnapshot::from_wire(&snap.to_wire()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn from_wire_rejects_garbage() {
        assert!(TelemetrySnapshot::from_wire("nope/v0\n").is_err());
        assert!(TelemetrySnapshot::from_wire("telemetry/v1\nstage bad").is_err());
        assert!(TelemetrySnapshot::from_wire("telemetry/v1\ndelivered sideways 3\n").is_err());
    }

    #[test]
    fn consistency_holds_for_visible_commits() {
        let snap = populated();
        snap.check_consistency()
            .expect("committed records consistent");
        assert_eq!(snap.total_delivered(), 2);
        assert!(snap.has_deliveries());
        assert_eq!(snap.counter("publisher.messages"), 2);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn consistency_flags_count_mismatch_and_sum_overflow() {
        let mut snap = populated();
        snap.delivered[ModeSlice::Causal.index()] += 1;
        assert!(snap.check_consistency().is_err());

        let mut snap = populated();
        snap.stages[ModeSlice::Causal.index()][Stage::Apply.index()].sum_nanos = u64::MAX;
        assert!(snap.check_consistency().is_err());
    }

    #[test]
    fn json_contains_all_modes_and_stages() {
        let json = populated().to_json();
        for mode in ModeSlice::all() {
            assert!(json.contains(&format!("\"{}\"", mode.name())));
        }
        for stage in Stage::all() {
            assert!(json.contains(&format!("\"{}\"", stage.name())));
        }
        assert!(json.contains("\"publisher.messages\": 2"));
        let text = populated().to_text();
        assert!(text.contains("end_to_end"));
    }
}
