//! Publisher-overhead instrumentation (Fig. 12).
//!
//! The paper instruments Crowdtap's controllers to report, per controller:
//! call share, messages published, dependencies per message, controller
//! execution time, and Synapse's execution time within the controller
//! (mean and 99th percentile). [`ControllerStats`] collects those samples;
//! the MVC layer records one sample per dispatched request.
//!
//! Relocated from `synapse-core`'s `stats` module; core re-exports these
//! types and converts its request-scope measurements into [`ScopeSample`].

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// The per-request Synapse-side measurements a caller feeds into
/// [`ControllerStats::record`]. `synapse-core` converts its request-scope
/// stats into this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeSample {
    /// Nanoseconds spent inside Synapse during the request.
    pub synapse_nanos: u64,
    /// Messages published during the request.
    pub messages: u64,
    /// Dependencies across those messages.
    pub deps_published: u64,
}

/// One controller-execution sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Total controller wall time.
    pub total: Duration,
    /// Synapse time within the controller.
    pub synapse: Duration,
    /// Messages published.
    pub messages: u64,
    /// Dependencies across those messages.
    pub deps: u64,
}

/// Aggregated per-controller statistics.
#[derive(Debug, Default)]
pub struct ControllerStats {
    samples: Mutex<BTreeMap<String, Vec<Sample>>>,
}

/// Summary row for one controller (a row of Fig. 12(a)).
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerRow {
    /// Controller name.
    pub controller: String,
    /// Number of calls recorded.
    pub calls: u64,
    /// Mean messages per call.
    pub mean_messages: f64,
    /// 99th percentile messages per call.
    pub p99_messages: u64,
    /// Mean dependencies per message.
    pub mean_deps_per_message: f64,
    /// 99th percentile dependencies per message (per call).
    pub p99_deps: u64,
    /// Mean controller time.
    pub mean_total: Duration,
    /// 99th percentile controller time.
    pub p99_total: Duration,
    /// Mean Synapse time.
    pub mean_synapse: Duration,
    /// 99th percentile Synapse time.
    pub p99_synapse: Duration,
    /// Mean overhead fraction (synapse / total).
    pub overhead: f64,
}

impl ControllerStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one controller execution.
    pub fn record(&self, controller: &str, total: Duration, scope: impl Into<ScopeSample>) {
        let scope = scope.into();
        self.samples
            .lock()
            .entry(controller.to_owned())
            .or_default()
            .push(Sample {
                total,
                synapse: Duration::from_nanos(scope.synapse_nanos),
                messages: scope.messages,
                deps: scope.deps_published,
            });
    }

    /// Summarizes one controller, or `None` if never recorded.
    pub fn row(&self, controller: &str) -> Option<ControllerRow> {
        let samples = self.samples.lock();
        let v = samples.get(controller)?;
        if v.is_empty() {
            return None;
        }
        let calls = v.len() as u64;
        let mean_messages = v.iter().map(|s| s.messages).sum::<u64>() as f64 / calls as f64;
        let total_messages: u64 = v.iter().map(|s| s.messages).sum();
        let total_deps: u64 = v.iter().map(|s| s.deps).sum();
        let mean_deps_per_message = if total_messages == 0 {
            0.0
        } else {
            total_deps as f64 / total_messages as f64
        };
        let mean_total = Duration::from_nanos(
            (v.iter().map(|s| s.total.as_nanos()).sum::<u128>() / calls as u128) as u64,
        );
        let mean_synapse = Duration::from_nanos(
            (v.iter().map(|s| s.synapse.as_nanos()).sum::<u128>() / calls as u128) as u64,
        );
        let total_sum: u128 = v.iter().map(|s| s.total.as_nanos()).sum();
        let synapse_sum: u128 = v.iter().map(|s| s.synapse.as_nanos()).sum();
        let overhead = if total_sum == 0 {
            0.0
        } else {
            synapse_sum as f64 / total_sum as f64
        };
        Some(ControllerRow {
            controller: controller.to_owned(),
            calls,
            mean_messages,
            p99_messages: percentile_u64(v.iter().map(|s| s.messages), 0.99),
            mean_deps_per_message,
            p99_deps: percentile_u64(v.iter().map(|s| s.deps), 0.99),
            mean_total,
            p99_total: Duration::from_nanos(percentile_u64(
                v.iter().map(|s| s.total.as_nanos() as u64),
                0.99,
            )),
            mean_synapse,
            p99_synapse: Duration::from_nanos(percentile_u64(
                v.iter().map(|s| s.synapse.as_nanos() as u64),
                0.99,
            )),
            overhead,
        })
    }

    /// All controllers recorded, in name order.
    pub fn controllers(&self) -> Vec<String> {
        self.samples.lock().keys().cloned().collect()
    }

    /// Total calls across all controllers.
    pub fn total_calls(&self) -> u64 {
        self.samples.lock().values().map(|v| v.len() as u64).sum()
    }

    /// Mean overhead across every sample of every controller (the "mean=8%
    /// across all 55 controllers" line of Fig. 12(a)).
    pub fn overall_overhead(&self) -> f64 {
        let samples = self.samples.lock();
        let mut total = 0u128;
        let mut synapse = 0u128;
        for v in samples.values() {
            for s in v {
                total += s.total.as_nanos();
                synapse += s.synapse.as_nanos();
            }
        }
        if total == 0 {
            0.0
        } else {
            synapse as f64 / total as f64
        }
    }
}

/// Nearest-rank percentile of a sample stream.
pub fn percentile_u64(values: impl Iterator<Item = u64>, p: f64) -> u64 {
    let mut v: Vec<u64> = values.collect();
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    let rank = ((p * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile_u64(1..=100u64, 0.99), 99);
        assert_eq!(percentile_u64([5].into_iter(), 0.99), 5);
        assert_eq!(percentile_u64(std::iter::empty(), 0.99), 0);
    }

    #[test]
    fn rows_aggregate_samples() {
        let stats = ControllerStats::new();
        for i in 0..10 {
            stats.record(
                "actions/update",
                Duration::from_millis(100 + i),
                ScopeSample {
                    synapse_nanos: 10_000_000,
                    messages: 2,
                    deps_published: 6,
                },
            );
        }
        let row = stats.row("actions/update").unwrap();
        assert_eq!(row.calls, 10);
        assert!((row.mean_messages - 2.0).abs() < 1e-9);
        assert!((row.mean_deps_per_message - 3.0).abs() < 1e-9);
        assert!(row.overhead > 0.05 && row.overhead < 0.15);
        assert!(stats.row("missing").is_none());
    }

    #[test]
    fn overall_overhead_spans_controllers() {
        let stats = ControllerStats::new();
        stats.record("a", Duration::from_millis(100), ScopeSample::default());
        stats.record(
            "b",
            Duration::from_millis(100),
            ScopeSample {
                synapse_nanos: 20_000_000,
                messages: 1,
                deps_published: 1,
            },
        );
        let o = stats.overall_overhead();
        assert!((o - 0.1).abs() < 0.01, "got {o}");
    }
}
