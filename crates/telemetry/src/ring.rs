//! A bounded structured event ring for span-style stage traces.
//!
//! The ring keeps the last `capacity` telemetry events (newest overwrite
//! oldest) for post-hoc inspection — a poor man's distributed-tracing
//! span buffer. Pushing claims a slot with one atomic fetch-add and takes
//! only that slot's mutex, so writers on different slots never contend.
//! When the plane is constructed with `telemetry_enabled = false`, a push
//! is a single relaxed load and an immediate return.

use crate::pipeline::{ModeSlice, Stage};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One recorded stage event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Monotonically increasing event sequence number.
    pub seq: u64,
    /// Delivery-mode slice the event belongs to.
    pub mode: ModeSlice,
    /// Pipeline stage.
    pub stage: Stage,
    /// Recorded duration in nanoseconds.
    pub nanos: u64,
}

/// Fixed-capacity overwrite-oldest event buffer.
#[derive(Debug)]
pub struct EventRing {
    slots: Vec<Mutex<Option<TelemetryEvent>>>,
    next: AtomicU64,
    enabled: AtomicBool,
}

impl EventRing {
    /// Creates a ring with `capacity` slots. `enabled = false` turns every
    /// push into a no-op (one relaxed load).
    pub fn new(capacity: usize, enabled: bool) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            enabled: AtomicBool::new(enabled),
        }
    }

    /// Whether pushes are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event (overwriting the oldest once full). No-op when
    /// disabled.
    #[inline]
    pub fn push(&self, mode: ModeSlice, stage: Stage, nanos: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock() = Some(TelemetryEvent {
            seq,
            mode,
            stage,
            nanos,
        });
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that have been overwritten (pushed beyond capacity).
    pub fn dropped(&self) -> u64 {
        self.next
            .load(Ordering::Relaxed)
            .saturating_sub(self.slots.len() as u64)
    }

    /// The held events in sequence order (oldest first). Events pushed
    /// concurrently with the scan may be missed or partially reordered —
    /// the ring is a debugging aid, not a ledger.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        let mut out: Vec<TelemetryEvent> = self.slots.iter().filter_map(|s| *s.lock()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let ring = EventRing::new(4, true);
        for i in 0..6 {
            ring.push(ModeSlice::Weak, Stage::EndToEnd, i * 10);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events.first().unwrap().seq, 2, "oldest two overwritten");
        assert_eq!(events.last().unwrap().nanos, 50);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = EventRing::new(4, false);
        ring.push(ModeSlice::Global, Stage::Apply, 123);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0, true);
        ring.push(ModeSlice::Weak, Stage::Apply, 1);
        ring.push(ModeSlice::Weak, Stage::Apply, 2);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot()[0].nanos, 2);
    }
}
