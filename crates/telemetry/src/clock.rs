//! Process-wide monotonic nanosecond clock.
//!
//! Stage stamps must be comparable across threads (a message is stamped on
//! the publisher thread and read on a subscriber worker) and cheap enough
//! for the hot path. `Instant` satisfies both but cannot ride a message as
//! plain data, so every stamp is expressed as nanoseconds since a lazily
//! initialized process epoch.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process telemetry epoch. Monotonic, comparable
/// across threads; the first call pins the epoch.
pub fn mono_nanos() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_across_calls_and_threads() {
        let a = mono_nanos();
        let b = std::thread::spawn(mono_nanos).join().unwrap();
        let c = mono_nanos();
        assert!(a <= b || a <= c, "epoch must be shared");
        assert!(c >= a);
    }
}
