//! A lock-free registry of named atomic counters.
//!
//! Registration takes a write lock once per name; after that every holder
//! of the returned [`Counter`] handle bumps a shared `AtomicU64` with no
//! lock. Snapshots read the registry under a short read lock and the
//! counter cells with relaxed loads.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct CounterInner {
    name: String,
    value: AtomicU64,
}

/// A cheap, cloneable handle to one named counter. Bumps are relaxed
/// atomic adds on the shared cell.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn bump(&self) {
        self.inner.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// The counter's registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }
}

/// Registry of named counters. Get-or-register by name; the handle is the
/// hot-path interface.
#[derive(Debug, Default)]
pub struct CounterRegistry {
    counters: RwLock<Vec<Arc<CounterInner>>>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Hold the returned handle rather than calling this per bump.
    pub fn counter(&self, name: &str) -> Counter {
        {
            let counters = self.counters.read();
            if let Some(c) = counters.iter().find(|c| c.name == name) {
                return Counter {
                    inner: Arc::clone(c),
                };
            }
        }
        let mut counters = self.counters.write();
        // Re-check under the write lock: another thread may have raced the
        // registration between our read and write acquisitions.
        if let Some(c) = counters.iter().find(|c| c.name == name) {
            return Counter {
                inner: Arc::clone(c),
            };
        }
        let inner = Arc::new(CounterInner {
            name: name.to_owned(),
            value: AtomicU64::new(0),
        });
        counters.push(Arc::clone(&inner));
        Counter { inner }
    }

    /// One-shot add without keeping a handle (registry lookup per call —
    /// fine off the hot path).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of `name`, 0 if never registered.
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .read()
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// All counters as `(name, value)` pairs, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|c| (c.name.clone(), c.value.load(Ordering::Relaxed)))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = CounterRegistry::new();
        let a = reg.counter("publisher.messages");
        let b = reg.counter("publisher.messages");
        a.bump();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.get("publisher.messages"), 5);
        assert_eq!(reg.get("never.registered"), 0);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let reg = CounterRegistry::new();
        reg.add("z.last", 1);
        reg.add("a.first", 2);
        assert_eq!(
            reg.snapshot(),
            vec![("a.first".into(), 2), ("z.last".into(), 1)]
        );
    }

    #[test]
    fn concurrent_registration_loses_no_increments() {
        let reg = Arc::new(CounterRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(thread::spawn(move || {
                let c = reg.counter("contended");
                for _ in 0..1_000 {
                    c.bump();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.get("contended"), 8_000);
    }
}
