//! The pipeline telemetry plane.
//!
//! The paper's evaluation hinges on observability: §6 reports *message
//! delivery delay* — the time from a publisher's committed write to
//! subscriber visibility (Fig. 10, Fig. 11) — and per-stage overhead
//! breakdowns (Fig. 12). This crate is the measurement substrate the rest
//! of the workspace emits into:
//!
//! * [`clock`] — a process-wide monotonic nanosecond clock whose stamps are
//!   comparable across threads (the publish timestamp that rides the broker
//!   envelope).
//! * [`counters`] — a registry of named atomic counters; bumps through a
//!   held handle are lock-free.
//! * [`histogram`] — fixed-bucket, power-of-two latency histograms:
//!   allocation-free, bump-only recording, nearest-rank percentile
//!   extraction from the bucket counts.
//! * [`pipeline`] — the staged visibility-latency breakdown: one histogram
//!   per (delivery mode, stage) pair from ORM intercept to subscriber
//!   apply, plus the end-to-end histogram.
//! * [`ring`] — a bounded structured event ring for span-style stage
//!   traces, gated by the node's `telemetry_enabled` flag (a single relaxed
//!   load when off).
//! * [`controller`] — the per-controller overhead instrumentation behind
//!   Fig. 12, relocated from `synapse-core`.
//! * [`snapshot`] — [`TelemetrySnapshot`], the exported view: JSON and text
//!   renderings plus a line-oriented wire format that round-trips.
//!
//! Hot-path cost: every recording is a monotonic clock read plus a handful
//! of relaxed atomic bumps; nothing allocates after construction.

pub mod clock;
pub mod controller;
pub mod counters;
pub mod histogram;
pub mod pipeline;
pub mod ring;
pub mod snapshot;

pub use clock::mono_nanos;
pub use controller::{percentile_u64, ControllerRow, ControllerStats, Sample, ScopeSample};
pub use counters::{Counter, CounterRegistry};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use pipeline::{ModeSlice, PipelineTelemetry, Stage, MODES, STAGES};
pub use ring::{EventRing, TelemetryEvent};
pub use snapshot::{StageSummary, TelemetrySnapshot};

use std::sync::atomic::{AtomicU64, Ordering};

/// One node's telemetry plane: the shared handle every pipeline layer
/// (publisher, broker consumer, subscriber) records into.
pub struct Telemetry {
    counters: CounterRegistry,
    pipeline: PipelineTelemetry,
    ring: EventRing,
    controllers: ControllerStats,
    /// Messages whose end-to-end visibility latency was recorded, per
    /// delivery-mode slice — the "counts match delivered messages" anchor.
    delivered: [AtomicU64; MODES],
    /// Durations of crash-recovery passes (WAL replay + snapshot load),
    /// in nanoseconds — one recording per restart that had state to
    /// recover, so the histogram doubles as a restart counter.
    recovery: Histogram,
    /// Durations of conflict resolutions (multi-writer replication), in
    /// nanoseconds — one recording per concurrent write pair handed to a
    /// resolver, so the histogram also counts detected conflicts that
    /// reached resolution.
    resolution: Histogram,
}

impl Telemetry {
    /// Creates a telemetry plane. `enabled` gates the structured event
    /// ring; counters and histograms are always live (they are the
    /// substrate the tier-1 assertions rely on).
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            counters: CounterRegistry::new(),
            pipeline: PipelineTelemetry::new(),
            ring: EventRing::new(ring::DEFAULT_CAPACITY, enabled),
            controllers: ControllerStats::new(),
            delivered: Default::default(),
            recovery: Histogram::new(),
            resolution: Histogram::new(),
        }
    }

    /// The named-counter registry.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// The staged latency histograms.
    pub fn pipeline(&self) -> &PipelineTelemetry {
        &self.pipeline
    }

    /// The bounded structured event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The per-controller overhead collector (Fig. 12).
    pub fn controllers(&self) -> &ControllerStats {
        &self.controllers
    }

    /// The recovery-duration histogram: one recording per restart that
    /// replayed a WAL tail or loaded a snapshot.
    pub fn recovery_histogram(&self) -> &Histogram {
        &self.recovery
    }

    /// Records one crash-recovery pass's duration.
    pub fn record_recovery(&self, nanos: u64) {
        self.recovery.record(nanos);
    }

    /// The conflict-resolution latency histogram: one recording per
    /// concurrent write pair handed to a resolver.
    pub fn resolution_histogram(&self) -> &Histogram {
        &self.resolution
    }

    /// Records one conflict resolution's duration.
    pub fn record_resolution(&self, nanos: u64) {
        self.resolution.record(nanos);
    }

    /// Records one stage duration.
    pub fn record_stage(&self, mode: ModeSlice, stage: Stage, nanos: u64) {
        self.pipeline.record(mode, stage, nanos);
    }

    /// Records a message becoming visible at the subscriber: the four
    /// subscriber-side stage marks and the end-to-end visibility latency
    /// are committed together, so per mode the stage counts always equal
    /// the end-to-end count and the stage sums stay within the end-to-end
    /// sum (each mark is a disjoint sub-interval of the publish→visible
    /// window).
    pub fn record_visible(
        &self,
        mode: ModeSlice,
        residency_nanos: u64,
        pop_nanos: u64,
        dep_wait_nanos: u64,
        apply_nanos: u64,
        end_to_end_nanos: u64,
    ) {
        self.pipeline
            .record(mode, Stage::QueueResidency, residency_nanos);
        self.pipeline.record(mode, Stage::PopBatch, pop_nanos);
        self.pipeline.record(mode, Stage::DepWait, dep_wait_nanos);
        self.pipeline.record(mode, Stage::Apply, apply_nanos);
        self.pipeline
            .record(mode, Stage::EndToEnd, end_to_end_nanos);
        self.delivered[mode.index()].fetch_add(1, Ordering::Relaxed);
        self.ring.push(mode, Stage::EndToEnd, end_to_end_nanos);
    }

    /// Messages delivered (end-to-end recorded) for one mode slice.
    pub fn delivered(&self, mode: ModeSlice) -> u64 {
        self.delivered[mode.index()].load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot of the whole plane.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::from_parts(
            self.pipeline.snapshot(),
            self.counters.snapshot(),
            [
                self.delivered(ModeSlice::Weak),
                self.delivered(ModeSlice::Causal),
                self.delivered(ModeSlice::Global),
            ],
        );
        snap.events = self.ring.len() as u64;
        snap.events_dropped = self.ring.dropped();
        let recovery = self.recovery.snapshot();
        if recovery.count > 0 {
            snap.counters
                .push(("recovery.passes".into(), recovery.count));
            snap.counters
                .push(("recovery.duration_p50_nanos".into(), recovery.p50()));
            snap.counters
                .push(("recovery.duration_p99_nanos".into(), recovery.p99()));
            snap.counters
                .push(("recovery.duration_total_nanos".into(), recovery.sum));
            snap.counters.sort();
        }
        let resolution = self.resolution.snapshot();
        if resolution.count > 0 {
            snap.counters
                .push(("conflicts.resolution_p50_nanos".into(), resolution.p50()));
            snap.counters
                .push(("conflicts.resolution_p99_nanos".into(), resolution.p99()));
            snap.counters
                .push(("conflicts.resolution_total_nanos".into(), resolution.sum));
            snap.counters.sort();
        }
        snap
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("delivered_weak", &self.delivered(ModeSlice::Weak))
            .field("delivered_causal", &self.delivered(ModeSlice::Causal))
            .field("delivered_global", &self.delivered(ModeSlice::Global))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_visible_keeps_counts_aligned() {
        let t = Telemetry::new(true);
        t.record_visible(ModeSlice::Causal, 10, 5, 0, 20, 100);
        t.record_visible(ModeSlice::Causal, 12, 6, 1, 25, 120);
        t.record_visible(ModeSlice::Weak, 1, 1, 0, 1, 10);
        let snap = t.snapshot();
        assert_eq!(snap.stage(ModeSlice::Causal, Stage::EndToEnd).count, 2);
        assert_eq!(snap.stage(ModeSlice::Causal, Stage::Apply).count, 2);
        assert_eq!(snap.delivered[ModeSlice::Causal.index()], 2);
        assert_eq!(snap.delivered[ModeSlice::Weak.index()], 1);
        assert_eq!(snap.delivered[ModeSlice::Global.index()], 0);
        snap.check_consistency()
            .expect("visible records are consistent");
        assert_eq!(snap.events, 3);
    }

    #[test]
    fn recovery_histogram_folds_into_counters() {
        let t = Telemetry::new(true);
        let clean = t.snapshot();
        assert!(
            clean
                .counters
                .iter()
                .all(|(k, _)| !k.starts_with("recovery.")),
            "no recovery counters before any recovery pass"
        );
        t.record_recovery(1_000);
        t.record_recovery(2_000);
        let snap = t.snapshot();
        let get = |k: &str| snap.counters.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("recovery.passes"), Some(2));
        assert_eq!(get("recovery.duration_total_nanos"), Some(3_000));
        assert!(get("recovery.duration_p50_nanos").unwrap() >= 1_000);
        assert_eq!(t.recovery_histogram().count(), 2);
    }

    #[test]
    fn resolution_histogram_folds_into_counters() {
        let t = Telemetry::new(true);
        let clean = t.snapshot();
        assert!(
            clean
                .counters
                .iter()
                .all(|(k, _)| !k.starts_with("conflicts.")),
            "no conflict counters before any resolution"
        );
        t.record_resolution(500);
        t.record_resolution(1_500);
        let snap = t.snapshot();
        let get = |k: &str| snap.counters.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("conflicts.resolution_total_nanos"), Some(2_000));
        assert!(get("conflicts.resolution_p99_nanos").unwrap() >= 1_500);
        assert_eq!(t.resolution_histogram().count(), 2);
    }

    #[test]
    fn disabled_ring_stays_empty_but_histograms_record() {
        let t = Telemetry::new(false);
        t.record_visible(ModeSlice::Weak, 1, 1, 0, 1, 10);
        let snap = t.snapshot();
        assert_eq!(snap.events, 0);
        assert_eq!(snap.stage(ModeSlice::Weak, Stage::EndToEnd).count, 1);
    }
}
