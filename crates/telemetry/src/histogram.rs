//! Fixed-bucket power-of-two latency histograms.
//!
//! Recording is allocation-free and lock-free: the value's bit width picks
//! one of 64 buckets and three relaxed atomic bumps land it. Percentiles
//! are extracted nearest-rank from the bucket counts, reported as the
//! bucket's inclusive upper bound — a deterministic ≤2× overestimate,
//! which is the usual trade for O(1) untimed recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit width of a `u64` value.
pub const BUCKETS: usize = 64;

/// Bucket index for `value`: bucket 0 covers `[0, 2)`, bucket `i ≥ 1`
/// covers `[2^i, 2^(i+1))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros()) as usize
}

/// Inclusive `(low, high)` bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < BUCKETS);
    let low = if i == 0 { 0 } else { 1u64 << i };
    let high = if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    };
    (low, high)
}

/// A concurrent power-of-two histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value: three relaxed atomic adds, no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts. Concurrent recording makes
    /// the copy *approximately* consistent (counts monotone, never torn per
    /// bucket), which is all a latency summary needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// An owned copy of a histogram's state, with percentile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (bucket `i` covers `[2^i, 2^(i+1))`, bucket 0
    /// starts at 0).
    pub buckets: [u64; BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Nearest-rank percentile (`p` in `(0, 1]`), reported as the inclusive
    /// upper bound of the bucket holding that rank. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// Median (nearest-rank, bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile (nearest-rank, bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean of the recorded values (exact: tracked by sum, not buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 0 and 1 share bucket 0; every boundary value 2^i opens bucket i
        // and 2^i - 1 still lands in bucket i-1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        for i in 2..64 {
            let low = 1u64 << i;
            assert_eq!(bucket_index(low), i, "2^{i} opens bucket {i}");
            assert_eq!(bucket_index(low - 1), i - 1, "2^{i}-1 stays below");
            if i < 63 {
                assert_eq!(bucket_index(low * 2 - 1), i, "top of bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        let (lo0, hi0) = bucket_bounds(0);
        assert_eq!((lo0, hi0), (0, 1));
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let (_, prev_hi) = bucket_bounds(i - 1);
            assert_eq!(lo, prev_hi + 1, "buckets must tile without gaps");
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            assert!(hi >= lo);
        }
        assert_eq!(bucket_bounds(63).1, u64::MAX);
    }

    #[test]
    fn percentiles_walk_the_buckets_nearest_rank() {
        let h = Histogram::new();
        // 99 fast values and one slow outlier.
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1_000_000); // bucket 19
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), 127, "median reports bucket 6's upper bound");
        assert_eq!(s.p99(), 127, "p99 rank 99 still inside the fast bucket");
        assert_eq!(s.percentile(1.0), (1 << 20) - 1, "max hits the outlier");
        assert!((s.mean() - (99.0 * 100.0 + 1_000_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
