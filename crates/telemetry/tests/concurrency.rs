//! Multi-threaded soundness of the telemetry primitives: however many
//! threads hammer a counter, a histogram, or the staged pipeline, no
//! increment is lost and the sums stay exact.

use proptest::prelude::*;
use std::sync::Arc;
use std::thread;
use synapse_telemetry::{CounterRegistry, Histogram, ModeSlice, PipelineTelemetry, Stage};

proptest! {
    #[test]
    fn counters_lose_no_increments(
        threads in 2usize..6,
        per_thread in 1u64..400,
    ) {
        let reg = Arc::new(CounterRegistry::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let c = reg.counter("contended.counter");
                    for _ in 0..per_thread {
                        c.bump();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(reg.get("contended.counter"), threads as u64 * per_thread);
    }

    #[test]
    fn histograms_lose_no_records(
        threads in 2usize..6,
        values in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let hist = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let hist = Arc::clone(&hist);
                let values = values.clone();
                thread::spawn(move || {
                    for &v in &values {
                        hist.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = hist.snapshot();
        let expected = threads as u64 * values.len() as u64;
        prop_assert_eq!(snap.count, expected);
        prop_assert_eq!(snap.sum, threads as u64 * values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), expected);
    }

    #[test]
    fn pipeline_slices_stay_isolated_under_contention(
        per_thread in 1u64..300,
    ) {
        let p = Arc::new(PipelineTelemetry::new());
        let handles: Vec<_> = ModeSlice::all()
            .into_iter()
            .map(|mode| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        p.record(mode, Stage::EndToEnd, i);
                        p.record(mode, Stage::Apply, i / 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for mode in ModeSlice::all() {
            prop_assert_eq!(p.histogram(mode, Stage::EndToEnd).count(), per_thread);
            prop_assert_eq!(p.histogram(mode, Stage::Apply).count(), per_thread);
            prop_assert_eq!(p.histogram(mode, Stage::DepWait).count(), 0);
        }
    }
}
