//! Per-service Synapse configuration.

use crate::deps::{writer_id, DepSpace};
use crate::resolve::{ConflictCtx, ConflictResolver, MergeFn, Resolution, ResolverRegistry};
use crate::semantics::DeliveryMode;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use synapse_broker::{AckDurability, FsyncPolicy};

/// The node's durability plane: where (and whether) the broker WAL and
/// version-store snapshots live.
///
/// Durability is off by default (`dir: None`) — the memory-only posture of
/// the original reproduction, whose hot paths pay only an `Option` branch
/// for the plane's existence. Setting a directory turns on both halves:
/// the broker queues log to `<dir>/wal` and the node's version-store
/// snapshots go to `<dir>/snapshots`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory of the durability plane; `None` = memory-only.
    pub dir: Option<PathBuf>,
    /// Broker WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Broker WAL segment roll threshold.
    pub segment_max_bytes: u64,
    /// Snapshot the version stores after this many subscriber-processed
    /// messages (driver-clocked, so runs are deterministic under a pinned
    /// seed; see DESIGN.md). `None` = only explicit snapshots.
    pub snapshot_every: Option<u64>,
    /// Group-commit the broker WAL: concurrent appends stage into a shared
    /// batch and one leader writes + fsyncs for everyone. Off = the legacy
    /// per-record append path (one lock round trip per record).
    pub group_commit: bool,
    /// Backpressure threshold on the staged group-commit batch: appenders
    /// block once this many bytes are staged and a leader is in flight.
    pub group_max_bytes: u64,
    /// How long a group-commit leader lingers for followers before writing
    /// a batch of one. Zero (the default) = never wait; latency-optimal.
    pub group_max_wait: Duration,
    /// Durability lane for ack/dead-letter/requeue records: `Relaxed`
    /// (default) rides the next group commit without waiting, `Strict`
    /// blocks until the record is on disk.
    pub ack_durability: AckDurability,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            dir: None,
            fsync: FsyncPolicy::Interval(64),
            segment_max_bytes: 256 << 10,
            snapshot_every: Some(256),
            group_commit: true,
            group_max_bytes: 4 << 20,
            group_max_wait: Duration::ZERO,
            ack_durability: AckDurability::Relaxed,
        }
    }
}

impl DurabilityConfig {
    /// Maps this plane's broker-WAL knobs onto a [`synapse_broker::WalConfig`]
    /// rooted at `<dir>/wal`, or `None` when durability is off. This is the
    /// single translation point between the node-level config surface and
    /// the broker's own; keep the two in lockstep when adding knobs.
    pub fn wal_config(&self) -> Option<synapse_broker::WalConfig> {
        let root = self.dir.as_ref()?;
        Some(
            synapse_broker::WalConfig::new(root.join("wal"))
                .fsync(self.fsync)
                .segment_max_bytes(self.segment_max_bytes)
                .group_commit(self.group_commit)
                .group_max_bytes(self.group_max_bytes)
                .group_max_wait(self.group_max_wait)
                .ack_durability(self.ack_durability),
        )
    }
}

/// Retry/backoff policy for transient failures across the replication
/// pipeline (broker publishes, subscriber processing).
///
/// Backoff is exponential with *deterministic* jitter: the delay for
/// attempt `k` is a pure function of `(policy, k)`, derived from
/// `jitter_seed` through splitmix64, so two runs with the same
/// configuration retry on identical schedules. The §6.5 postmortem is the
/// motivation for bounding attempts at all: unbounded redelivery of a
/// poisoned message wedges the queue forever, so after `max_attempts` the
/// pipeline routes the delivery to the dead-letter store instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per unit of work, first try included. A subscriber that
    /// exhausts this dead-letters the delivery; a publisher leaves the
    /// payload journaled for [`recover`](crate::publisher::Publisher::recover).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before retrying after failed attempt
    /// `attempt` (1-based): `base · 2^(attempt-1)`, capped at 64·base,
    /// plus up to 50% seeded jitter.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(6));
        let span = (exp.as_micros() as u64 / 2).max(1);
        let jitter = splitmix64(self.jitter_seed ^ u64::from(attempt)) % span;
        exp + Duration::from_micros(jitter)
    }

    /// Whether `attempts` failures exhaust the policy.
    pub fn exhausted(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts
    }
}

/// splitmix64 — the same mixer the fault plane uses; duplicated here so
/// the core crate stays independent of the test-support crates.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of one service's Synapse runtime.
#[derive(Debug, Clone)]
pub struct SynapseConfig {
    /// Application name — the message `app` field and queue/exchange name.
    pub app: String,
    /// Delivery mode this service *supports* as a publisher (§3.2:
    /// publishers pick the strongest semantics they are willing to pay for).
    pub publisher_mode: DeliveryMode,
    /// Delivery mode this service *requests* as a subscriber; the effective
    /// mode per publisher is the weaker of the two.
    pub subscriber_mode: DeliveryMode,
    /// Effective dependency space (§4.2's O(1)-memory hashing).
    pub dep_space: DepSpace,
    /// Shards in each version store.
    pub version_store_shards: usize,
    /// How long a subscriber worker waits for a causal dependency before
    /// giving up and processing anyway. The paper's §6.5 recommendation:
    /// "weak and causal modes are achieved with the timeout set to 0 s and
    /// ∞, respectively" — anything in between trades consistency for
    /// availability. `None` means wait forever.
    pub dep_wait_timeout: Option<Duration>,
    /// Subscriber worker threads ("messages in the queue are processed in
    /// parallel by multiple subscriber workers").
    pub subscriber_workers: usize,
    /// Queue backlog cap before decommission (§4.4); `None` = unbounded.
    pub queue_max_len: Option<usize>,
    /// Partitions in this service's broker queue (the scale-out delivery
    /// plane): each partition has its own lock and ready run, routed by the
    /// written object's dependency key so one object's messages stay in one
    /// partition. `0` = the broker's default partition count.
    pub queue_partitions: usize,
    /// Whether idle subscriber workers steal ready runs from partitions
    /// they don't own. On by default; off pins each worker strictly to its
    /// home partitions (useful for isolating partition-ordering tests).
    pub work_stealing: bool,
    /// Retry/backoff policy for transient failures (broker publishes,
    /// subscriber processing); exhaustion dead-letters or journals.
    pub retry: RetryPolicy,
    /// Records copied per chunk during bootstrap's step-2 object copy.
    /// Each chunk commits a watermark, so smaller chunks lose less work to
    /// a mid-copy fault at the cost of more paged reads.
    pub bootstrap_chunk_size: usize,
    /// How long the bootstrap copier waits for every queue partition to
    /// consume a chunk's high watermark before proceeding without the
    /// reconciliation pre-filter. Correctness never depends on the wait
    /// (per-row version admission discards the same stale copies), so
    /// this bounds latency, not safety.
    pub bootstrap_window_timeout: Duration,
    /// Whether the structured telemetry event ring records span-style stage
    /// traces. Counters and latency histograms are always live (they are
    /// plain atomic bumps); this flag only gates the ring, turning each
    /// push into a single relaxed load when off.
    pub telemetry_enabled: bool,
    /// The durability plane (off by default).
    pub durability: DurabilityConfig,
    /// Per-model conflict resolvers for multi-writer (bidirectional)
    /// replication; unregistered models resolve last-writer-wins by
    /// version-vector stamp.
    pub resolvers: ResolverRegistry,
}

impl SynapseConfig {
    /// The paper's default posture: causal publisher, causal subscriber.
    pub fn new(app: impl Into<String>) -> Self {
        SynapseConfig {
            app: app.into(),
            publisher_mode: DeliveryMode::Causal,
            subscriber_mode: DeliveryMode::Causal,
            dep_space: DepSpace::new(1 << 20),
            version_store_shards: 4,
            dep_wait_timeout: Some(Duration::from_secs(10)),
            subscriber_workers: 2,
            queue_max_len: None,
            queue_partitions: 0,
            work_stealing: true,
            retry: RetryPolicy::default(),
            bootstrap_chunk_size: 64,
            bootstrap_window_timeout: Duration::from_millis(500),
            telemetry_enabled: true,
            durability: DurabilityConfig::default(),
            resolvers: ResolverRegistry::new(),
        }
    }

    /// This service's writer id in version vectors: a stable hash of the
    /// app name (never 0, which is reserved for pre-vector scalar history).
    pub fn writer_id(&self) -> u64 {
        writer_id(&self.app)
    }

    /// Sets both publisher and subscriber modes.
    pub fn mode(mut self, mode: DeliveryMode) -> Self {
        self.publisher_mode = mode;
        self.subscriber_mode = mode;
        self
    }

    /// Sets the publisher mode.
    pub fn publisher_mode(mut self, mode: DeliveryMode) -> Self {
        self.publisher_mode = mode;
        self
    }

    /// Sets the subscriber mode.
    pub fn subscriber_mode(mut self, mode: DeliveryMode) -> Self {
        self.subscriber_mode = mode;
        self
    }

    /// Sets the subscriber worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.subscriber_workers = n;
        self
    }

    /// Sets the dependency-wait timeout (`None` = wait forever).
    pub fn wait_timeout(mut self, t: Option<Duration>) -> Self {
        self.dep_wait_timeout = t;
        self
    }

    /// Sets the dependency space.
    pub fn dep_space(mut self, space: DepSpace) -> Self {
        self.dep_space = space;
        self
    }

    /// Sets the queue cap.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_max_len = Some(cap);
        self
    }

    /// Sets the queue partition count (`0` = broker default).
    pub fn queue_partitions(mut self, n: usize) -> Self {
        self.queue_partitions = n;
        self
    }

    /// Enables or disables work stealing between subscriber workers.
    pub fn work_stealing(mut self, on: bool) -> Self {
        self.work_stealing = on;
        self
    }

    /// Sets the retry/backoff policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Sets the bootstrap chunk size (clamped to at least 1 at use).
    pub fn bootstrap_chunk(mut self, records: usize) -> Self {
        self.bootstrap_chunk_size = records;
        self
    }

    /// Sets the bootstrap watermark-window timeout.
    pub fn bootstrap_window_timeout(mut self, t: Duration) -> Self {
        self.bootstrap_window_timeout = t;
        self
    }

    /// Enables or disables the structured telemetry event ring.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry_enabled = enabled;
        self
    }

    /// Turns on the durability plane rooted at `dir` (broker WAL under
    /// `<dir>/wal`, version-store snapshots under `<dir>/snapshots`).
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability.dir = Some(dir.into());
        self
    }

    /// Sets the broker WAL fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.durability.fsync = policy;
        self
    }

    /// Sets the snapshot cadence in subscriber-processed messages
    /// (`None` = only explicit snapshots).
    pub fn snapshot_every(mut self, messages: Option<u64>) -> Self {
        self.durability.snapshot_every = messages;
        self
    }

    /// Enables or disables WAL group commit (on by default; off = the
    /// legacy per-record append path).
    pub fn group_commit(mut self, enabled: bool) -> Self {
        self.durability.group_commit = enabled;
        self
    }

    /// Sets the group-commit staging backpressure threshold in bytes.
    pub fn group_max_bytes(mut self, bytes: u64) -> Self {
        self.durability.group_max_bytes = bytes;
        self
    }

    /// Sets how long a group-commit leader lingers for followers before
    /// writing a batch of one (zero = never wait).
    pub fn group_max_wait(mut self, wait: Duration) -> Self {
        self.durability.group_max_wait = wait;
        self
    }

    /// Sets the durability lane for ack/dead-letter/requeue records.
    pub fn ack_durability(mut self, mode: AckDurability) -> Self {
        self.durability.ack_durability = mode;
        self
    }

    /// Registers a conflict resolver for `model` (multi-writer replication
    /// only; models without one resolve last-writer-wins).
    pub fn resolver(mut self, model: impl Into<String>, r: Arc<dyn ConflictResolver>) -> Self {
        self.resolvers.register(model, r);
        self
    }

    /// Registers a merge-callback resolver for `model` — the closure form
    /// of [`SynapseConfig::resolver`].
    pub fn merge_resolver(
        mut self,
        model: impl Into<String>,
        f: impl Fn(&ConflictCtx<'_>) -> Resolution + Send + Sync + 'static,
    ) -> Self {
        self.resolvers.register(model, Arc::new(MergeFn::new(f)));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = SynapseConfig::new("crowdtap");
        assert_eq!(c.publisher_mode, DeliveryMode::Causal);
        assert_eq!(c.subscriber_mode, DeliveryMode::Causal);
        assert!(c.queue_max_len.is_none());
        assert_eq!(c.queue_partitions, 0, "0 defers to the broker default");
        assert!(c.work_stealing);
        assert!(c.telemetry_enabled);
        assert_eq!(c.bootstrap_chunk_size, 64);
        assert_eq!(c.bootstrap_window_timeout, Duration::from_millis(500));
        assert!(c.durability.dir.is_none(), "durability is off by default");
        assert_eq!(c.durability.fsync, FsyncPolicy::Interval(64));
        assert_eq!(c.durability.snapshot_every, Some(256));
        assert!(c.durability.group_commit, "group commit is on by default");
        assert_eq!(c.durability.group_max_bytes, 4 << 20);
        assert_eq!(c.durability.group_max_wait, Duration::ZERO);
        assert_eq!(c.durability.ack_durability, AckDurability::Relaxed);
        assert!(
            c.durability.wal_config().is_none(),
            "no WAL config while durability is off"
        );
    }

    #[test]
    fn resolver_registration_and_writer_id() {
        let c = SynapseConfig::new("crowdtap");
        assert!(c.resolvers.is_empty(), "no resolvers by default");
        assert_eq!(c.resolvers.get("User").name(), "lww");
        assert_ne!(c.writer_id(), 0, "0 is reserved for legacy history");
        assert_eq!(c.writer_id(), SynapseConfig::new("crowdtap").writer_id());
        assert_ne!(c.writer_id(), SynapseConfig::new("spree").writer_id());

        let c = c.merge_resolver("User", |_| Resolution::KeepLocal);
        assert_eq!(c.resolvers.get("User").name(), "merge");
        assert_eq!(c.resolvers.get("Post").name(), "lww");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy::default();
        for attempt in 1..10 {
            assert_eq!(policy.backoff(attempt), policy.backoff(attempt));
        }
        assert!(policy.backoff(2) >= policy.backoff(1));
        // The exponent caps at 64·base even for huge attempt numbers.
        assert!(policy.backoff(60) < policy.base_backoff * 129);
        let other = RetryPolicy {
            jitter_seed: 999,
            ..RetryPolicy::default()
        };
        assert_ne!(policy.backoff(1), other.backoff(1));
    }

    #[test]
    fn builder_methods_compose() {
        let c = SynapseConfig::new("analytics")
            .mode(DeliveryMode::Weak)
            .workers(8)
            .queue_cap(1000)
            .queue_partitions(16)
            .work_stealing(false)
            .wait_timeout(None)
            .bootstrap_chunk(16)
            .bootstrap_window_timeout(Duration::from_millis(250))
            .telemetry(false)
            .durable("/tmp/analytics-durability")
            .fsync(FsyncPolicy::EveryWrite)
            .snapshot_every(Some(32))
            .group_commit(false)
            .group_max_bytes(1 << 16)
            .group_max_wait(Duration::from_micros(50))
            .ack_durability(AckDurability::Strict);
        assert!(!c.telemetry_enabled);
        assert_eq!(
            c.durability.dir.as_deref(),
            Some(std::path::Path::new("/tmp/analytics-durability"))
        );
        assert_eq!(c.durability.fsync, FsyncPolicy::EveryWrite);
        assert_eq!(c.durability.snapshot_every, Some(32));
        assert!(!c.durability.group_commit);
        assert_eq!(c.durability.group_max_bytes, 1 << 16);
        assert_eq!(c.durability.group_max_wait, Duration::from_micros(50));
        assert_eq!(c.durability.ack_durability, AckDurability::Strict);
        let wal = c.durability.wal_config().expect("durable dir is set");
        assert_eq!(
            wal.dir,
            std::path::Path::new("/tmp/analytics-durability/wal")
        );
        assert_eq!(wal.fsync, FsyncPolicy::EveryWrite);
        assert!(!wal.group_commit);
        assert_eq!(wal.ack_durability, AckDurability::Strict);
        assert_eq!(c.subscriber_mode, DeliveryMode::Weak);
        assert_eq!(c.subscriber_workers, 8);
        assert_eq!(c.queue_max_len, Some(1000));
        assert_eq!(c.queue_partitions, 16);
        assert!(!c.work_stealing);
        assert!(c.dep_wait_timeout.is_none());
        assert_eq!(c.bootstrap_chunk_size, 16);
        assert_eq!(c.bootstrap_window_timeout, Duration::from_millis(250));
    }
}
