//! Per-service Synapse configuration.

use crate::deps::DepSpace;
use crate::semantics::DeliveryMode;
use std::time::Duration;

/// Configuration of one service's Synapse runtime.
#[derive(Debug, Clone)]
pub struct SynapseConfig {
    /// Application name — the message `app` field and queue/exchange name.
    pub app: String,
    /// Delivery mode this service *supports* as a publisher (§3.2:
    /// publishers pick the strongest semantics they are willing to pay for).
    pub publisher_mode: DeliveryMode,
    /// Delivery mode this service *requests* as a subscriber; the effective
    /// mode per publisher is the weaker of the two.
    pub subscriber_mode: DeliveryMode,
    /// Effective dependency space (§4.2's O(1)-memory hashing).
    pub dep_space: DepSpace,
    /// Shards in each version store.
    pub version_store_shards: usize,
    /// How long a subscriber worker waits for a causal dependency before
    /// giving up and processing anyway. The paper's §6.5 recommendation:
    /// "weak and causal modes are achieved with the timeout set to 0 s and
    /// ∞, respectively" — anything in between trades consistency for
    /// availability. `None` means wait forever.
    pub dep_wait_timeout: Option<Duration>,
    /// Subscriber worker threads ("messages in the queue are processed in
    /// parallel by multiple subscriber workers").
    pub subscriber_workers: usize,
    /// Queue backlog cap before decommission (§4.4); `None` = unbounded.
    pub queue_max_len: Option<usize>,
}

impl SynapseConfig {
    /// The paper's default posture: causal publisher, causal subscriber.
    pub fn new(app: impl Into<String>) -> Self {
        SynapseConfig {
            app: app.into(),
            publisher_mode: DeliveryMode::Causal,
            subscriber_mode: DeliveryMode::Causal,
            dep_space: DepSpace::new(1 << 20),
            version_store_shards: 4,
            dep_wait_timeout: Some(Duration::from_secs(10)),
            subscriber_workers: 2,
            queue_max_len: None,
        }
    }

    /// Sets both publisher and subscriber modes.
    pub fn mode(mut self, mode: DeliveryMode) -> Self {
        self.publisher_mode = mode;
        self.subscriber_mode = mode;
        self
    }

    /// Sets the publisher mode.
    pub fn publisher_mode(mut self, mode: DeliveryMode) -> Self {
        self.publisher_mode = mode;
        self
    }

    /// Sets the subscriber mode.
    pub fn subscriber_mode(mut self, mode: DeliveryMode) -> Self {
        self.subscriber_mode = mode;
        self
    }

    /// Sets the subscriber worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.subscriber_workers = n;
        self
    }

    /// Sets the dependency-wait timeout (`None` = wait forever).
    pub fn wait_timeout(mut self, t: Option<Duration>) -> Self {
        self.dep_wait_timeout = t;
        self
    }

    /// Sets the dependency space.
    pub fn dep_space(mut self, space: DepSpace) -> Self {
        self.dep_space = space;
        self
    }

    /// Sets the queue cap.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_max_len = Some(cap);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = SynapseConfig::new("crowdtap");
        assert_eq!(c.publisher_mode, DeliveryMode::Causal);
        assert_eq!(c.subscriber_mode, DeliveryMode::Causal);
        assert!(c.queue_max_len.is_none());
    }

    #[test]
    fn builder_methods_compose() {
        let c = SynapseConfig::new("analytics")
            .mode(DeliveryMode::Weak)
            .workers(8)
            .queue_cap(1000)
            .wait_timeout(None);
        assert_eq!(c.subscriber_mode, DeliveryMode::Weak);
        assert_eq!(c.subscriber_workers, 8);
        assert_eq!(c.queue_max_len, Some(1000));
        assert!(c.dep_wait_timeout.is_none());
    }
}
