//! The pluggable conflict-resolution plane for multi-writer replication.
//!
//! Version vectors make conflict *detection* mechanical: the store
//! classifies every incoming write as dominating (apply), dominated
//! (discard), or concurrent. What to do with a concurrent pair is policy,
//! and this module decouples it the way the replikativ design does —
//! detection stays in the version store, resolution is a per-model
//! [`ConflictResolver`] registered through `SynapseConfig`.
//!
//! # Resolver semantics per delivery mode
//!
//! Resolution always runs under the subscriber's per-object apply slot,
//! but *what the resolver can assume about the local row* depends on the
//! delivery mode:
//!
//! * **weak** — resolution happens at apply time with no dependency
//!   barrier: the local row may not yet reflect writes the incoming one
//!   causally follows. Only commutative policies (LWW, CRDT-style merges)
//!   are safe here.
//! * **causal / global** — the apply runs inside the dep-wait barrier:
//!   every write the incoming message causally depends on (its own
//!   writer's history *and* the foreign components it advertises) has
//!   been applied locally before the resolver sees the pair, so the
//!   local row is a causally-complete peer and the conflict is a true
//!   concurrent fork, never a reordering artifact.
//!
//! # Convergence
//!
//! The default [`LwwResolver`] honors the store's verdict, which orders
//! concurrent versions by LWW stamp (total history length, then writer
//! id). Stamps are unique per version and only ever increase along a
//! replica's admission sequence, so every replica that sees the same set
//! of writes converges on the max-stamp version regardless of delivery
//! order. Merge callbacks must bring their own convergence: a merge
//! function that is commutative, associative, and idempotent (set union,
//! component-wise max, …) converges the same way.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;
use synapse_model::{Id, Value};
use synapse_versionstore::VersionVector;

/// Everything a resolver may inspect about one concurrent write pair.
#[derive(Debug)]
pub struct ConflictCtx<'a> {
    /// Local model name of the conflicted object.
    pub model: &'a str,
    /// Object primary key.
    pub id: Id,
    /// Incoming operation kind (`create`, `update`, or `destroy`).
    pub operation: &'a str,
    /// Incoming attributes, already mapped to local names — what the
    /// apply path would upsert if the incoming side wins.
    pub incoming: &'a BTreeMap<String, Value>,
    /// The local row's current attributes (`None` if the row does not
    /// exist locally).
    pub local: Option<&'a BTreeMap<String, Value>>,
    /// The incoming write's version vector.
    pub incoming_vector: &'a VersionVector,
    /// Writer id of the publishing application.
    pub incoming_writer: u64,
    /// The store's LWW verdict: whether the incoming version's stamp
    /// beats the stamp of the content currently held locally.
    pub lww_wins: bool,
}

/// A resolver's decision for one concurrent pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Keep the local row; the incoming write's content is dropped (its
    /// history is still recorded in the stored vector).
    KeepLocal,
    /// Apply the incoming write as if it dominated.
    TakeIncoming,
    /// Upsert these merged attributes instead of either side.
    Merge(BTreeMap<String, Value>),
}

/// A per-model conflict-resolution policy. Implementations must be
/// deterministic functions of the context — both replicas of a two-writer
/// pair run the resolver independently and must reach the same state.
pub trait ConflictResolver: Send + Sync {
    /// Decides one concurrent pair.
    fn resolve(&self, ctx: &ConflictCtx<'_>) -> Resolution;

    /// Short policy name for telemetry and debug output.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The default policy: last-writer-wins by version-vector stamp (history
/// length, then writer id) — the store's verdict, honored as-is.
#[derive(Debug, Default, Clone, Copy)]
pub struct LwwResolver;

impl ConflictResolver for LwwResolver {
    fn resolve(&self, ctx: &ConflictCtx<'_>) -> Resolution {
        if ctx.lww_wins {
            Resolution::TakeIncoming
        } else {
            Resolution::KeepLocal
        }
    }

    fn name(&self) -> &'static str {
        "lww"
    }
}

/// The merge-callback escape hatch: wraps a user closure as a resolver.
pub struct MergeFn {
    f: Arc<dyn Fn(&ConflictCtx<'_>) -> Resolution + Send + Sync>,
}

impl MergeFn {
    /// Wraps `f` as a [`ConflictResolver`].
    pub fn new(f: impl Fn(&ConflictCtx<'_>) -> Resolution + Send + Sync + 'static) -> Self {
        MergeFn { f: Arc::new(f) }
    }
}

impl ConflictResolver for MergeFn {
    fn resolve(&self, ctx: &ConflictCtx<'_>) -> Resolution {
        (self.f)(ctx)
    }

    fn name(&self) -> &'static str {
        "merge"
    }
}

impl fmt::Debug for MergeFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MergeFn").finish_non_exhaustive()
    }
}

fn default_resolver() -> &'static Arc<dyn ConflictResolver> {
    static LWW: OnceLock<Arc<dyn ConflictResolver>> = OnceLock::new();
    LWW.get_or_init(|| Arc::new(LwwResolver))
}

/// Per-model resolver registrations, carried by `SynapseConfig` and read
/// by the subscriber's apply path. Models without a registration get the
/// [`LwwResolver`] default.
#[derive(Clone, Default)]
pub struct ResolverRegistry {
    by_model: HashMap<String, Arc<dyn ConflictResolver>>,
}

impl ResolverRegistry {
    /// An empty registry (every model resolves LWW).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `resolver` for `model`, replacing any previous one.
    pub fn register(&mut self, model: impl Into<String>, resolver: Arc<dyn ConflictResolver>) {
        self.by_model.insert(model.into(), resolver);
    }

    /// The resolver for `model` (the LWW default when unregistered).
    pub fn get(&self, model: &str) -> &Arc<dyn ConflictResolver> {
        self.by_model
            .get(model)
            .unwrap_or_else(|| default_resolver())
    }

    /// Whether any model has a custom registration.
    pub fn is_empty(&self) -> bool {
        self.by_model.is_empty()
    }
}

impl fmt::Debug for ResolverRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (model, resolver) in &self.by_model {
            map.entry(model, &resolver.name());
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        incoming: &'a BTreeMap<String, Value>,
        vector: &'a VersionVector,
        lww_wins: bool,
    ) -> ConflictCtx<'a> {
        ConflictCtx {
            model: "User",
            id: Id(1),
            operation: "update",
            incoming,
            local: None,
            incoming_vector: vector,
            incoming_writer: 9,
            lww_wins,
        }
    }

    #[test]
    fn lww_resolver_honors_the_store_verdict() {
        let attrs = BTreeMap::new();
        let vector = VersionVector::component(9, 1);
        assert_eq!(
            LwwResolver.resolve(&ctx(&attrs, &vector, true)),
            Resolution::TakeIncoming
        );
        assert_eq!(
            LwwResolver.resolve(&ctx(&attrs, &vector, false)),
            Resolution::KeepLocal
        );
    }

    #[test]
    fn registry_defaults_to_lww_and_honors_registrations() {
        let mut registry = ResolverRegistry::new();
        assert_eq!(registry.get("User").name(), "lww");
        assert!(registry.is_empty());

        registry.register(
            "User",
            Arc::new(MergeFn::new(|_| Resolution::Merge(BTreeMap::new()))),
        );
        assert_eq!(registry.get("User").name(), "merge");
        assert_eq!(registry.get("Post").name(), "lww");

        let attrs = BTreeMap::new();
        let vector = VersionVector::component(9, 1);
        assert_eq!(
            registry.get("User").resolve(&ctx(&attrs, &vector, false)),
            Resolution::Merge(BTreeMap::new())
        );
        let debug = format!("{registry:?}");
        assert!(debug.contains("User") && debug.contains("merge"), "{debug}");
    }
}
