//! Publisher-overhead instrumentation (Fig. 12) — compatibility shim.
//!
//! The collector itself now lives in [`synapse_telemetry::controller`],
//! alongside the rest of the telemetry plane; this module re-exports it
//! under its historical path and bridges the core crate's request-scope
//! measurements ([`ScopeStats`]) into the telemetry crate's input type
//! ([`ScopeSample`]), so existing callers — notably the MVC dispatcher's
//! `stats.record(controller, elapsed, scope_stats)` — compile unchanged.

use crate::context::ScopeStats;

pub use synapse_telemetry::controller::{ControllerRow, ControllerStats, Sample, ScopeSample};

impl From<ScopeStats> for ScopeSample {
    fn from(s: ScopeStats) -> ScopeSample {
        ScopeSample {
            synapse_nanos: s.synapse_nanos,
            messages: s.messages,
            deps_published: s.deps_published,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scope_stats_record_through_the_shim() {
        let stats = ControllerStats::new();
        stats.record(
            "actions/update",
            Duration::from_millis(100),
            ScopeStats {
                synapse_nanos: 10_000_000,
                messages: 2,
                deps_published: 6,
            },
        );
        let row = stats.row("actions/update").unwrap();
        assert_eq!(row.calls, 1);
        assert!((row.mean_messages - 2.0).abs() < 1e-9);
        assert!((row.overhead - 0.1).abs() < 0.01);
    }
}
