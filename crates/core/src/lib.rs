//! Synapse: ORM-level cross-database replication for microservices.
//!
//! This crate is the reproduction of the paper's contribution (EuroSys'15):
//! a publish/subscribe layer over MVC model objects that replicates data in
//! real time between services running on heterogeneous databases, with
//! selectable delivery semantics.
//!
//! # Architecture (Fig. 6(a))
//!
//! * [`api`] — the programming model of Table 2: [`api::Publication`],
//!   [`api::Subscription`], decorators, ephemerals, observers, virtual
//!   attributes, explicit dependencies.
//! * [`publisher`] — the query interceptor: discovers read/write
//!   dependencies inside controller scopes, runs the version-store bump
//!   protocol, marshals write messages, and publishes them (with a journal
//!   providing the 2PC-style atomicity of §4.2).
//! * [`subscriber`] — worker pools that consume a service's queue, enforce
//!   the configured delivery semantics against the version store, and
//!   persist updates through the local ORM (invoking active-model
//!   callbacks).
//! * [`semantics`] — the three delivery modes (global / causal / weak) and
//!   their degradation rules (§3.2).
//! * [`message`] — the JSON write-message format of Fig. 6(b).
//! * [`context`] — causal scopes: controller executions and background
//!   jobs, including the per-user-session serialization rule.
//! * [`node`] — [`node::SynapseNode`], one service's runtime, and
//!   [`node::Ecosystem`], the wiring harness (broker + bootstrap plumbing).
//! * [`testing`] — the testing framework of §4.5: factories, static
//!   publish/subscribe checks, payload emulation.
//! * [`stats`] — publisher-overhead instrumentation behind Fig. 12
//!   (re-exported from `synapse-telemetry`, where the whole telemetry
//!   plane — staged latency histograms, counters, event ring — now lives).

pub mod api;
pub mod config;
pub mod context;
pub mod deps;
pub mod durability;
pub mod message;
pub mod migration;
pub mod node;
pub mod publisher;
pub mod resolve;
pub mod semantics;
pub mod stats;
pub mod subscriber;
pub mod testing;

pub use api::{Publication, Subscription};
pub use config::{DurabilityConfig, RetryPolicy, SynapseConfig};
pub use context::{add_read_deps, add_write_deps, in_scope, with_scope, with_user_scope};
pub use deps::{
    mesh_object, normalize_dep_sets, writer_id, DepInterner, DepName, DepSpace, MESH_NAMESPACE,
};
pub use durability::{NodeSnapshot, SnapshotStats, SnapshotStore};
pub use message::{Operation, WriteMessage};
pub use migration::{check_migration, MigrationStep};
pub use node::{BootstrapPhase, BootstrapState, BootstrapStats, Ecosystem, NodeStats, SynapseNode};
pub use resolve::{
    ConflictCtx, ConflictResolver, LwwResolver, MergeFn, Resolution, ResolverRegistry,
};
pub use semantics::DeliveryMode;
pub use stats::ControllerStats;
pub use subscriber::{CopyOutcome, ProcessError};
pub use synapse_broker::AckDurability;
pub use synapse_telemetry::{ModeSlice, Stage, Telemetry, TelemetrySnapshot};
