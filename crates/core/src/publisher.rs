//! The publisher: query interception, dependency tracking, the version
//! bump protocol, marshalling, and reliable publication.
//!
//! The publisher is a [`QueryObserver`] installed on the service's ORM. For
//! every intercepted write of a published model it (§4.2):
//!
//! 1. computes the operation's dependencies from the delivery mode and the
//!    current causal scope (object write dep; user-session write dep;
//!    controller chain + implicit/explicit read deps; global dep);
//! 2. acquires locks on the write dependencies (all-or-nothing, so
//!    concurrent controllers cannot deadlock);
//! 3. executes the underlying query and reads back the written object;
//! 4. runs the version-store bump script and collects the dependency
//!    versions for the message;
//! 5. marshals the published attributes (including virtual getters) and
//!    either publishes the message or appends it to the open transaction
//!    buffer ("all writes within a single transaction are combined into a
//!    single message");
//! 6. journals the payload before handing it to the broker — the
//!    2PC-flavoured guarantee that a crash between version bump and
//!    publication can be recovered by [`Publisher::recover`].
//!
//! It also enforces the ownership rules of §3.1: a service cannot create or
//! delete instances of models it merely subscribes to, and cannot update
//! imported attributes (decorations remain writable).

use crate::api::{Publication, Subscription};
use crate::config::RetryPolicy;
use crate::context::{self, TxBuffer};
use crate::deps::{normalize_dep_sets_with, writer_id, DepInterner, DepName, DepSpace};
use crate::message::{now_micros, Operation, WriteMessage};
use crate::semantics::DeliveryMode;
use parking_lot::{Condvar, Mutex, RwLock};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use synapse_broker::{Broker, SharedStr};
use synapse_model::{Record, Value};
use synapse_orm::{Orm, OrmError, QueryObserver, WriteExec, WriteIntent, WriteKind};
use synapse_telemetry::{mono_nanos, Stage, Telemetry};
use synapse_versionstore::{
    BumpScratch, DepKey, GenerationStore, StoreError, VersionStore, VersionVector,
};

/// All-or-nothing lock manager over effective dependency keys.
///
/// A writer atomically acquires its whole key set or blocks; because there
/// is no hold-and-wait, writers cannot deadlock.
#[derive(Default)]
pub struct LockManager {
    held: Mutex<HashSet<DepKey>>,
    released: Condvar,
}

impl LockManager {
    /// Acquires every key in `keys`, blocking until all are free.
    pub fn lock(&self, keys: &[DepKey]) -> LockGuard<'_> {
        let mut held = self.held.lock();
        loop {
            if keys.iter().all(|k| !held.contains(k)) {
                for k in keys {
                    held.insert(*k);
                }
                return LockGuard {
                    manager: self,
                    keys: keys.to_vec(),
                };
            }
            self.released.wait(&mut held);
        }
    }
}

/// Guard releasing dependency locks on drop.
pub struct LockGuard<'a> {
    manager: &'a LockManager,
    keys: Vec<DepKey>,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        let mut held = self.manager.held.lock();
        for k in &self.keys {
            held.remove(k);
        }
        drop(held);
        self.manager.released.notify_all();
    }
}

/// Publisher counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PublisherStats {
    /// Messages successfully handed to the broker.
    pub messages_published: u64,
    /// Operations marshalled.
    pub operations: u64,
    /// Generation bumps after a version-store loss.
    pub generation_bumps: u64,
    /// Individual broker publish attempts that failed transiently.
    pub publish_retries: u64,
    /// Publishes abandoned after exhausting the retry policy; the payload
    /// stays journaled for [`Publisher::recover`].
    pub publish_failures: u64,
}

/// Per-thread working buffers of the write path. Everything the
/// interception pipeline used to allocate per message — dependency lists,
/// the dedup set, the bump script and its outputs, the lock key set — lives
/// here and is reused across writes on the same thread.
#[derive(Default)]
struct PublishScratch {
    write_deps: Vec<DepName>,
    read_deps: Vec<DepName>,
    seen: HashSet<DepName>,
    script: Vec<(DepKey, bool)>,
    externals: Vec<DepKey>,
    bumped: Vec<DepKey>,
    bump_out: Vec<(DepKey, u64)>,
    bump: BumpScratch,
    lock_keys: Vec<DepKey>,
}

thread_local! {
    /// Moved out with [`take_scratch`] for the duration of one write and
    /// moved back with [`put_scratch`] — a re-entrant write (a virtual
    /// getter or `exec` callback publishing again) simply takes a fresh
    /// default instead of panicking on a held borrow.
    static PUBLISH_SCRATCH: RefCell<Option<PublishScratch>> = const { RefCell::new(None) };
    /// Wire-encode buffer reused across messages before freezing each
    /// payload into a [`SharedStr`].
    static ENCODE_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

fn take_scratch() -> PublishScratch {
    PUBLISH_SCRATCH
        .with(|s| s.borrow_mut().take())
        .unwrap_or_default()
}

fn put_scratch(scratch: PublishScratch) {
    PUBLISH_SCRATCH.with(|s| *s.borrow_mut() = Some(scratch));
}

/// The publisher runtime for one service. See the module docs.
pub struct Publisher {
    app: String,
    /// `"{app}/"` — precomputed so the external-dependency test is a plain
    /// prefix compare instead of a per-call `format!`.
    app_prefix: String,
    /// The app's global-ordering dependency, built once.
    global_dep: DepName,
    /// This app's writer id in version vectors (multi-writer replication).
    writer: u64,
    /// Per-node dependency-name interner (see [`DepInterner`]).
    interner: DepInterner,
    mode: DeliveryMode,
    dep_space: DepSpace,
    store: Arc<VersionStore>,
    /// The subscriber-side version store, read (never written) to stamp
    /// *external* dependencies on decorated publications (§4.2).
    sub_store: Arc<VersionStore>,
    broker: Broker,
    generations: GenerationStore,
    publications: Arc<RwLock<BTreeMap<String, Publication>>>,
    subscriptions: Arc<RwLock<Vec<Subscription>>>,
    locks: LockManager,
    /// Publish journal: payloads not yet confirmed at the broker, each with
    /// its monotonic origin stamp (so recovery republishes with the
    /// original publish time) and its partition routing key (so a recovery
    /// republish lands in the same partition as the original would have,
    /// keeping per-object partition residency stable across crashes).
    /// Shared with the broker's queues — journaling is a pointer bump, not
    /// a copy.
    journal: Mutex<BTreeMap<u64, (SharedStr, u64, u64)>>,
    journal_seq: AtomicU64,
    /// Failure injection: while set, payloads stay journaled instead of
    /// reaching the broker (a crash between DB commit and publication).
    fail_publish: AtomicBool,
    retry: RetryPolicy,
    /// The node's telemetry plane; publisher-side stages (intercept, dep
    /// compute, wire encode, broker enqueue) are recorded under this
    /// publisher's delivery-mode slice.
    telemetry: Arc<Telemetry>,
    messages_published: AtomicU64,
    operations: AtomicU64,
    generation_bumps: AtomicU64,
    publish_retries: AtomicU64,
    publish_failures: AtomicU64,
}

impl Publisher {
    /// Creates a publisher runtime.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        app: String,
        mode: DeliveryMode,
        dep_space: DepSpace,
        store: Arc<VersionStore>,
        sub_store: Arc<VersionStore>,
        broker: Broker,
        generations: GenerationStore,
        publications: Arc<RwLock<BTreeMap<String, Publication>>>,
        subscriptions: Arc<RwLock<Vec<Subscription>>>,
        retry: RetryPolicy,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        Publisher {
            app_prefix: format!("{app}/"),
            global_dep: DepName::global(&app),
            writer: writer_id(&app),
            interner: DepInterner::new(),
            app,
            mode,
            dep_space,
            store,
            sub_store,
            broker,
            generations,
            publications,
            subscriptions,
            locks: LockManager::default(),
            journal: Mutex::new(BTreeMap::new()),
            journal_seq: AtomicU64::new(0),
            fail_publish: AtomicBool::new(false),
            retry,
            telemetry,
            messages_published: AtomicU64::new(0),
            operations: AtomicU64::new(0),
            generation_bumps: AtomicU64::new(0),
            publish_retries: AtomicU64::new(0),
            publish_failures: AtomicU64::new(0),
        }
    }

    /// The delivery mode this publisher supports.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// Current counters.
    pub fn stats(&self) -> PublisherStats {
        PublisherStats {
            messages_published: self.messages_published.load(Ordering::Relaxed),
            operations: self.operations.load(Ordering::Relaxed),
            generation_bumps: self.generation_bumps.load(Ordering::Relaxed),
            publish_retries: self.publish_retries.load(Ordering::Relaxed),
            publish_failures: self.publish_failures.load(Ordering::Relaxed),
        }
    }

    /// Failure injection: simulate a crash window where the broker is
    /// unreachable after the local commit. Payloads accumulate in the
    /// journal until [`Publisher::recover`].
    pub fn inject_publish_failure(&self, on: bool) {
        self.fail_publish.store(on, Ordering::SeqCst);
    }

    /// Number of journaled (journalized but unconfirmed) payloads.
    pub fn journal_len(&self) -> usize {
        self.journal.lock().len()
    }

    /// Re-publishes every journaled payload (crash recovery). Payloads the
    /// broker still refuses after the retry policy stay journaled, so
    /// `recover` can be called again later without losing anything.
    pub fn recover(&self) {
        let pending: Vec<(u64, SharedStr, u64, u64)> = {
            let journal = self.journal.lock();
            journal
                .iter()
                .map(|(k, (p, origin, key))| (*k, p.clone(), *origin, *key))
                .collect()
        };
        for (seq, payload, origin, key) in pending {
            if self.send_with_retry(&payload, origin, key) {
                self.messages_published.fetch_add(1, Ordering::Relaxed);
                self.journal.lock().remove(&seq);
            }
        }
    }

    /// Hands one payload to the broker under the retry policy; counts
    /// every transiently failed attempt and the final exhaustion. Returns
    /// whether the broker accepted it.
    fn send_with_retry(&self, payload: &SharedStr, origin_nanos: u64, route_key: u64) -> bool {
        for attempt in 1..=self.retry.max_attempts.max(1) {
            match self
                .broker
                .publish_routed(&self.app, payload, origin_nanos, route_key)
            {
                Ok(()) => return true,
                Err(_) => {
                    self.publish_retries.fetch_add(1, Ordering::Relaxed);
                    if !self.retry.exhausted(attempt) {
                        std::thread::sleep(self.retry.backoff(attempt));
                    }
                }
            }
        }
        self.publish_failures.fetch_add(1, Ordering::Relaxed);
        false
    }

    fn subscription_for(&self, model: &str) -> Option<Subscription> {
        self.subscriptions
            .read()
            .iter()
            .find(|s| s.model == model)
            .cloned()
    }

    fn is_external(&self, dep: &DepName) -> bool {
        !dep.as_str().starts_with(&self.app_prefix)
    }

    /// Enforces §3.1 ownership: subscribers cannot create/delete imported
    /// models nor update imported attributes. Bidirectional subscriptions
    /// opt out — every peer is a writer and concurrent writes are handled
    /// by the conflict-resolution plane instead of prevented here.
    fn check_ownership(&self, intent: &WriteIntent) -> Result<(), OrmError> {
        if context::is_replicating() {
            return Ok(());
        }
        if let Some(sub) = self.subscription_for(&intent.model) {
            if sub.bidirectional {
                return Ok(());
            }
            match intent.kind {
                WriteKind::Create | WriteKind::Delete => {
                    return Err(OrmError::Restriction(format!(
                        "{} subscribes to {} from {}; only the owner may {} instances",
                        self.app,
                        intent.model,
                        sub.from,
                        if intent.kind == WriteKind::Create {
                            "create"
                        } else {
                            "delete"
                        },
                    )));
                }
                WriteKind::Update => {
                    let imported = sub.local_fields();
                    for field in intent.changes.keys() {
                        if imported.contains(&field.as_str()) {
                            return Err(OrmError::Restriction(format!(
                                "{} cannot update imported attribute {}.{} (owned by {})",
                                self.app, intent.model, field, sub.from
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Marshals the record's published attributes (§4.1), evaluating
    /// virtual-attribute getters.
    fn marshal(&self, orm: &Orm, publication: &Publication, record: &Record) -> Record {
        let mut out = Record::new(record.model.clone(), record.id);
        out.types = record.types.clone();
        for field in &publication.fields {
            let value = match orm.virtuals().get_getter(&record.model, field) {
                Some(getter) => getter(orm, record),
                None => record.get(field).clone(),
            };
            if !value.is_null() {
                out.attrs.insert(field.clone(), value);
            } else if record.attrs.contains_key(field) {
                out.attrs.insert(field.clone(), Value::Null);
            }
        }
        out
    }

    /// Marshals a record for the bulk transfer of bootstrap step 2 — the
    /// same projection (published attributes + virtual getters) live
    /// updates get.
    pub fn marshal_for_bootstrap(
        &self,
        orm: &Orm,
        publication: &Publication,
        record: &Record,
    ) -> Record {
        self.marshal(orm, publication, record)
    }

    /// Computes `(write_deps, read_deps)` for an operation under the
    /// publisher's delivery mode (§4.2), into the scratch lists. Scope
    /// names are already interned, so extending the lists clones pointers;
    /// normalization is the linear hash-set pass of
    /// [`crate::deps::normalize_dep_sets`].
    fn compute_deps(&self, intent: &WriteIntent, scratch: &mut PublishScratch) {
        let PublishScratch {
            write_deps,
            read_deps,
            seen,
            ..
        } = scratch;
        write_deps.clear();
        read_deps.clear();
        write_deps.push(self.interner.object(&self.app, &intent.model, intent.id));
        match self.mode {
            DeliveryMode::Weak => {}
            DeliveryMode::Global => {
                // One global object serializes all writes.
                write_deps.push(self.global_dep.clone());
            }
            DeliveryMode::Causal => {
                context::scope_mut(|scope| {
                    // (3) user-session serialization: the session's user is
                    // a write dependency of every write.
                    if let Some(user) = &scope.user_dep {
                        write_deps.push(user.clone());
                    }
                    // (2) controller serialization: chain on the previous
                    // update's first write dependency.
                    if let Some(prev) = &scope.last_write_dep {
                        read_deps.push(prev.clone());
                    }
                    // (1-implicit) objects read in this scope.
                    read_deps.extend(scope.read_deps.iter().cloned());
                    read_deps.extend(scope.explicit_read.iter().cloned());
                    write_deps.extend(scope.explicit_write.iter().cloned());
                });
            }
        }
        normalize_dep_sets_with(seen, write_deps, read_deps);
    }

    /// Runs the bump protocol over the scratch dependency lists and
    /// assembles the dependency map. `scratch.bumped` is left holding the
    /// keys whose `ops` counter was incremented (needed to rebase
    /// dependencies of later operations in the same transaction).
    fn bump_versions(
        &self,
        scratch: &mut PublishScratch,
    ) -> Result<BTreeMap<DepKey, u64>, StoreError> {
        scratch.script.clear();
        scratch.externals.clear();
        scratch.bumped.clear();
        for d in &scratch.write_deps {
            scratch.script.push((self.dep_space.key(d), true));
        }
        for d in &scratch.read_deps {
            let key = self.dep_space.key(d);
            if self.is_external(d) {
                // External dependencies are stamped from the subscriber-side
                // store and never incremented (§4.2).
                scratch.externals.push(key);
            } else {
                scratch.script.push((key, false));
            }
        }
        scratch
            .bumped
            .extend(scratch.script.iter().map(|(k, _)| *k));
        self.store
            .publish_bump_into(&scratch.script, &mut scratch.bump, &mut scratch.bump_out)?;
        let mut deps: BTreeMap<DepKey, u64> = scratch.bump_out.iter().copied().collect();
        for key in &scratch.externals {
            let value = self.sub_store.ops(*key).unwrap_or(0);
            deps.entry(*key).or_insert(value);
        }
        Ok(deps)
    }

    /// Stamps a bidirectional write's version vector: everything this node
    /// has seen for the object — all writers' components, tracked in the
    /// subscriber-side store — plus one increment of its own component.
    /// The stamped vector is recorded back into the sub store so later
    /// local writes extend it and concurrent incoming writes classify
    /// against it. Returns `None` when the sub store is dead (the message
    /// then falls back to its scalar dependency at the subscriber).
    fn stamp_vector(&self, object_key: DepKey) -> Option<VersionVector> {
        let mut vector = self.sub_store.latest_vector(object_key).ok()?;
        vector.set(self.writer, vector.get(self.writer) + 1);
        self.sub_store
            .advance_vector(object_key, &vector, self.writer)
            .ok()?;
        Some(vector)
    }

    /// Publishes (or buffers) one operation with its dependency map and,
    /// for bidirectional models, the object's stamped version vector.
    fn emit(
        &self,
        op: Operation,
        deps: BTreeMap<DepKey, u64>,
        bumped: &[DepKey],
        stamp: Option<(DepKey, VersionVector)>,
    ) {
        self.operations.fetch_add(1, Ordering::Relaxed);
        let dep_count = deps.len() as u64;
        // The operation is moved into whichever sink takes it; the slot
        // hands it through the scope closure without a clone.
        let mut slot = Some(op);
        let mut stamp_slot = stamp;
        let buffered = context::scope_mut(|scope| {
            if let Some(buf) = scope.tx_buffer.as_mut() {
                buf.operations
                    .push(slot.take().expect("operation emitted once"));
                for (k, v) in &deps {
                    // Rebase by the increments earlier buffered operations
                    // already contributed, so the message only waits on
                    // pre-transaction state.
                    let rebased = v.saturating_sub(buf.bumped.get(k).copied().unwrap_or(0));
                    let entry = buf.dependencies.entry(*k).or_insert(rebased);
                    *entry = (*entry).max(rebased);
                }
                for k in bumped {
                    *buf.bumped.entry(*k).or_default() += 1;
                }
                if let Some((key, vector)) = stamp_slot.take() {
                    // Two buffered writes of one object join into the later
                    // vector (set-then-join is the identity on the earlier).
                    buf.vectors.entry(key).or_default().join(&vector);
                }
                true
            } else {
                scope.messages += 1;
                scope.deps_published += dep_count;
                false
            }
        })
        .unwrap_or(false);
        if !buffered {
            let op = slot.take().expect("unbuffered operation retained");
            let vectors = stamp_slot.into_iter().collect();
            self.publish_message(vec![op], deps, vectors);
        }
    }

    /// Builds, journals, and publishes a message. The monotonic origin
    /// stamp taken here anchors the message's end-to-end visibility
    /// latency; it rides the broker envelope (never the pinned wire
    /// format) and survives in the journal for recovery republishes.
    pub(crate) fn publish_message(
        &self,
        operations: Vec<Operation>,
        deps: BTreeMap<DepKey, u64>,
        vectors: BTreeMap<DepKey, VersionVector>,
    ) {
        let origin_nanos = mono_nanos();
        let mode = self.mode.slice();
        // Partition routing key: the first operation's object dependency —
        // the same dep that heads `write_deps` in the intercept path — so
        // all of one object's messages ride one broker partition in publish
        // order. Combined transaction messages route by their first write.
        // Global mode publishes a total order (every message depends on its
        // predecessor), so spreading it across partitions would only make
        // subscribers hunt for the chain head — it routes on the key-0
        // legacy lane (partition 0, strict global FIFO) instead.
        let route_key = if self.mode == DeliveryMode::Global {
            0
        } else {
            operations
                .first()
                .map(|op| {
                    self.dep_space
                        .key(&self.interner.object(&self.app, op.model(), op.id))
                })
                .unwrap_or(0)
        };
        let msg = WriteMessage {
            app: self.app.clone(),
            operations,
            dependencies: deps,
            published_at: now_micros(),
            generation: self.generations.current(),
            vectors,
        };
        // Encode into the thread's scratch buffer, then freeze one
        // right-sized Arc allocation for journal + broker.
        let payload = ENCODE_SCRATCH.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.clear();
            msg.encode_into(&mut buf);
            SharedStr::from(buf.as_str())
        });
        let encoded_nanos = mono_nanos();
        self.telemetry
            .record_stage(mode, Stage::WireEncode, encoded_nanos - origin_nanos);
        let seq = self.journal_seq.fetch_add(1, Ordering::Relaxed);
        self.journal
            .lock()
            .insert(seq, (payload.clone(), origin_nanos, route_key));
        if self.fail_publish.load(Ordering::SeqCst) {
            // Simulated crash window: the journal retains the payload.
            return;
        }
        // §4.2's 2PC tail: the payload leaves the journal only once the
        // broker confirms it. Exhausted retries leave it journaled — the
        // version bump already happened, so dropping the payload here
        // would silently lose the write (§6.5's root failure mode).
        if self.send_with_retry(&payload, origin_nanos, route_key) {
            self.telemetry.record_stage(
                mode,
                Stage::BrokerEnqueue,
                mono_nanos().saturating_sub(encoded_nanos),
            );
            self.messages_published.fetch_add(1, Ordering::Relaxed);
            self.journal.lock().remove(&seq);
        }
    }

    /// Flushes a transaction buffer as a single combined message.
    pub(crate) fn flush_transaction(&self, buffer: TxBuffer) {
        if buffer.operations.is_empty() {
            return;
        }
        let dep_count = buffer.dependencies.len() as u64;
        context::scope_mut(|scope| {
            scope.messages += 1;
            scope.deps_published += dep_count;
        });
        self.publish_message(buffer.operations, buffer.dependencies, buffer.vectors);
    }

    /// Handles a dead publisher version store: bump the generation in the
    /// reliable store, revive empty, and continue (§4.4).
    fn handle_store_death(&self) {
        self.generations.increment();
        self.store.revive();
        self.generation_bumps.fetch_add(1, Ordering::Relaxed);
    }
}

impl QueryObserver for Publisher {
    fn on_read(&self, _orm: &Orm, records: &[Record]) {
        if !context::in_scope() || context::is_replicating() {
            return;
        }
        // Models this service subscribes to belong to their *origin* app
        // (external dependencies, §4.2); everything else is local. One
        // subscription read-lock covers the whole result set.
        let subs = self.subscriptions.read();
        for r in records {
            let from = subs
                .iter()
                .find(|s| s.model == r.model)
                .map(|s| s.from.as_str())
                .unwrap_or(&self.app);
            context::record_read(self.interner.object(from, &r.model, r.id));
        }
    }

    fn around_write(
        &self,
        orm: &Orm,
        intent: &WriteIntent,
        exec: &mut WriteExec<'_>,
    ) -> Result<Record, OrmError> {
        let start = Instant::now();
        self.check_ownership(intent)?;
        let publication = self.publications.read().get(&intent.model).cloned();
        let publication = match publication {
            Some(p) => p,
            None => return exec(),
        };
        if context::is_replicating() {
            // Replicated applications of upstream data are never republished
            // (only a service's own writes of its published attributes are).
            return exec();
        }

        let mut scratch = take_scratch();
        let intercept_nanos = start.elapsed().as_nanos() as u64;
        self.compute_deps(intent, &mut scratch);
        scratch.lock_keys.clear();
        scratch
            .lock_keys
            .extend(scratch.write_deps.iter().map(|d| self.dep_space.key(d)));
        scratch.lock_keys.sort_unstable();
        scratch.lock_keys.dedup();
        let pre_nanos = start.elapsed().as_nanos() as u64;
        let mode = self.mode.slice();
        self.telemetry
            .record_stage(mode, Stage::Intercept, intercept_nanos);
        self.telemetry.record_stage(
            mode,
            Stage::DepCompute,
            pre_nanos.saturating_sub(intercept_nanos),
        );

        let guard = self.locks.lock(&scratch.lock_keys);
        let record = match exec() {
            Ok(r) => r,
            Err(e) => {
                drop(guard);
                put_scratch(scratch);
                return Err(e);
            }
        };

        let post = Instant::now();
        let deps = match self.bump_versions(&mut scratch) {
            Ok(d) => d,
            Err(StoreError::Dead) => {
                // §4.4: increment the generation and resume with a fresh
                // store; subscribers flush on seeing the new generation.
                self.handle_store_death();
                self.bump_versions(&mut scratch)
                    .expect("revived store accepts the bump")
            }
        };
        let marshalled = self.marshal(orm, &publication, &record);
        let op = Operation::from_record(intent.kind.wire_name(), &marshalled);
        // Bidirectional models stamp the object's version vector while the
        // object lock is held, so local writes of one object extend a
        // single per-writer history. The vector lives under the
        // writer-independent *mesh* key — every writer of the object
        // stamps and classifies against the same entry, which is what
        // lets concurrent remote writes meet this one for comparison.
        let stamp = if publication.bidirectional {
            let mesh_key = self
                .dep_space
                .key(&crate::deps::mesh_object(&intent.model, record.id));
            self.stamp_vector(mesh_key).map(|v| (mesh_key, v))
        } else {
            None
        };
        self.emit(op, deps, &scratch.bumped, stamp);
        drop(guard);

        // Maintain the in-controller causal chain.
        let first_write = scratch.write_deps.first().cloned();
        put_scratch(scratch);
        context::scope_mut(|scope| {
            scope.last_write_dep = first_write.clone();
            scope.synapse_nanos += pre_nanos + post.elapsed().as_nanos() as u64;
        });
        Ok(record)
    }
}
