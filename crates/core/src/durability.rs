//! Node-level durability: periodic version-store snapshots.
//!
//! The broker WAL makes queue state recoverable; this module covers the
//! other half of a node's soft state — its publisher- and subscriber-side
//! version stores (dependency counters, freshness marks, and the
//! bootstrap watermarks stored as versions under reserved keys). A
//! [`NodeSnapshot`] is a full dump of both stores plus the broker WAL
//! position at capture time, so recovery is: load the latest snapshot,
//! then let WAL replay and watermark-resumed bootstrap close the gap
//! between the snapshot and the crash.
//!
//! # On-disk format
//!
//! One file per snapshot, `state-<seq>.snap`, written atomically: encode
//! to `state-<seq>.snap.tmp`, fsync, rename, fsync again — a crash
//! mid-write leaves a `.tmp` that [`SnapshotStore::load_latest`] ignores,
//! never a half-readable snapshot. The body reuses the broker WAL codec
//! (length-prefixed little-endian fields) and is covered by a whole-body
//! CRC32, so a corrupted snapshot is skipped in favor of the next-older
//! valid one rather than trusted.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use synapse_broker::wal::{crc32, put_u32, put_u64, ByteReader};
use synapse_broker::LogPos;
use synapse_versionstore::DumpEntry;

// SYNSNAP3: entries carry the full per-writer version vector plus the LWW
// winner stamp, so multi-writer conflict state survives restarts.
// SYNSNAP2 files (scalar versions, explicit-write flag in the version's
// low bit) still load: their scalars decode onto the legacy vector
// component. SYNSNAP1 snapshots fail the magic check and recovery falls
// back to full WAL replay + bootstrap, which is always safe.
const SNAPSHOT_MAGIC: &[u8; 8] = b"SYNSNAP3";
const SNAPSHOT_MAGIC_V2: &[u8; 8] = b"SYNSNAP2";

/// A point-in-time image of one node's version state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSnapshot {
    /// Monotonic snapshot sequence number (for file naming and pruning).
    pub seq: u64,
    /// Broker WAL position when the snapshot was captured; the log tail
    /// from here forward is what recovery still has to replay.
    pub wal_pos: LogPos,
    /// Publisher-store dump.
    pub pub_entries: Vec<DumpEntry>,
    /// Subscriber-store dump — includes the bootstrap watermarks (and
    /// destroy tombstones via the `versioned` flag), which is what lets
    /// an interrupted bootstrap resume as a delta replay after restart
    /// without resurrecting deleted rows.
    pub sub_entries: Vec<DumpEntry>,
}

fn put_entries(out: &mut Vec<u8>, entries: &[DumpEntry]) {
    put_u32(out, entries.len() as u32);
    for entry in entries {
        put_u64(out, entry.key);
        put_u64(out, entry.ops);
        put_u64(out, entry.winner_writer);
        // Stamps are history-length sums far below 2^63; the low bit
        // carries the explicit-write flag.
        put_u64(out, (entry.winner_sum << 1) | u64::from(entry.versioned));
        put_u32(out, entry.vector.len() as u32);
        for (writer, counter) in &entry.vector {
            put_u64(out, *writer);
            put_u64(out, *counter);
        }
    }
}

fn take_entries(r: &mut ByteReader<'_>, cap: usize) -> Option<Vec<DumpEntry>> {
    let n = r.take_u32()? as usize;
    // A corrupt count must not OOM: each entry needs at least 36 bytes.
    if n > cap {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.take_u64()?;
        let ops = r.take_u64()?;
        let winner_writer = r.take_u64()?;
        let tagged = r.take_u64()?;
        let comps = r.take_u32()? as usize;
        if comps > cap {
            return None;
        }
        let mut vector = Vec::with_capacity(comps);
        for _ in 0..comps {
            let writer = r.take_u64()?;
            let counter = r.take_u64()?;
            vector.push((writer, counter));
        }
        out.push(DumpEntry {
            key,
            ops,
            versioned: tagged & 1 == 1,
            winner_sum: tagged >> 1,
            winner_writer,
            vector,
        });
    }
    Some(out)
}

fn put_entries_v2(out: &mut Vec<u8>, entries: &[DumpEntry]) {
    put_u32(out, entries.len() as u32);
    for entry in entries {
        let version = entry.vector.iter().map(|(_, c)| *c).max().unwrap_or(0);
        put_u64(out, entry.key);
        put_u64(out, entry.ops);
        put_u64(out, (version << 1) | u64::from(entry.versioned));
    }
}

fn take_entries_v2(r: &mut ByteReader<'_>, cap: usize) -> Option<Vec<DumpEntry>> {
    let n = r.take_u32()? as usize;
    if n > cap {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.take_u64()?;
        let ops = r.take_u64()?;
        let tagged = r.take_u64()?;
        out.push(DumpEntry::scalar(key, ops, tagged >> 1, tagged & 1 == 1));
    }
    Some(out)
}

impl NodeSnapshot {
    fn encode(&self) -> Vec<u8> {
        let mut body =
            Vec::with_capacity(32 + 36 * (self.pub_entries.len() + self.sub_entries.len()));
        put_u64(&mut body, self.seq);
        put_u64(&mut body, self.wal_pos.segment);
        put_u64(&mut body, self.wal_pos.offset);
        put_entries(&mut body, &self.pub_entries);
        put_entries(&mut body, &self.sub_entries);
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Encodes in the scalar-era SYNSNAP2 format, flattening each vector
    /// to its largest component. Retained so compatibility tests (and a
    /// downgrade escape hatch) can produce files an old binary — and the
    /// current loader's compat path — both read.
    pub fn encode_legacy(&self) -> Vec<u8> {
        let mut body =
            Vec::with_capacity(32 + 24 * (self.pub_entries.len() + self.sub_entries.len()));
        put_u64(&mut body, self.seq);
        put_u64(&mut body, self.wal_pos.segment);
        put_u64(&mut body, self.wal_pos.offset);
        put_entries_v2(&mut body, &self.pub_entries);
        put_entries_v2(&mut body, &self.sub_entries);
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(SNAPSHOT_MAGIC_V2);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    fn decode(bytes: &[u8]) -> Option<NodeSnapshot> {
        let (body, legacy) = match bytes.strip_prefix(SNAPSHOT_MAGIC) {
            Some(body) => (body, false),
            None => (bytes.strip_prefix(SNAPSHOT_MAGIC_V2)?, true),
        };
        let mut r = ByteReader::new(body);
        let crc = r.take_u32()?;
        if crc32(&body[4..]) != crc {
            return None;
        }
        let seq = r.take_u64()?;
        let wal_pos = LogPos {
            segment: r.take_u64()?,
            offset: r.take_u64()?,
        };
        let cap = bytes.len() / 24 + 1;
        let (pub_entries, sub_entries) = if legacy {
            (take_entries_v2(&mut r, cap)?, take_entries_v2(&mut r, cap)?)
        } else {
            (take_entries(&mut r, cap)?, take_entries(&mut r, cap)?)
        };
        let snapshot = NodeSnapshot {
            seq,
            wal_pos,
            pub_entries,
            sub_entries,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(snapshot)
    }
}

/// Counters over a [`SnapshotStore`]'s lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshots persisted successfully.
    pub persisted: u64,
    /// Persists aborted by the armed mid-write fault.
    pub interrupted: u64,
    /// Corrupt or torn snapshot files skipped during load.
    pub skipped_corrupt: u64,
}

/// Directory of atomic, CRC-covered snapshot files.
pub struct SnapshotStore {
    dir: PathBuf,
    next_seq: AtomicU64,
    /// Crash fault: the next persist writes a partial `.tmp` and errors
    /// before the rename — the snapshot never becomes visible.
    interrupt_next: AtomicBool,
    persisted: AtomicU64,
    interrupted: AtomicU64,
    skipped_corrupt: AtomicU64,
}

fn parse_seq(name: &str) -> Option<u64> {
    name.strip_prefix("state-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

impl SnapshotStore {
    /// Opens (or creates) the snapshot directory. Stale `.tmp` files from
    /// interrupted persists are removed; the next sequence number resumes
    /// past the highest existing snapshot.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut max_seq = 0u64;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            } else if let Some(seq) = parse_seq(&name) {
                max_seq = max_seq.max(seq);
            }
        }
        Ok(SnapshotStore {
            dir,
            next_seq: AtomicU64::new(max_seq + 1),
            interrupt_next: AtomicBool::new(false),
            persisted: AtomicU64::new(0),
            interrupted: AtomicU64::new(0),
            skipped_corrupt: AtomicU64::new(0),
        })
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persists a snapshot atomically (tmp + fsync + rename) and prunes
    /// every older snapshot file. The store assigns the sequence number;
    /// the caller's `snapshot.seq` is overwritten. Returns the assigned
    /// sequence.
    pub fn persist(&self, snapshot: &NodeSnapshot) -> io::Result<u64> {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let mut snapshot = snapshot.clone();
        snapshot.seq = seq;
        let bytes = snapshot.encode();
        let final_path = self.dir.join(format!("state-{seq}.snap"));
        let tmp_path = self.dir.join(format!("state-{seq}.snap.tmp"));

        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&tmp_path)?;
        // Mid-write crash fault: leave a torn `.tmp` behind and fail —
        // the rename never happens, so the older snapshot stays latest.
        if self.interrupt_next.swap(false, Ordering::AcqRel) {
            let cut = (bytes.len() / 2).max(1);
            file.write_all(&bytes[..cut])?;
            file.sync_all()?;
            self.interrupted.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(
                "snapshot persist interrupted by injected fault",
            ));
        }
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp_path, &final_path)?;
        // Fsync the directory so the rename itself is durable.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        self.persisted.fetch_add(1, Ordering::Relaxed);

        // Prune: everything older than the snapshot just written.
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if parse_seq(&name).is_some_and(|s| s < seq) {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(seq)
    }

    /// Loads the newest valid snapshot, or `None` on a fresh directory.
    /// Torn/corrupt files (bad magic, bad CRC, truncated body) are
    /// skipped — load falls back to the next-older valid snapshot.
    pub fn load_latest(&self) -> io::Result<Option<NodeSnapshot>> {
        let mut seqs: Vec<u64> = fs::read_dir(&self.dir)?
            .filter_map(|entry| parse_seq(&entry.ok()?.file_name().into_string().ok()?))
            .collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        for seq in seqs {
            let path = self.dir.join(format!("state-{seq}.snap"));
            let bytes = fs::read(&path)?;
            match NodeSnapshot::decode(&bytes) {
                Some(snapshot) => return Ok(Some(snapshot)),
                None => {
                    self.skipped_corrupt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(None)
    }

    /// Crash fault: the next [`SnapshotStore::persist`] writes a partial
    /// temp file and errors before the rename, leaving the previous
    /// snapshot as the latest.
    pub fn inject_interrupt_next(&self) {
        self.interrupt_next.store(true, Ordering::Release);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            persisted: self.persisted.load(Ordering::Relaxed),
            interrupted: self.interrupted.load(Ordering::Relaxed),
            skipped_corrupt: self.skipped_corrupt.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("synapse-snap-{label}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> NodeSnapshot {
        NodeSnapshot {
            seq: 0,
            wal_pos: LogPos {
                segment: 3,
                offset: 911,
            },
            pub_entries: vec![
                DumpEntry::scalar(1, 10, 10, true),
                DumpEntry::scalar(2, 5, 0, false),
            ],
            sub_entries: vec![
                DumpEntry::scalar(1, 9, 0, true),
                DumpEntry {
                    key: 77,
                    ops: 4,
                    versioned: true,
                    winner_sum: 7,
                    winner_writer: 22,
                    vector: vec![(11, 3), (22, 4)],
                },
            ],
        }
    }

    #[test]
    fn snapshot_encoding_round_trips() {
        let snap = sample();
        let encoded = snap.encode();
        assert_eq!(NodeSnapshot::decode(&encoded), Some(snap));
        // Any truncation is rejected, never a panic.
        for cut in 0..encoded.len() {
            assert_eq!(NodeSnapshot::decode(&encoded[..cut]), None);
        }
        // A flipped body byte fails the CRC.
        let mut corrupt = encoded.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert_eq!(NodeSnapshot::decode(&corrupt), None);
    }

    #[test]
    fn persist_load_and_prune() {
        let dir = temp_dir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.load_latest().unwrap(), None);
        let seq1 = store.persist(&sample()).unwrap();
        let mut newer = sample();
        newer.pub_entries.push(DumpEntry::scalar(99, 1, 1, true));
        let seq2 = store.persist(&newer).unwrap();
        assert!(seq2 > seq1);
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, seq2);
        assert_eq!(loaded.pub_entries.len(), 3, "latest snapshot wins");
        // The older file was pruned.
        let count = fs::read_dir(&dir).unwrap().count();
        assert_eq!(count, 1);
        // A reopened store resumes the sequence past the survivor.
        let reopened = SnapshotStore::open(&dir).unwrap();
        let seq3 = reopened.persist(&sample()).unwrap();
        assert!(seq3 > seq2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_persist_keeps_the_previous_snapshot() {
        let dir = temp_dir("interrupt");
        let store = SnapshotStore::open(&dir).unwrap();
        let seq1 = store.persist(&sample()).unwrap();
        store.inject_interrupt_next();
        let mut newer = sample();
        newer.sub_entries.clear();
        assert!(store.persist(&newer).is_err(), "interrupted persist fails");
        assert_eq!(store.stats().interrupted, 1);
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, seq1, "previous snapshot is still latest");
        assert_eq!(loaded.sub_entries, sample().sub_entries);
        // The torn .tmp is swept on reopen and never loaded.
        let reopened = SnapshotStore::open(&dir).unwrap();
        assert_eq!(reopened.load_latest().unwrap().unwrap().seq, seq1);
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Pre-vector SYNSNAP2 files still load: scalar versions land on the
    /// legacy vector component with the explicit-write flag intact, and a
    /// current-format snapshot written afterwards supersedes them.
    #[test]
    fn legacy_snapshot_files_load_into_vector_entries() {
        let dir = temp_dir("legacy");
        let store = SnapshotStore::open(&dir).unwrap();
        let mut old = sample();
        old.seq = 1;
        fs::write(dir.join("state-1.snap"), old.encode_legacy()).unwrap();

        let reopened = SnapshotStore::open(&dir).unwrap();
        let loaded = reopened.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.pub_entries[0], DumpEntry::scalar(1, 10, 10, true));
        // The multi-writer entry flattens to its max counter in v2 form,
        // but keeps key/ops/versioned — enough for scalar-era recovery.
        let flat = &loaded.sub_entries[1];
        assert_eq!((flat.key, flat.ops, flat.versioned), (77, 4, true));
        assert_eq!(flat.vector, vec![(0, 4)], "scalar rides the legacy writer");
        drop(store);

        // A new-format persist on the same directory supersedes the old
        // file and round-trips full vectors.
        let seq = reopened.persist(&sample()).unwrap();
        let latest = reopened.load_latest().unwrap().unwrap();
        assert_eq!(latest.seq, seq);
        assert_eq!(latest.sub_entries[1].vector, vec![(11, 3), (22, 4)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_latest_falls_back_to_older_valid_snapshot() {
        let dir = temp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        let seq1 = store.persist(&sample()).unwrap();
        // Forge a newer file with garbage contents (prune has removed
        // older files, so write it by hand past the live one).
        fs::write(dir.join(format!("state-{}.snap", seq1 + 5)), b"garbage").unwrap();
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, seq1, "corrupt newer file is skipped");
        assert_eq!(store.stats().skipped_corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
