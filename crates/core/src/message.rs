//! The write-message format (Fig. 6(b)).
//!
//! A write message carries every operation of one unit of work (a single
//! write, or all writes of one transaction — "all writes within a single
//! transaction are combined into a single message"), the dependency map
//! produced by the version-store bump, the publisher's generation number,
//! and a publication timestamp. It is encoded as canonical JSON through
//! [`synapse_model::wire`], the same format the figure shows.

use std::collections::BTreeMap;
use synapse_model::{vmap, wire, Id, ModelError, Record, Value};
use synapse_versionstore::DepKey;

/// One replicated operation within a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// `create`, `update`, or `destroy`.
    pub operation: String,
    /// Complete inheritance chain, most-derived first (§4.1: "Synapse also
    /// includes each object's complete inheritance tree, allowing
    /// subscribers to consume polymorphic models").
    pub types: Vec<String>,
    /// Object primary key.
    pub id: Id,
    /// Published attributes. For `destroy`, the pre-image's published
    /// attributes: the paper's text ships only deleted ids (§4.1), but its
    /// own Example 2 (Fig. 5) has an observer's `after_destroy` read
    /// `user1`/`user2` off the destroyed object, which requires them —
    /// DESIGN.md records the deviation.
    pub attributes: BTreeMap<String, Value>,
}

impl Operation {
    /// The most-derived model name.
    pub fn model(&self) -> &str {
        self.types.first().map(String::as_str).unwrap_or("")
    }

    /// Builds the operation from a marshalled record.
    pub fn from_record(operation: &str, record: &Record) -> Self {
        Operation {
            operation: operation.to_owned(),
            types: record.types.clone(),
            id: record.id,
            attributes: record.attrs.clone(),
        }
    }
}

/// A complete write message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteMessage {
    /// Publishing application.
    pub app: String,
    /// Operations in execution order.
    pub operations: Vec<Operation>,
    /// Dependency map: effective dependency key → required version
    /// (Fig. 6(b)'s `dependencies` object).
    pub dependencies: BTreeMap<DepKey, u64>,
    /// Publication wall-clock time, microseconds since the Unix epoch.
    pub published_at: u64,
    /// Publisher generation (§4.4 recovery).
    pub generation: u64,
}

impl WriteMessage {
    /// Encodes to canonical JSON.
    pub fn encode(&self) -> String {
        let ops: Vec<Value> = self
            .operations
            .iter()
            .map(|op| {
                vmap! {
                    "operation" => op.operation.clone(),
                    "types" => Value::Array(
                        op.types.iter().map(|t| Value::from(t.clone())).collect()
                    ),
                    "id" => op.id.raw(),
                    "attributes" => Value::Map(op.attributes.clone()),
                }
            })
            .collect();
        let deps: BTreeMap<String, Value> = self
            .dependencies
            .iter()
            .map(|(k, v)| (k.to_string(), Value::from(*v)))
            .collect();
        let msg = vmap! {
            "app" => self.app.clone(),
            "operations" => Value::Array(ops),
            "dependencies" => Value::Map(deps),
            "published_at" => self.published_at,
            "generation" => self.generation,
        };
        wire::encode(&msg)
    }

    /// Decodes from JSON.
    pub fn decode(text: &str) -> Result<WriteMessage, ModelError> {
        let v = wire::decode(text)?;
        let app = v
            .get("app")
            .as_str()
            .ok_or_else(|| ModelError::Malformed("missing app".into()))?
            .to_owned();
        let mut operations = Vec::new();
        for op in v
            .get("operations")
            .as_array()
            .ok_or_else(|| ModelError::Malformed("missing operations".into()))?
        {
            let operation = op
                .get("operation")
                .as_str()
                .ok_or_else(|| ModelError::Malformed("missing operation kind".into()))?
                .to_owned();
            let types: Vec<String> = op
                .get("types")
                .as_array()
                .ok_or_else(|| ModelError::Malformed("missing types".into()))?
                .iter()
                .filter_map(|t| t.as_str().map(str::to_owned))
                .collect();
            if types.is_empty() {
                return Err(ModelError::Malformed("empty type chain".into()));
            }
            let id = op
                .get("id")
                .as_int()
                .ok_or_else(|| ModelError::Malformed("missing id".into()))?;
            let attributes = op
                .get("attributes")
                .as_map()
                .cloned()
                .unwrap_or_default();
            operations.push(Operation {
                operation,
                types,
                id: Id(id as u64),
                attributes,
            });
        }
        let mut dependencies = BTreeMap::new();
        if let Some(deps) = v.get("dependencies").as_map() {
            for (k, val) in deps {
                let key: DepKey = k
                    .parse()
                    .map_err(|_| ModelError::Malformed(format!("bad dependency key {k}")))?;
                let version = val
                    .as_int()
                    .ok_or_else(|| ModelError::Malformed("bad dependency version".into()))?;
                dependencies.insert(key, version as u64);
            }
        }
        let published_at = v.get("published_at").as_int().unwrap_or(0) as u64;
        let generation = v.get("generation").as_int().unwrap_or(1) as u64;
        Ok(WriteMessage {
            app,
            operations,
            dependencies,
            published_at,
            generation,
        })
    }

    /// Dependency list in `(key, required_version)` form for the version
    /// store wait.
    pub fn dep_list(&self) -> Vec<(DepKey, u64)> {
        self.dependencies.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Dependency keys only (for the subscriber's post-processing apply).
    pub fn dep_keys(&self) -> Vec<DepKey> {
        self.dependencies.keys().copied().collect()
    }
}

/// Current wall-clock in microseconds since the Unix epoch.
pub fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::varray;

    fn fig6b_message() -> WriteMessage {
        // The Fig. 6(b) sample: pub3 updates User#100's interests.
        let mut attributes = BTreeMap::new();
        attributes.insert("interests".to_owned(), varray!["cats", "dogs"]);
        let mut dependencies = BTreeMap::new();
        dependencies.insert(77_u64, 42_u64); // hash("pub3/users/id/100") → 42
        WriteMessage {
            app: "pub3".into(),
            operations: vec![Operation {
                operation: "update".into(),
                types: vec!["User".into()],
                id: Id(100),
                attributes,
            }],
            dependencies,
            published_at: 1_413_014_340_000_000,
            generation: 1,
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let msg = fig6b_message();
        let decoded = WriteMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn encoding_contains_fig6b_fields() {
        let text = fig6b_message().encode();
        for needle in [
            r#""app":"pub3""#,
            r#""operation":"update""#,
            r#""types":["User"]"#,
            r#""id":100"#,
            r#""interests":["cats","dogs"]"#,
            r#""dependencies":{"77":42}"#,
            r#""generation":1"#,
        ] {
            assert!(text.contains(needle), "{text} should contain {needle}");
        }
    }

    #[test]
    fn destroy_operations_carry_the_pre_image() {
        // Required by Fig. 5's observer `after_destroy` callbacks, which
        // read the destroyed object's attributes.
        let mut r = Record::new("User", Id(5));
        r.set("name", "x");
        let op = Operation::from_record("destroy", &r);
        assert_eq!(op.attributes.get("name"), Some(&Value::from("x")));
        assert_eq!(op.id, Id(5));
    }

    #[test]
    fn polymorphic_type_chains_roundtrip() {
        let mut msg = fig6b_message();
        msg.operations[0].types = vec!["AdminUser".into(), "User".into()];
        let decoded = WriteMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.operations[0].model(), "AdminUser");
        assert_eq!(decoded.operations[0].types.len(), 2);
    }

    #[test]
    fn decode_rejects_malformed_messages() {
        for bad in [
            "{}",
            r#"{"app":"a"}"#,
            r#"{"app":"a","operations":[{"operation":"create"}]}"#,
            r#"{"app":"a","operations":[{"operation":"create","types":[],"id":1}]}"#,
            "not json",
        ] {
            assert!(WriteMessage::decode(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn dep_list_matches_map() {
        let msg = fig6b_message();
        assert_eq!(msg.dep_list(), vec![(77, 42)]);
        assert_eq!(msg.dep_keys(), vec![77]);
    }
}
