//! The write-message format (Fig. 6(b)).
//!
//! A write message carries every operation of one unit of work (a single
//! write, or all writes of one transaction — "all writes within a single
//! transaction are combined into a single message"), the dependency map
//! produced by the version-store bump, the publisher's generation number,
//! and a publication timestamp. It is encoded as canonical JSON through
//! [`synapse_model::wire`], the same format the figure shows.

use std::collections::BTreeMap;
use synapse_model::{wire, Id, ModelError, Record, Value};
use synapse_versionstore::{DepKey, VersionVector};

/// One replicated operation within a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// `create`, `update`, or `destroy`.
    pub operation: String,
    /// Complete inheritance chain, most-derived first (§4.1: "Synapse also
    /// includes each object's complete inheritance tree, allowing
    /// subscribers to consume polymorphic models").
    pub types: Vec<String>,
    /// Object primary key.
    pub id: Id,
    /// Published attributes. For `destroy`, the pre-image's published
    /// attributes: the paper's text ships only deleted ids (§4.1), but its
    /// own Example 2 (Fig. 5) has an observer's `after_destroy` read
    /// `user1`/`user2` off the destroyed object, which requires them —
    /// DESIGN.md records the deviation.
    pub attributes: BTreeMap<String, Value>,
}

impl Operation {
    /// The most-derived model name.
    pub fn model(&self) -> &str {
        self.types.first().map(String::as_str).unwrap_or("")
    }

    /// Builds the operation from a marshalled record.
    pub fn from_record(operation: &str, record: &Record) -> Self {
        Operation {
            operation: operation.to_owned(),
            types: record.types.clone(),
            id: record.id,
            attributes: record.attrs.clone(),
        }
    }
}

/// A complete write message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteMessage {
    /// Publishing application.
    pub app: String,
    /// Operations in execution order.
    pub operations: Vec<Operation>,
    /// Dependency map: effective dependency key → required version
    /// (Fig. 6(b)'s `dependencies` object).
    pub dependencies: BTreeMap<DepKey, u64>,
    /// Publication wall-clock time, microseconds since the Unix epoch.
    pub published_at: u64,
    /// Publisher generation (§4.4 recovery).
    pub generation: u64,
    /// Per-object version vectors for written dependencies — only
    /// populated for bidirectional (multi-writer) models, where the
    /// scalar dependency value cannot express which foreign writes this
    /// one causally follows. Empty for single-writer messages, and
    /// *omitted from the wire* when empty, so single-writer encodings
    /// stay byte-identical to the scalar era (old payloads in WAL
    /// segments decode as an empty map).
    pub vectors: BTreeMap<DepKey, VersionVector>,
}

impl WriteMessage {
    /// Encodes to canonical JSON.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(128);
        self.encode_into(&mut out);
        out
    }

    /// Encodes to canonical JSON into an existing buffer — the only encode
    /// path, written directly against [`synapse_model::wire`]'s primitives
    /// so no intermediate [`Value`] tree (nor its per-field clones) is
    /// built. The bytes are pinned: identical to encoding the historical
    /// `vmap!` tree, including the dependency map's key order — keys were
    /// `BTreeMap<String, _>` entries, so they sort *lexicographically* by
    /// decimal representation (`"10" < "9"`), not numerically.
    pub fn encode_into(&self, out: &mut String) {
        out.push_str("{\"app\":");
        wire::encode_str(&self.app, out);
        out.push_str(",\"dependencies\":{");
        let mut dep_keys: Vec<DepKey> = self.dependencies.keys().copied().collect();
        dep_keys.sort_unstable_by(|a, b| {
            let (mut abuf, mut bbuf) = ([0u8; 20], [0u8; 20]);
            dec_digits(&mut abuf, *a).cmp(dec_digits(&mut bbuf, *b))
        });
        for (i, key) in dep_keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            wire::encode_u64(*key, out);
            out.push_str("\":");
            wire::encode_i64(self.dependencies[key] as i64, out);
        }
        out.push_str("},\"generation\":");
        wire::encode_i64(self.generation as i64, out);
        out.push_str(",\"operations\":[");
        for (i, op) in self.operations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"attributes\":{");
            for (j, (k, v)) in op.attributes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                wire::encode_str(k, out);
                out.push(':');
                wire::encode_into(v, out);
            }
            out.push_str("},\"id\":");
            wire::encode_i64(op.id.raw() as i64, out);
            out.push_str(",\"operation\":");
            wire::encode_str(&op.operation, out);
            out.push_str(",\"types\":[");
            for (j, t) in op.types.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                wire::encode_str(t, out);
            }
            out.push_str("]}");
        }
        out.push_str("],\"published_at\":");
        wire::encode_i64(self.published_at as i64, out);
        if !self.vectors.is_empty() {
            // "vectors" sorts after "published_at", so appending it here
            // keeps the canonical key order — and omitting it when empty
            // keeps single-writer messages byte-identical to the scalar
            // format.
            out.push_str(",\"vectors\":{");
            let mut vec_keys: Vec<DepKey> = self.vectors.keys().copied().collect();
            vec_keys.sort_unstable_by(|a, b| {
                let (mut abuf, mut bbuf) = ([0u8; 20], [0u8; 20]);
                dec_digits(&mut abuf, *a).cmp(dec_digits(&mut bbuf, *b))
            });
            for (i, key) in vec_keys.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                wire::encode_u64(*key, out);
                out.push_str("\":{");
                let mut writers: Vec<(u64, u64)> = self.vectors[key].components().to_vec();
                writers.sort_unstable_by(|(a, _), (b, _)| {
                    let (mut abuf, mut bbuf) = ([0u8; 20], [0u8; 20]);
                    dec_digits(&mut abuf, *a).cmp(dec_digits(&mut bbuf, *b))
                });
                for (j, (writer, counter)) in writers.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    wire::encode_u64(*writer, out);
                    out.push_str("\":");
                    wire::encode_i64(*counter as i64, out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push('}');
    }

    /// Decodes from JSON.
    pub fn decode(text: &str) -> Result<WriteMessage, ModelError> {
        let v = wire::decode(text)?;
        let app = v
            .get("app")
            .as_str()
            .ok_or_else(|| ModelError::Malformed("missing app".into()))?
            .to_owned();
        let mut operations = Vec::new();
        for op in v
            .get("operations")
            .as_array()
            .ok_or_else(|| ModelError::Malformed("missing operations".into()))?
        {
            let operation = op
                .get("operation")
                .as_str()
                .ok_or_else(|| ModelError::Malformed("missing operation kind".into()))?
                .to_owned();
            let types: Vec<String> = op
                .get("types")
                .as_array()
                .ok_or_else(|| ModelError::Malformed("missing types".into()))?
                .iter()
                .filter_map(|t| t.as_str().map(str::to_owned))
                .collect();
            if types.is_empty() {
                return Err(ModelError::Malformed("empty type chain".into()));
            }
            let id = op
                .get("id")
                .as_int()
                .ok_or_else(|| ModelError::Malformed("missing id".into()))?;
            let attributes = op.get("attributes").as_map().cloned().unwrap_or_default();
            operations.push(Operation {
                operation,
                types,
                id: Id(id as u64),
                attributes,
            });
        }
        let mut dependencies = BTreeMap::new();
        if let Some(deps) = v.get("dependencies").as_map() {
            for (k, val) in deps {
                let key: DepKey = k
                    .parse()
                    .map_err(|_| ModelError::Malformed(format!("bad dependency key {k}")))?;
                let version = val
                    .as_int()
                    .ok_or_else(|| ModelError::Malformed("bad dependency version".into()))?;
                dependencies.insert(key, version as u64);
            }
        }
        let mut vectors = BTreeMap::new();
        if let Some(vecs) = v.get("vectors").as_map() {
            for (k, val) in vecs {
                let key: DepKey = k
                    .parse()
                    .map_err(|_| ModelError::Malformed(format!("bad vector key {k}")))?;
                let comps = val
                    .as_map()
                    .ok_or_else(|| ModelError::Malformed("bad vector entry".into()))?;
                let mut vector = VersionVector::new();
                for (writer, counter) in comps {
                    let writer: u64 = writer
                        .parse()
                        .map_err(|_| ModelError::Malformed(format!("bad writer id {writer}")))?;
                    let counter = counter
                        .as_int()
                        .ok_or_else(|| ModelError::Malformed("bad vector counter".into()))?;
                    vector.set(writer, counter as u64);
                }
                vectors.insert(key, vector);
            }
        }
        let published_at = v.get("published_at").as_int().unwrap_or(0) as u64;
        let generation = v.get("generation").as_int().unwrap_or(1) as u64;
        Ok(WriteMessage {
            app,
            operations,
            dependencies,
            published_at,
            generation,
            vectors,
        })
    }

    /// Dependency list in `(key, required_version)` form for the version
    /// store wait.
    pub fn dep_list(&self) -> Vec<(DepKey, u64)> {
        self.dependencies.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Dependency keys only (for the subscriber's post-processing apply).
    pub fn dep_keys(&self) -> Vec<DepKey> {
        self.dependencies.keys().copied().collect()
    }

    /// The version vector an incoming write carries for `key`, given the
    /// writer id of the publishing app. Multi-writer messages carry it
    /// explicitly in `vectors`; single-writer (and scalar-era) messages
    /// derive it from the scalar dependency value as a single component
    /// owned by the message's writer.
    pub fn vector_for(&self, key: DepKey, writer: u64) -> Option<VersionVector> {
        if let Some(vector) = self.vectors.get(&key) {
            return Some(vector.clone());
        }
        self.dependencies
            .get(&key)
            .map(|version| VersionVector::component(writer, *version))
    }
}

/// Writes `v`'s decimal digits into `buf` and returns them — used to sort
/// dependency keys in their historical string order without allocating.
fn dec_digits(buf: &mut [u8; 20], v: u64) -> &[u8] {
    let mut pos = buf.len();
    let mut rest = v;
    loop {
        pos -= 1;
        buf[pos] = b'0' + (rest % 10) as u8;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    &buf[pos..]
}

/// Current wall-clock in microseconds since the Unix epoch.
pub fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::{varray, vmap};

    fn fig6b_message() -> WriteMessage {
        // The Fig. 6(b) sample: pub3 updates User#100's interests.
        let mut attributes = BTreeMap::new();
        attributes.insert("interests".to_owned(), varray!["cats", "dogs"]);
        let mut dependencies = BTreeMap::new();
        dependencies.insert(77_u64, 42_u64); // hash("pub3/users/id/100") → 42
        WriteMessage {
            app: "pub3".into(),
            operations: vec![Operation {
                operation: "update".into(),
                types: vec!["User".into()],
                id: Id(100),
                attributes,
            }],
            dependencies,
            published_at: 1_413_014_340_000_000,
            generation: 1,
            vectors: BTreeMap::new(),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let msg = fig6b_message();
        let decoded = WriteMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn encoding_contains_fig6b_fields() {
        let text = fig6b_message().encode();
        for needle in [
            r#""app":"pub3""#,
            r#""operation":"update""#,
            r#""types":["User"]"#,
            r#""id":100"#,
            r#""interests":["cats","dogs"]"#,
            r#""dependencies":{"77":42}"#,
            r#""generation":1"#,
        ] {
            assert!(text.contains(needle), "{text} should contain {needle}");
        }
    }

    #[test]
    fn destroy_operations_carry_the_pre_image() {
        // Required by Fig. 5's observer `after_destroy` callbacks, which
        // read the destroyed object's attributes.
        let mut r = Record::new("User", Id(5));
        r.set("name", "x");
        let op = Operation::from_record("destroy", &r);
        assert_eq!(op.attributes.get("name"), Some(&Value::from("x")));
        assert_eq!(op.id, Id(5));
    }

    #[test]
    fn polymorphic_type_chains_roundtrip() {
        let mut msg = fig6b_message();
        msg.operations[0].types = vec!["AdminUser".into(), "User".into()];
        let decoded = WriteMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.operations[0].model(), "AdminUser");
        assert_eq!(decoded.operations[0].types.len(), 2);
    }

    #[test]
    fn decode_rejects_malformed_messages() {
        for bad in [
            "{}",
            r#"{"app":"a"}"#,
            r#"{"app":"a","operations":[{"operation":"create"}]}"#,
            r#"{"app":"a","operations":[{"operation":"create","types":[],"id":1}]}"#,
            "not json",
        ] {
            assert!(WriteMessage::decode(bad).is_err(), "should reject {bad}");
        }
    }

    /// The historical encoder: build the full `Value` tree (dependency keys
    /// as decimal strings in a `BTreeMap<String, _>`) and encode that. The
    /// direct writer must reproduce its bytes exactly.
    fn reference_encode(msg: &WriteMessage) -> String {
        let ops: Vec<Value> = msg
            .operations
            .iter()
            .map(|op| {
                vmap! {
                    "operation" => op.operation.clone(),
                    "types" => Value::Array(
                        op.types.iter().map(|t| Value::from(t.clone())).collect()
                    ),
                    "id" => op.id.raw(),
                    "attributes" => Value::Map(op.attributes.clone()),
                }
            })
            .collect();
        let deps: BTreeMap<String, Value> = msg
            .dependencies
            .iter()
            .map(|(k, v)| (k.to_string(), Value::from(*v)))
            .collect();
        wire::encode(&vmap! {
            "app" => msg.app.clone(),
            "operations" => Value::Array(ops),
            "dependencies" => Value::Map(deps),
            "published_at" => msg.published_at,
            "generation" => msg.generation,
        })
    }

    #[test]
    fn direct_encoder_matches_value_tree_reference() {
        let mut msg = fig6b_message();
        // Keys 9/10/100 pin the lexicographic-decimal ordering ("10" and
        // "100" sort before "9"); the huge key pins the u64→i64 value cast.
        msg.dependencies.insert(9, 1);
        msg.dependencies.insert(10, 2);
        msg.dependencies.insert(100, 3);
        msg.dependencies.insert(u64::MAX, u64::MAX);
        msg.operations.push(Operation {
            operation: "destroy".into(),
            types: vec!["AdminUser".into(), "User".into()],
            id: Id(u64::MAX),
            attributes: BTreeMap::new(),
        });
        assert_eq!(msg.encode(), reference_encode(&msg));
        assert!(msg
            .encode()
            .contains(r#""10":2,"100":3,"18446744073709551615":-1,"77":42,"9":1"#));
    }

    #[test]
    fn empty_containers_encode_like_the_reference() {
        let msg = WriteMessage {
            app: String::new(),
            operations: Vec::new(),
            dependencies: BTreeMap::new(),
            published_at: 0,
            generation: 0,
            vectors: BTreeMap::new(),
        };
        assert_eq!(msg.encode(), reference_encode(&msg));
    }

    #[test]
    fn dep_list_matches_map() {
        let msg = fig6b_message();
        assert_eq!(msg.dep_list(), vec![(77, 42)]);
        assert_eq!(msg.dep_keys(), vec![77]);
    }

    /// Multi-writer vectors ride an optional trailing field: present only
    /// when non-empty, so a single-writer message's bytes are exactly the
    /// scalar-era encoding.
    #[test]
    fn vectors_roundtrip_and_stay_off_single_writer_wire() {
        let plain = fig6b_message();
        assert!(!plain.encode().contains("vectors"));

        let mut msg = fig6b_message();
        msg.vectors
            .insert(77, VersionVector::from_components(&[(9, 2), (10, 5)]));
        let text = msg.encode();
        // Writer keys sort lexicographically by decimal, like dep keys.
        assert!(
            text.contains(r#""vectors":{"77":{"10":5,"9":2}}"#),
            "unexpected encoding: {text}"
        );
        let decoded = WriteMessage::decode(&text).unwrap();
        assert_eq!(decoded, msg);
    }

    /// Scalar-era payloads (no `vectors` field) decode with an empty map
    /// and fall back to a single-component vector derived from the
    /// dependency value.
    #[test]
    fn vector_for_falls_back_to_scalar_dependency() {
        let msg = fig6b_message();
        let decoded = WriteMessage::decode(&msg.encode()).unwrap();
        assert!(decoded.vectors.is_empty());
        let derived = decoded.vector_for(77, 9).unwrap();
        assert_eq!(derived.components(), &[(9, 42)]);
        assert_eq!(decoded.vector_for(12345, 9), None);

        let mut multi = fig6b_message();
        multi
            .vectors
            .insert(77, VersionVector::from_components(&[(9, 2), (10, 5)]));
        let explicit = multi.vector_for(77, 9).unwrap();
        assert_eq!(explicit.components(), &[(9, 2), (10, 5)]);
    }
}
