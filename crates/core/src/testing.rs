//! The testing framework (§4.5).
//!
//! Synapse "simplifies integration testing by reusing model factories from
//! publishers on subscribers": a publisher exports factories (sample-data
//! builders) for its published models, and subscriber test suites replay
//! factory-built objects as if they had arrived from production — Synapse
//! "will emulate the payloads that would be received by the subscriber in a
//! production environment." The static publish/subscribe checks live in
//! [`crate::node::Ecosystem::connect`].

use crate::api::Publication;
use crate::message::{now_micros, Operation, WriteMessage};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use synapse_broker::Delivery;
use synapse_model::{Id, Record, Value};

/// A sample-data builder for one model: given a sequence number, returns
/// the attribute map of a plausible object (the paper's factory files,
/// in the style of `factory_girl`).
pub type FactoryFn = Arc<dyn Fn(u64) -> Value + Send + Sync>;

/// The factory file a publisher exports alongside its publisher file.
#[derive(Default)]
pub struct FactorySet {
    factories: RwLock<HashMap<String, FactoryFn>>,
}

impl FactorySet {
    /// Creates an empty factory set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory for `model`.
    pub fn define<F>(&self, model: &str, f: F)
    where
        F: Fn(u64) -> Value + Send + Sync + 'static,
    {
        self.factories.write().insert(model.to_owned(), Arc::new(f));
    }

    /// Builds the `seq`-th sample record for `model`.
    pub fn build(&self, model: &str, seq: u64) -> Option<Record> {
        let f = self.factories.read().get(model)?.clone();
        let attrs = match f(seq) {
            Value::Map(m) => m,
            _ => BTreeMap::new(),
        };
        Some(Record::with_attrs(model.to_owned(), Id(seq), attrs))
    }

    /// Models with factories defined.
    pub fn models(&self) -> Vec<String> {
        self.factories.read().keys().cloned().collect()
    }
}

/// Builds the write message a production publisher would emit for
/// `record` (projection through `publication`, no dependencies, generation 1).
pub fn emulate_message(
    app: &str,
    publication: &Publication,
    operation: &str,
    record: &Record,
) -> WriteMessage {
    let projected: Vec<&str> = publication.fields.iter().map(String::as_str).collect();
    let mut marshalled = record.project(&projected);
    marshalled.types = record.types.clone();
    WriteMessage {
        app: app.to_owned(),
        operations: vec![Operation::from_record(operation, &marshalled)],
        dependencies: BTreeMap::new(),
        published_at: now_micros(),
        generation: 1,
        vectors: BTreeMap::new(),
    }
}

/// Wraps a message as a broker delivery, for feeding directly into
/// [`crate::subscriber::Subscriber::process`] from a test.
pub fn emulate_delivery(msg: &WriteMessage) -> Delivery {
    Delivery {
        tag: 0,
        exchange: msg.app.as_str().into(),
        payload: msg.encode().into(),
        redelivered: false,
        // Emulated deliveries never traversed the broker, so they carry no
        // stamps and are excluded from visibility-latency telemetry.
        origin_nanos: 0,
        enqueued_nanos: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::vmap;

    #[test]
    fn factories_build_sequenced_records() {
        let factories = FactorySet::new();
        factories.define("User", |i| vmap! { "name" => format!("user-{i}") });
        let u = factories.build("User", 3).unwrap();
        assert_eq!(u.id, Id(3));
        assert_eq!(u.get("name").as_str(), Some("user-3"));
        assert!(factories.build("Ghost", 1).is_none());
        assert_eq!(factories.models(), vec!["User"]);
    }

    #[test]
    fn emulated_messages_project_published_fields_only() {
        let publication = Publication::model("User").field("name");
        let record = Record::new("User", Id(9))
            .with("name", "alice")
            .with("secret", "hunter2");
        let msg = emulate_message("pub1", &publication, "create", &record);
        assert_eq!(msg.operations.len(), 1);
        let op = &msg.operations[0];
        assert_eq!(op.attributes.get("name"), Some(&Value::from("alice")));
        assert!(!op.attributes.contains_key("secret"));
        let delivery = emulate_delivery(&msg);
        assert_eq!(delivery.exchange, "pub1");
        assert!(WriteMessage::decode(&delivery.payload).is_ok());
    }
}
