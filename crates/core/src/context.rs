//! Causal scopes: the unit within which dependencies are tracked.
//!
//! "Synapse implicitly tracks data dependencies within the scope of
//! individual controllers (serving HTTP requests), and the scope of
//! individual background jobs" (§4.2). The MVC layer opens a scope around
//! every controller execution and job; inside it the publisher records:
//!
//! * read dependencies — every object returned by a read query;
//! * the causal chain — the previous update's first write dependency
//!   becomes a read dependency of the next update, serializing updates
//!   within the controller;
//! * the user dependency — the session's user object is added as a write
//!   dependency to every write, serializing all updates within a user
//!   session;
//! * explicit dependencies added by `add_read_deps` / `add_write_deps`
//!   (Table 2), for the rare aggregation queries Synapse cannot infer;
//! * the transaction buffer, when writes are being combined into one
//!   message;
//! * Synapse's own time spent inside the controller (the Fig. 12 overhead
//!   instrumentation).

use crate::deps::DepName;
use crate::message::Operation;
use std::cell::RefCell;
use std::collections::HashSet;
use synapse_versionstore::DepKey;

/// Dependency-tracking state of one controller/job execution.
#[derive(Debug, Default)]
pub struct Scope {
    /// The session's user dependency (per-user-session serialization).
    pub user_dep: Option<DepName>,
    /// Objects read so far, in order, deduplicated.
    pub read_deps: Vec<DepName>,
    /// Membership index over `read_deps` (dedup without the O(n) scan).
    read_seen: HashSet<DepName>,
    /// First write dependency of the previous update in this scope.
    pub last_write_dep: Option<DepName>,
    /// Explicit read dependencies (`add_read_deps`).
    pub explicit_read: Vec<DepName>,
    /// Explicit write dependencies (`add_write_deps`).
    pub explicit_write: Vec<DepName>,
    /// `Some` while writes are buffered into one message.
    pub tx_buffer: Option<TxBuffer>,
    /// Nanoseconds spent in Synapse publishing code within this scope.
    pub synapse_nanos: u64,
    /// Messages published from this scope.
    pub messages: u64,
    /// Total dependencies across those messages.
    pub deps_published: u64,
}

/// Buffered operations of an in-scope transaction.
#[derive(Debug, Default)]
pub struct TxBuffer {
    /// Operations accumulated so far.
    pub operations: Vec<Operation>,
    /// Merged dependency map (max *rebased* version wins per key).
    pub dependencies: std::collections::BTreeMap<DepKey, u64>,
    /// How many times each key's `ops` counter has been bumped by the
    /// operations already buffered. Later operations' dependency values are
    /// rebased by this amount so the combined message only waits on state
    /// from *before* the transaction — its own operations satisfy the
    /// intra-transaction dependencies atomically.
    pub bumped: std::collections::BTreeMap<DepKey, u64>,
    /// Version vectors of buffered bidirectional writes, joined per key
    /// (multi-writer replication).
    pub vectors: std::collections::BTreeMap<DepKey, synapse_versionstore::VersionVector>,
}

/// Per-scope measurement summary returned by [`with_scope`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScopeStats {
    /// Nanoseconds spent inside Synapse publishing code.
    pub synapse_nanos: u64,
    /// Messages published.
    pub messages: u64,
    /// Dependencies across published messages.
    pub deps_published: u64,
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

pub use synapse_orm::{is_replicating, with_replication_flag};

/// Runs `f` inside a fresh anonymous scope (a background job).
pub fn with_scope<R>(f: impl FnOnce() -> R) -> (R, ScopeStats) {
    enter(None, f)
}

/// Runs `f` inside a scope bound to a user session (a controller).
pub fn with_user_scope<R>(user_dep: DepName, f: impl FnOnce() -> R) -> (R, ScopeStats) {
    enter(Some(user_dep), f)
}

fn enter<R>(user_dep: Option<DepName>, f: impl FnOnce() -> R) -> (R, ScopeStats) {
    let previous = SCOPE.with(|s| {
        s.borrow_mut().replace(Scope {
            user_dep,
            ..Scope::default()
        })
    });
    let result = f();
    let finished = SCOPE.with(|s| {
        let mut slot = s.borrow_mut();
        let finished = slot.take();
        *slot = previous;
        finished
    });
    let stats = finished
        .map(|sc| ScopeStats {
            synapse_nanos: sc.synapse_nanos,
            messages: sc.messages,
            deps_published: sc.deps_published,
        })
        .unwrap_or_default();
    (result, stats)
}

/// Whether a scope is currently open on this thread.
pub fn in_scope() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// Mutates the current scope, if any.
pub fn scope_mut<R>(f: impl FnOnce(&mut Scope) -> R) -> Option<R> {
    SCOPE.with(|s| s.borrow_mut().as_mut().map(f))
}

/// Records an object read (deduplicated, order preserved).
pub fn record_read(dep: DepName) {
    scope_mut(|s| {
        if s.read_seen.insert(dep.clone()) {
            s.read_deps.push(dep);
        }
    });
}

/// Adds explicit read dependencies (Table 2's `add_read_deps`), for read
/// queries — e.g. aggregations — whose dependencies Synapse cannot infer.
pub fn add_read_deps(names: &[&str]) {
    scope_mut(|s| {
        for n in names {
            s.explicit_read.push(DepName::named(n));
        }
    });
}

/// Adds explicit write dependencies (Table 2's `add_write_deps`).
pub fn add_write_deps(names: &[&str]) {
    scope_mut(|s| {
        for n in names {
            s.explicit_write.push(DepName::named(n));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::Id;

    #[test]
    fn scope_opens_and_closes() {
        assert!(!in_scope());
        let ((), stats) = with_scope(|| {
            assert!(in_scope());
        });
        assert!(!in_scope());
        assert_eq!(stats, ScopeStats::default());
    }

    #[test]
    fn reads_deduplicate_but_keep_order() {
        with_scope(|| {
            record_read(DepName::object("a", "Post", Id(1)));
            record_read(DepName::object("a", "User", Id(2)));
            record_read(DepName::object("a", "Post", Id(1)));
            let reads = scope_mut(|s| s.read_deps.clone()).unwrap();
            assert_eq!(reads.len(), 2);
            assert_eq!(reads[0].as_str(), "a/post/id/1");
        });
    }

    #[test]
    fn user_scope_carries_the_session_dependency() {
        let user = DepName::object("app", "User", Id(7));
        with_user_scope(user.clone(), || {
            assert_eq!(scope_mut(|s| s.user_dep.clone()).unwrap(), Some(user));
        });
    }

    #[test]
    fn explicit_deps_require_a_scope() {
        add_read_deps(&["outside"]);
        with_scope(|| {
            add_read_deps(&["inside_r"]);
            add_write_deps(&["inside_w"]);
            let (r, w) = scope_mut(|s| (s.explicit_read.len(), s.explicit_write.len())).unwrap();
            assert_eq!((r, w), (1, 1));
        });
    }

    #[test]
    fn scopes_nest_by_saving_the_outer_one() {
        with_scope(|| {
            record_read(DepName::named("outer"));
            with_scope(|| {
                assert_eq!(scope_mut(|s| s.read_deps.len()).unwrap(), 0);
            });
            assert_eq!(scope_mut(|s| s.read_deps.len()).unwrap(), 1);
        });
    }

    #[test]
    fn replication_flag_is_scoped() {
        assert!(!is_replicating());
        with_replication_flag(|| assert!(is_replicating()));
        assert!(!is_replicating());
    }
}
