//! The programming model: publications and subscriptions (Table 2).
//!
//! A service *publishes* attributes of models it owns and *subscribes* to
//! attributes of models other services own. A *decorator* does both on the
//! same model (with disjoint attribute sets); an *ephemeral* is a published
//! model that is never persisted locally; an *observer* is a subscribed
//! model that is never persisted locally (§3.1).

use std::collections::BTreeMap;

/// Declares which attributes of a model this service publishes.
///
/// # Examples
///
/// ```
/// use synapse_core::Publication;
///
/// // class User; publish do field :name; end; end
/// let publication = Publication::model("User").field("name");
/// assert_eq!(publication.fields, vec!["name"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Publication {
    /// Model name.
    pub model: String,
    /// Published attribute names (persisted or virtual).
    pub fields: Vec<String>,
    /// `true` for DB-less published models (§3.1 ephemerals).
    pub ephemeral: bool,
    /// `true` when other services may concurrently write this model too
    /// (multi-writer replication): outgoing messages carry version vectors
    /// and concurrent remote writes are conflict-resolved instead of
    /// rejected by the §3.1 single-writer ownership rule.
    pub bidirectional: bool,
}

impl Publication {
    /// Starts a publication for `model`.
    pub fn model(model: impl Into<String>) -> Self {
        Publication {
            model: model.into(),
            fields: Vec::new(),
            ephemeral: false,
            bidirectional: false,
        }
    }

    /// Publishes an attribute (the `field :name` annotation).
    pub fn field(mut self, name: impl Into<String>) -> Self {
        self.fields.push(name.into());
        self
    }

    /// Publishes several attributes at once.
    pub fn fields(mut self, names: &[&str]) -> Self {
        self.fields.extend(names.iter().map(|n| (*n).to_owned()));
        self
    }

    /// Marks the model as an ephemeral (published, never persisted).
    pub fn ephemeral(mut self) -> Self {
        self.ephemeral = true;
        self
    }

    /// Marks the publication bidirectional (multi-writer replication).
    pub fn bidirectional(mut self) -> Self {
        self.bidirectional = true;
        self
    }
}

/// Declares which attributes of a remote model this service subscribes to.
///
/// # Examples
///
/// ```
/// use synapse_core::Subscription;
///
/// // class User; subscribe from: :Pub1 do field :name; end; end
/// let subscription = Subscription::model("User", "pub1").field("name");
/// assert_eq!(subscription.from, "pub1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    /// Model name as published.
    pub model: String,
    /// Publishing application.
    pub from: String,
    /// Subscribed attribute names (as published).
    pub fields: Vec<String>,
    /// Attribute renames: published name → local (often virtual) name,
    /// the paper's `field :interests, as: :interests_virt` (Example 3).
    pub renames: BTreeMap<String, String>,
    /// `true` for observer models (subscribed, never persisted).
    pub observer: bool,
    /// `true` when this service also *publishes* the same model
    /// (multi-writer replication): the subscription's attributes stay
    /// locally writable, and concurrent incoming writes go through the
    /// model's registered conflict resolver instead of blind apply.
    pub bidirectional: bool,
}

impl Subscription {
    /// Starts a subscription for `model` published by app `from`.
    pub fn model(model: impl Into<String>, from: impl Into<String>) -> Self {
        Subscription {
            model: model.into(),
            from: from.into(),
            fields: Vec::new(),
            renames: BTreeMap::new(),
            observer: false,
            bidirectional: false,
        }
    }

    /// Subscribes to an attribute.
    pub fn field(mut self, name: impl Into<String>) -> Self {
        self.fields.push(name.into());
        self
    }

    /// Subscribes to several attributes at once.
    pub fn fields(mut self, names: &[&str]) -> Self {
        self.fields.extend(names.iter().map(|n| (*n).to_owned()));
        self
    }

    /// Subscribes to `name`, storing it through local attribute `local`
    /// (typically a virtual attribute setter).
    pub fn field_as(mut self, name: impl Into<String>, local: impl Into<String>) -> Self {
        let name = name.into();
        self.fields.push(name.clone());
        self.renames.insert(name, local.into());
        self
    }

    /// Marks the model as an observer (subscribed, never persisted).
    pub fn observer(mut self) -> Self {
        self.observer = true;
        self
    }

    /// Marks the subscription bidirectional (multi-writer replication).
    pub fn bidirectional(mut self) -> Self {
        self.bidirectional = true;
        self
    }

    /// The local attribute name an incoming field maps to.
    pub fn local_field<'a>(&'a self, incoming: &'a str) -> &'a str {
        self.renames
            .get(incoming)
            .map(String::as_str)
            .unwrap_or(incoming)
    }

    /// The set of local attribute names this subscription writes — the
    /// attributes a subscriber may *not* update itself (§3.1).
    pub fn local_fields(&self) -> Vec<&str> {
        self.fields.iter().map(|f| self.local_field(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publication_builder_collects_fields() {
        let p = Publication::model("User")
            .field("name")
            .fields(&["likes", "email"]);
        assert_eq!(p.fields, vec!["name", "likes", "email"]);
        assert!(!p.ephemeral);
        assert!(Publication::model("Click").ephemeral().ephemeral);
    }

    #[test]
    fn subscription_renames_map_to_local_fields() {
        let s = Subscription::model("User", "pub3")
            .field("name")
            .field_as("interests", "interests_virt");
        assert_eq!(s.local_field("interests"), "interests_virt");
        assert_eq!(s.local_field("name"), "name");
        assert_eq!(s.local_fields(), vec!["name", "interests_virt"]);
    }
}
