//! The subscriber: worker pools, delivery-semantics enforcement, and
//! replicated persistence.
//!
//! Each subscriber app owns one broker queue; its messages are "processed
//! in parallel by multiple subscriber workers" (§4). The queue is
//! partitioned (see the broker crate), and the workers form a
//! work-stealing pool over it: worker `i` of `N` owns the home partitions
//! `{p : p % N == i}` and drains them round-robin with non-blocking
//! `pop_batch_from` polls; when every home partition is empty it steals
//! half a victim partition's ready run (`steal_batch`, scan origin rotated
//! by worker index so concurrent thieves fan out), and only when the whole
//! queue is dry does it park on the queue's wake signal. Version-store
//! dependency updates and acks for each batch are grouped and flushed
//! together, so each touched version-store shard is locked once per batch
//! instead of once per key and only touched shards are notified. Stealing
//! never weakens delivery semantics: it is the same concurrency the pool
//! always had (two workers holding messages of one partition in flight),
//! and per-object ordering is enforced at apply time by the dependency
//! waits (causal/global) and the striped freshness check (weak). Per
//! message, a worker:
//!
//! 1. checks the publisher generation, running the global barrier of §4.4
//!    when it increases (drain in-flight messages, flush the version store);
//! 2. enforces the *effective* delivery mode — the weaker of the
//!    publisher's and the subscriber's (§3.2): causal/global wait on the
//!    version store until every dependency is satisfied; weak skips waiting
//!    and instead discards stale per-object versions;
//! 3. unmarshals each operation and persists it through the local ORM
//!    (running active-model callbacks), honouring renames, virtual-attribute
//!    setters, and observer (non-persisted) models;
//! 4. increments the version store for every dependency in the message and
//!    acks.
//!
//! The dependency wait honours `dep_wait_timeout`: `None` reproduces the
//! paper's strict causal mode (wait forever — the behaviour that deadlocked
//! Crowdtap's subscribers when messages were lost, §6.5); a finite value
//! implements the paper's recommended middle ground ("a mechanism to give
//! up on waiting for late (or lost) messages, with a configurable
//! timeout"). Weak mode behaves as timeout 0.

use crate::api::Subscription;
use crate::config::{RetryPolicy, SynapseConfig};
use crate::context;
use crate::deps::{writer_id, DepName, DepSpace};
use crate::message::{Operation, WriteMessage};
use crate::resolve::{ConflictCtx, Resolution, ResolverRegistry};
use crate::semantics::DeliveryMode;
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use synapse_broker::{
    parse_watermark, tag_hint, Broker, Consumer, Delivery, BOOTSTRAP_EXCHANGE, WATERMARK_EXCHANGE,
};
use synapse_db::DbError;
use synapse_model::{Record, Value};
use synapse_orm::{CallbackPoint, Orm, OrmError};
use synapse_telemetry::{mono_nanos, Counter, Telemetry};
use synapse_versionstore::DepKey;
use synapse_versionstore::{
    DepWaitSet, StoreError, VectorAdmit, VersionStore, WaitOutcome, WatermarkGate,
};

/// Why one processing attempt failed — the classification that decides
/// between redelivery and the dead-letter store.
///
/// *Transient* failures (dead version store, db briefly unavailable,
/// worker stopping) are expected to succeed on a later attempt, so the
/// delivery is nacked back to the queue with backoff. *Poison* failures
/// (undecodable payload, schema violation, panicking callback) will fail
/// identically forever; redelivering them is the §6.5 wedge, so they go
/// to the dead-letter store after releasing their version-store deps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessError {
    /// Retryable: nack with backoff, bounded by the retry policy.
    Transient(String),
    /// Deterministic: dead-letter immediately.
    Poison(String),
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::Transient(m) => write!(f, "transient: {m}"),
            ProcessError::Poison(m) => write!(f, "poison: {m}"),
        }
    }
}

/// Subscriber counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberStats {
    /// Messages fully processed and acked.
    pub messages_processed: u64,
    /// Operations applied to the local DB.
    pub ops_applied: u64,
    /// Operations discarded as stale (weak mode).
    pub ops_stale: u64,
    /// Dependency waits that timed out (processing proceeded anyway).
    pub dep_timeouts: u64,
    /// Messages that failed to decode or apply (transient or poison).
    pub errors: u64,
    /// Generation barriers executed.
    pub generation_flushes: u64,
    /// Transient failures that led to a backoff + nack.
    pub retries: u64,
    /// Deliveries popped with the broker's redelivered flag set.
    pub redeliveries: u64,
    /// Deliveries routed to the dead-letter store (poison + exhausted).
    pub dead_lettered: u64,
    /// Poison failures (undecodable, deterministic apply error, panic).
    pub poison_messages: u64,
    /// Transient failures that exhausted the retry policy.
    pub retries_exhausted: u64,
    /// Successful steals (an idle worker took a victim partition's run).
    pub steals: u64,
    /// Messages acquired through stealing.
    pub messages_stolen: u64,
    /// Bootstrap chunk-copy records admitted and persisted.
    pub copies_applied: u64,
    /// Bootstrap chunk-copy records discarded by version admission (the
    /// live stream had already applied an equal-or-newer write).
    pub copies_reconciled: u64,
    /// Watermark markers consumed and reported to the gate.
    pub watermarks_noted: u64,
    /// Concurrent (conflicting) incoming writes detected on bidirectional
    /// models.
    pub conflicts_detected: u64,
    /// Conflicts resolved by the default last-writer-wins policy.
    pub conflicts_resolved_lww: u64,
    /// Conflicts resolved by a registered merge resolver.
    pub conflicts_resolved_merge: u64,
    /// Incoming writes discarded because the local history dominated them.
    pub conflicts_discarded_dominated: u64,
}

/// Max deliveries a worker drains per condvar wakeup. Bounds the latency
/// cost of deferring acks while amortizing per-batch lock traffic.
const BATCH_MAX: usize = 32;

/// How long an idle worker parks on the queue condvar before re-checking
/// its stop flag. Shutdown does not wait this out: [`Subscriber::stop`]
/// wakes the queue explicitly.
const IDLE_PARK: Duration = Duration::from_millis(250);

/// Stripes of the per-object apply lock (see [`Subscriber::apply_op`]).
const APPLY_SLOTS: usize = 256;

/// Outcome of running one delivery through the batched state machine.
enum Processed {
    /// Applied; stage marks ready for the telemetry commit.
    Applied(DeliveryMode, StageMarks),
    /// Dependency wait stalled while other partitions hold ready work —
    /// the worker should hand the delivery back and drain them instead
    /// (the liveness the single-FIFO queue used to provide by ordering:
    /// an intra-app dependency was always popped before its dependent).
    Yielded,
}

/// Subscriber-side stage durations for one successfully applied message,
/// committed to the telemetry plane together with the end-to-end latency
/// only once the apply succeeded (failed attempts record nothing, so per
/// mode the stage counts always equal the delivered count).
#[derive(Debug, Default, Clone, Copy)]
struct StageMarks {
    dep_wait_nanos: u64,
    apply_nanos: u64,
}

/// Outcome of the batched path's dependency wait.
enum DepWait {
    /// Dependencies satisfied (or given up per the timeout policy).
    Ready,
    /// Stalled while other partitions hold ready work — hand the delivery
    /// back and drain them first.
    Yield,
}

/// Deliveries whose ORM apply succeeded but whose version-store apply and
/// ack are deferred to the batch flush point, so each touched shard is
/// locked (and notified) once per batch instead of once per message.
#[derive(Default)]
struct PendingBatch {
    tags: Vec<u64>,
    dep_keys: Vec<DepKey>,
}

impl PendingBatch {
    fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

#[derive(Default)]
struct Counters {
    messages_processed: AtomicU64,
    ops_applied: AtomicU64,
    ops_stale: AtomicU64,
    dep_timeouts: AtomicU64,
    errors: AtomicU64,
    generation_flushes: AtomicU64,
    retries: AtomicU64,
    redeliveries: AtomicU64,
    dead_lettered: AtomicU64,
    poison_messages: AtomicU64,
    retries_exhausted: AtomicU64,
    steals: AtomicU64,
    messages_stolen: AtomicU64,
    copies_applied: AtomicU64,
    copies_reconciled: AtomicU64,
    watermarks_noted: AtomicU64,
}

/// Conflict counters of the multi-writer plane. These live in the node's
/// telemetry [`CounterRegistry`](synapse_telemetry::CounterRegistry) (so
/// they fold into `telemetry_snapshot()` like every other named counter);
/// the handles here are the subscriber's lock-free bump path.
struct ConflictCounters {
    detected: Counter,
    resolved_lww: Counter,
    resolved_merge: Counter,
    discarded_dominated: Counter,
}

impl ConflictCounters {
    fn new(telemetry: &Telemetry) -> Self {
        let counters = telemetry.counters();
        ConflictCounters {
            detected: counters.counter("conflicts.detected"),
            resolved_lww: counters.counter("conflicts.resolved_lww"),
            resolved_merge: counters.counter("conflicts.resolved_merge"),
            discarded_dominated: counters.counter("conflicts.discarded_dominated"),
        }
    }
}

/// The subscriber runtime for one service. See the module docs.
pub struct Subscriber {
    app: String,
    orm: Arc<Orm>,
    store: Arc<VersionStore>,
    dep_space: DepSpace,
    subscriber_mode: DeliveryMode,
    dep_wait_timeout: Option<Duration>,
    subscriptions: Arc<RwLock<Vec<Subscription>>>,
    /// Publisher app → the delivery mode that publisher supports.
    publisher_modes: Arc<RwLock<HashMap<String, DeliveryMode>>>,
    broker: Broker,
    /// Last seen generation per publisher app.
    generations: Mutex<HashMap<String, u64>>,
    /// Readers = in-flight messages; the generation barrier takes the
    /// write side to drain them (§4.4).
    gen_barrier: RwLock<()>,
    stop: Arc<AtomicBool>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Whether idle workers steal from partitions outside their home set.
    work_stealing: bool,
    counters: Counters,
    /// Conflict counters (handles into the telemetry registry).
    conflicts: ConflictCounters,
    /// Per-model conflict resolvers for bidirectional subscriptions.
    resolvers: ResolverRegistry,
    retry: RetryPolicy,
    /// Transient-failure attempts per in-flight delivery tag; cleared on
    /// ack or dead-letter. Redeliveries keep their tag, so this survives
    /// nack round-trips.
    attempts: Mutex<HashMap<u64, u32>>,
    /// The node's telemetry plane; subscriber-side stages and end-to-end
    /// visibility latency are committed here on successful applies.
    telemetry: Arc<Telemetry>,
    /// Striped per-object apply locks: [`Subscriber::apply_op`] holds the
    /// object's slot across the `advance_latest` freshness check *and* the
    /// ORM apply, so a bootstrap copier and a live worker racing on the
    /// same object can never interleave check and write (stale content
    /// landing last).
    apply_slots: Vec<Mutex<()>>,
    /// Test hook: when cleared, `apply_op` skips the apply slot and
    /// re-exposes the historical check-then-write race for the regression
    /// test. Always set in production paths.
    serialize_applies: AtomicBool,
    /// The DBLog-style reconciliation window shared with the bootstrap
    /// copier: workers report consumed watermark markers and in-window
    /// applies here; the copier pre-filters chunk rows against the keys
    /// collected. Inactive (one relaxed load per delivery) outside
    /// bootstrap sessions.
    gate: Arc<WatermarkGate>,
}

impl Subscriber {
    /// Creates a subscriber runtime (workers start separately).
    pub fn new(
        config: &SynapseConfig,
        orm: Arc<Orm>,
        store: Arc<VersionStore>,
        subscriptions: Arc<RwLock<Vec<Subscription>>>,
        publisher_modes: Arc<RwLock<HashMap<String, DeliveryMode>>>,
        broker: Broker,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        Subscriber {
            app: config.app.clone(),
            orm,
            store,
            dep_space: config.dep_space,
            subscriber_mode: config.subscriber_mode,
            dep_wait_timeout: config.dep_wait_timeout,
            subscriptions,
            publisher_modes,
            broker,
            generations: Mutex::new(HashMap::new()),
            gen_barrier: RwLock::new(()),
            stop: Arc::new(AtomicBool::new(false)),
            workers: Mutex::new(Vec::new()),
            work_stealing: config.work_stealing,
            counters: Counters::default(),
            conflicts: ConflictCounters::new(&telemetry),
            resolvers: config.resolvers.clone(),
            retry: config.retry,
            attempts: Mutex::new(HashMap::new()),
            telemetry,
            apply_slots: (0..APPLY_SLOTS).map(|_| Mutex::new(())).collect(),
            serialize_applies: AtomicBool::new(true),
            gate: Arc::new(WatermarkGate::new()),
        }
    }

    /// The watermark gate shared with the node's bootstrap copier.
    pub fn watermark_gate(&self) -> &Arc<WatermarkGate> {
        &self.gate
    }

    /// Whether any worker threads are currently running. The bootstrap
    /// copier checks this to decide between the queue-merged path (workers
    /// consume markers and copies) and the synchronous fallback (no one
    /// would ever drain the queue).
    pub fn workers_running(&self) -> bool {
        !self.workers.lock().is_empty()
    }

    /// Test hook: disabling re-exposes the historical copier-vs-worker
    /// apply race (the `advance_latest`/ORM-write pair running without the
    /// per-object slot). Only the regression test should ever clear this.
    pub fn serialize_applies(&self, on: bool) {
        self.serialize_applies.store(on, Ordering::SeqCst);
    }

    /// Current counters.
    pub fn stats(&self) -> SubscriberStats {
        SubscriberStats {
            messages_processed: self.counters.messages_processed.load(Ordering::Relaxed),
            ops_applied: self.counters.ops_applied.load(Ordering::Relaxed),
            ops_stale: self.counters.ops_stale.load(Ordering::Relaxed),
            dep_timeouts: self.counters.dep_timeouts.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            generation_flushes: self.counters.generation_flushes.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            redeliveries: self.counters.redeliveries.load(Ordering::Relaxed),
            dead_lettered: self.counters.dead_lettered.load(Ordering::Relaxed),
            poison_messages: self.counters.poison_messages.load(Ordering::Relaxed),
            retries_exhausted: self.counters.retries_exhausted.load(Ordering::Relaxed),
            steals: self.counters.steals.load(Ordering::Relaxed),
            messages_stolen: self.counters.messages_stolen.load(Ordering::Relaxed),
            copies_applied: self.counters.copies_applied.load(Ordering::Relaxed),
            copies_reconciled: self.counters.copies_reconciled.load(Ordering::Relaxed),
            watermarks_noted: self.counters.watermarks_noted.load(Ordering::Relaxed),
            conflicts_detected: self.conflicts.detected.get(),
            conflicts_resolved_lww: self.conflicts.resolved_lww.get(),
            conflicts_resolved_merge: self.conflicts.resolved_merge.get(),
            conflicts_discarded_dominated: self.conflicts.discarded_dominated.get(),
        }
    }

    /// Spawns `n` worker threads consuming the app's queue.
    pub fn start(self: &Arc<Self>, n: usize) {
        let consumer = match self.broker.consumer(&self.app) {
            Some(c) => c,
            None => return,
        };
        let mut workers = self.workers.lock();
        for i in 0..n {
            let sub = Arc::clone(self);
            let consumer = consumer.clone();
            workers.push(std::thread::spawn(move || sub.worker_loop(consumer, i, n)));
        }
    }

    /// Signals workers to stop and joins them.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unpark workers waiting in `pop_batch` so they observe the flag
        // immediately instead of waiting out their park timeout.
        self.broker.wake_queue(&self.app);
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
        self.stop.store(false, Ordering::SeqCst);
    }

    /// Blocks until the queue is fully settled (a test/ops helper, *not* a
    /// bootstrap phase — the watermark-interleaved bootstrap never stops
    /// live delivery): no ready backlog, no popped-but-unacked deliveries,
    /// and no in-flight batch (the write side of the barrier is free only
    /// when every popped delivery has been flushed). Event-driven: parks
    /// on the queue's quiescence condvar, which acks and dead-letters
    /// notify, instead of polling.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let Some(consumer) = self.broker.consumer(&self.app) else {
            return false;
        };
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if !consumer.wait_quiescent(remaining) {
                return false;
            }
            // Quiescent queue + free write barrier = every popped delivery
            // is flushed. Re-check quiescence under the barrier: a worker
            // may have popped new work between the wait and the lock.
            let _barrier = self.gen_barrier.write();
            if self.queue_quiescent() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// No backlog and nothing popped-but-unresolved.
    fn queue_quiescent(&self) -> bool {
        self.broker.queue_len(&self.app) == Some(0)
            && self.broker.queue_unacked_len(&self.app) == Some(0)
    }

    /// Acquires the next batch for worker `worker` of `total`: drain home
    /// partitions round-robin (non-blocking), then steal from a victim
    /// partition, then park on the queue's wake signal. `cursor` rotates
    /// the home scan origin across calls so one hot home partition cannot
    /// starve its siblings between wakeups.
    fn next_batch(
        &self,
        consumer: &Consumer,
        worker: usize,
        total: usize,
        cursor: &mut usize,
    ) -> Vec<Delivery> {
        let parts = consumer.partition_count();
        // Home scan: partitions {p : p % total == worker}.
        let home: Vec<usize> = (0..parts).filter(|p| p % total == worker).collect();
        if !home.is_empty() {
            for i in 0..home.len() {
                let p = home[(*cursor + i) % home.len()];
                let batch = consumer.pop_batch_from(p, BATCH_MAX, Duration::ZERO);
                if !batch.is_empty() {
                    *cursor = (*cursor + i + 1) % home.len();
                    return batch;
                }
            }
        }
        // Steal scan: every other partition, origin rotated by worker
        // index so concurrent thieves start on different victims.
        if self.work_stealing {
            for i in 0..parts {
                let p = (worker + 1 + i) % parts;
                if p % total == worker {
                    continue;
                }
                let batch = consumer.steal_batch(p, BATCH_MAX);
                if !batch.is_empty() {
                    self.counters.steals.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .messages_stolen
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    return batch;
                }
            }
        }
        // Queue-wide dry: park until a publish (or shutdown wake) arrives,
        // then let the caller re-scan.
        if consumer.wait_ready(IDLE_PARK) && !self.work_stealing {
            // Ready work exists but may be homed to another worker; with
            // stealing off this worker cannot take it, so back off instead
            // of re-scanning in a hot loop.
            std::thread::sleep(Duration::from_millis(1));
        }
        Vec::new()
    }

    fn worker_loop(&self, consumer: Consumer, worker: usize, total: usize) {
        let mut pending = PendingBatch::default();
        let mut cursor = 0usize;
        while !self.stop.load(Ordering::SeqCst) {
            let batch = self.next_batch(&consumer, worker, total.max(1), &mut cursor);
            let popped_nanos = mono_nanos();
            if batch.is_empty() {
                // Timed out, woken for shutdown, or decommissioned. A
                // decommissioned queue stays quiet until the node performs
                // a partial bootstrap and reinstates it.
                if consumer.is_decommissioned() {
                    std::thread::sleep(Duration::from_millis(5));
                }
                continue;
            }
            // In-flight marker for the whole batch: the generation barrier
            // (and drain) must never observe the gap between a message's
            // ORM apply and its deferred version-store apply + ack, so the
            // read guard spans processing *and* the flush.
            let mut in_flight = Some(self.gen_barrier.read());
            for (i, delivery) in batch.iter().enumerate() {
                if self.stop.load(Ordering::SeqCst) {
                    // Shutting down: land finished work, requeue the rest
                    // without charging attempts (reverse nack restores the
                    // partition's original front order).
                    self.flush_pending(&consumer, &mut pending);
                    for rest in batch[i..].iter().rev() {
                        consumer.nack(rest.tag);
                    }
                    return;
                }
                if !self.handle_delivery(
                    &consumer,
                    delivery,
                    popped_nanos,
                    &mut pending,
                    &mut in_flight,
                ) {
                    // Dependency wait yielded: land finished work, hand the
                    // unprocessed tail back (reverse nack keeps partition
                    // order), and rescan — ready work elsewhere may be the
                    // very messages this tail is waiting on.
                    self.flush_pending(&consumer, &mut pending);
                    for rest in batch[i..].iter().rev() {
                        consumer.nack(rest.tag);
                    }
                    break;
                }
            }
            self.flush_pending(&consumer, &mut pending);
        }
    }

    /// Processes one delivery of a batch: decode once, run the message
    /// machine, and either stage it on the pending batch (success) or take
    /// the dead-letter/backoff exits of the single-message path. Returns
    /// `false` when the delivery yielded its dependency wait — the caller
    /// must hand the rest of the batch back and rescan.
    fn handle_delivery<'a>(
        &'a self,
        consumer: &Consumer,
        delivery: &Delivery,
        popped_nanos: u64,
        pending: &mut PendingBatch,
        in_flight: &mut Option<RwLockReadGuard<'a, ()>>,
    ) -> bool {
        if delivery.redelivered {
            self.counters.redeliveries.fetch_add(1, Ordering::Relaxed);
        }
        // Bootstrap control traffic rides the live queue on reserved
        // exchanges — branch before decoding, they are not WriteMessages
        // (markers) or take a different apply path (chunk copies).
        if delivery.exchange == WATERMARK_EXCHANGE {
            self.note_watermark(consumer, delivery);
            return true;
        }
        if delivery.exchange == BOOTSTRAP_EXCHANGE {
            self.handle_copy(consumer, delivery, popped_nanos, pending, in_flight);
            return true;
        }
        let handle_nanos = mono_nanos();
        let decoded = WriteMessage::decode(&delivery.payload)
            .map_err(|e| ProcessError::Poison(format!("undecodable payload: {e}")));
        let outcome = match &decoded {
            Ok(msg) => self.process_decoded(msg, delivery.tag, consumer, pending, in_flight),
            Err(e) => Err(e.clone()),
        };
        match outcome {
            Ok(Processed::Yielded) => return false,
            Ok(Processed::Applied(mode, marks)) => {
                if let Ok(msg) = &decoded {
                    pending.tags.push(delivery.tag);
                    pending.dep_keys.extend(msg.dep_keys());
                    self.note_live_apply(consumer.partition_count(), delivery.tag, msg);
                    self.record_visible(delivery, mode, popped_nanos, handle_nanos, marks);
                }
            }
            Err(ProcessError::Poison(_)) => {
                // Deterministic failure: redelivering would wedge the
                // queue (§6.5) — dead-letter now.
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .poison_messages
                    .fetch_add(1, Ordering::Relaxed);
                self.dead_letter(consumer, delivery.tag, decoded.ok().as_ref());
            }
            Err(ProcessError::Transient(_)) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                if self.stop.load(Ordering::SeqCst) {
                    // Shutting down: requeue without charging an attempt,
                    // so restarts never push an innocent message toward
                    // the dead-letter store.
                    consumer.nack(delivery.tag);
                    return true;
                }
                let attempts = {
                    let mut map = self.attempts.lock();
                    let entry = map.entry(delivery.tag).or_insert(0);
                    *entry += 1;
                    *entry
                };
                if self.retry.exhausted(attempts) {
                    self.counters
                        .retries_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    self.dead_letter(consumer, delivery.tag, decoded.ok().as_ref());
                } else {
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    // Land finished work and release the in-flight marker
                    // before sleeping: a backoff must not hold up a
                    // generation barrier or drain.
                    self.flush_pending(consumer, pending);
                    *in_flight = None;
                    std::thread::sleep(self.retry.backoff(attempts));
                    consumer.nack(delivery.tag);
                    *in_flight = Some(self.gen_barrier.read());
                }
            }
        }
        true
    }

    /// The per-message state machine of the batched path. Identical to
    /// [`Subscriber::process_classified`] except that the version-store
    /// apply and ack are deferred to the pending batch, and blocking points
    /// (generation barrier, dependency wait) first land the pending batch —
    /// messages earlier in the batch may be exactly what a dependency wait
    /// needs, and the barrier must see them fully applied.
    fn process_decoded<'a>(
        &'a self,
        msg: &WriteMessage,
        tag: u64,
        consumer: &Consumer,
        pending: &mut PendingBatch,
        in_flight: &mut Option<RwLockReadGuard<'a, ()>>,
    ) -> Result<Processed, ProcessError> {
        let mut marks = StageMarks::default();
        if self.generation_pending(msg) {
            // The gate write-waits on in-flight readers: land our own
            // pending work and step outside the barrier before taking it.
            self.flush_pending(consumer, pending);
            *in_flight = None;
            let gate = self.generation_gate(msg);
            *in_flight = Some(self.gen_barrier.read());
            gate.map_err(ProcessError::Transient)?;
        }
        let mode = self.effective_mode(&msg.app);
        if matches!(mode, DeliveryMode::Causal | DeliveryMode::Global) {
            let deps = self.filtered_wait_set(msg, mode);
            if !pending.is_empty() && !matches!(self.store.satisfied_prepared(&deps), Ok(true)) {
                self.flush_pending(consumer, pending);
            }
            let wait_start = mono_nanos();
            match self.wait_deps_batched(consumer, &deps, tag) {
                Ok(DepWait::Ready) => {}
                Ok(DepWait::Yield) => return Ok(Processed::Yielded),
                Err(e) => return Err(ProcessError::Transient(e)),
            }
            marks.dep_wait_nanos = mono_nanos().saturating_sub(wait_start);
        }
        let apply_start = mono_nanos();
        self.apply_message(msg, mode)?;
        marks.apply_nanos = mono_nanos().saturating_sub(apply_start);
        Ok(Processed::Applied(mode, marks))
    }

    /// The batched path's dependency wait. Unlike [`Subscriber::wait_deps`]
    /// (the single-message path, which blocks until satisfied, stopped, or
    /// deadline), this wait yields whenever a short slice times out while
    /// *other partitions* hold ready deliveries: with a partitioned queue,
    /// the message that satisfies this dependency may be sitting ready in
    /// a partition nobody has reached yet, and blocking every worker on
    /// such inversions is a livelock (the pre-partitioning queue never had
    /// this case — its single FIFO popped intra-app dependencies before
    /// their dependents). When nothing is ready elsewhere the wait degrades
    /// to the classic blocking loop, preserving wait-forever semantics for
    /// genuinely lost dependencies (`dep_wait_timeout: None`, §6.5).
    fn wait_deps_batched(
        &self,
        consumer: &Consumer,
        deps: &DepWaitSet,
        tag: u64,
    ) -> Result<DepWait, String> {
        let deadline = self.dep_wait_timeout.map(|t| std::time::Instant::now() + t);
        // The first slice is short: if the dependency is mid-apply on
        // another worker the store wakes us in microseconds either way,
        // but if it is sitting unpopped in another partition, every
        // millisecond spent here is pure added visibility latency before
        // the yield below lets a worker go find it.
        let mut slice = Duration::from_millis(1);
        loop {
            match self.store.wait_prepared(deps, slice) {
                Ok(WaitOutcome::Ready) => return Ok(DepWait::Ready),
                Ok(WaitOutcome::TimedOut) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err("stopped while waiting for dependencies".into());
                    }
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            self.counters.dep_timeouts.fetch_add(1, Ordering::Relaxed);
                            return Ok(DepWait::Ready); // give up and process (§6.5)
                        }
                    }
                    if consumer.ready_elsewhere(tag) {
                        return Ok(DepWait::Yield);
                    }
                    // Nothing ready anywhere else: settle into the classic
                    // blocking cadence (wait-forever semantics, §6.5).
                    slice = Duration::from_millis(10);
                }
                Err(StoreError::Dead) => {
                    return Err("subscriber version store died".into());
                }
            }
        }
    }

    /// Commits the staged breakdown and end-to-end visibility latency for
    /// one successfully applied delivery. Unstamped deliveries (payload
    /// emulation, bootstrap copies) carry `origin_nanos == 0` and are
    /// skipped, so the histograms only ever hold real publish→visible
    /// windows.
    fn record_visible(
        &self,
        delivery: &Delivery,
        mode: DeliveryMode,
        popped_nanos: u64,
        handle_nanos: u64,
        marks: StageMarks,
    ) {
        if delivery.origin_nanos == 0 {
            return;
        }
        let visible = mono_nanos();
        self.telemetry.record_visible(
            mode.slice(),
            popped_nanos.saturating_sub(delivery.enqueued_nanos),
            handle_nanos.saturating_sub(popped_nanos),
            marks.dep_wait_nanos,
            marks.apply_nanos,
            visible.saturating_sub(delivery.origin_nanos),
        );
    }

    /// Lands the pending batch: one grouped version-store apply (each
    /// touched shard locked and notified once for the whole batch), then
    /// one batched ack. `messages_processed` counts only live acks — a
    /// broker restart between pop and flush requeues the tag and voids the
    /// ack, and that copy is counted when its redelivery's ack lands — so
    /// the counter never double-counts a delivery.
    fn flush_pending(&self, consumer: &Consumer, pending: &mut PendingBatch) {
        if pending.tags.is_empty() {
            return;
        }
        match self.store.apply(&pending.dep_keys) {
            Ok(()) => {
                let acked = consumer.ack_batch(&pending.tags);
                self.counters
                    .messages_processed
                    .fetch_add(acked, Ordering::Relaxed);
                let mut attempts = self.attempts.lock();
                for tag in &pending.tags {
                    attempts.remove(tag);
                }
            }
            Err(StoreError::Dead) => {
                // Transient store failure: requeue the whole batch without
                // charging attempts — ORM applies are idempotent upserts,
                // so redelivery reprocesses safely once the store heals.
                for tag in &pending.tags {
                    consumer.nack(*tag);
                }
            }
        }
        pending.tags.clear();
        pending.dep_keys.clear();
    }

    /// Routes one delivery to the dead-letter store, releasing its
    /// version-store dependencies first so downstream messages don't
    /// deadlock on a message that will never be applied. Undecodable
    /// payloads cannot release anything — under strict causal mode that
    /// residue is exactly the paper's §6.5 wedge, and the way out remains
    /// decommission + partial bootstrap.
    fn dead_letter(&self, consumer: &Consumer, tag: u64, msg: Option<&WriteMessage>) {
        // A broker restart between pop and this call requeues the tag; the
        // dead-letter is then void and the redelivery takes the full path
        // again, so only a live dead-letter releases deps and counts.
        if !consumer.dead_letter(tag) {
            return;
        }
        if let Some(msg) = msg {
            let _ = self.store.apply(&msg.dep_keys());
        }
        self.attempts.lock().remove(&tag);
        self.counters.dead_lettered.fetch_add(1, Ordering::Relaxed);
    }

    /// Consumes a watermark marker: report it to the gate (which ignores
    /// markers of stale sessions/chunks, e.g. crash redeliveries of an
    /// abandoned attempt) and ack. Markers carry no dependencies and no
    /// origin stamp, so they bypass the pending batch and the latency
    /// histograms entirely.
    fn note_watermark(&self, consumer: &Consumer, delivery: &Delivery) {
        if let Some((session, chunk, high)) = parse_watermark(&delivery.payload) {
            let parts = consumer.partition_count().max(1);
            let partition = tag_hint(delivery.tag) as usize % parts;
            self.gate.note_marker(session, chunk, partition, high);
            self.counters
                .watermarks_noted
                .fetch_add(1, Ordering::Relaxed);
        }
        consumer.ack(delivery.tag);
    }

    /// Reports a live message's written-object keys to the watermark gate
    /// when a reconciliation window is open on this delivery's partition.
    /// Only *written* objects count: the copier drops chunk rows for
    /// touched keys in favor of the live write's payload, so a key that
    /// was merely read must not suppress its copy.
    fn note_live_apply(&self, partitions: usize, tag: u64, msg: &WriteMessage) {
        if !self.gate.is_active() {
            return;
        }
        let partition = tag_hint(tag) as usize % partitions.max(1);
        let keys: Vec<DepKey> = msg
            .operations
            .iter()
            .map(|op| {
                self.dep_space
                    .key(&DepName::object(&msg.app, op.model(), op.id))
            })
            .collect();
        self.gate.note_applied(partition, &keys);
    }

    /// Processes one bootstrap chunk-copy delivery. Copies ack with *no*
    /// dependency keys: they do not correspond to publisher bump
    /// operations (step 1's version snapshot already carried their `ops`),
    /// so landing them must not advance the subscriber's dependency
    /// counters. Transient failures nack with the live path's backoff and
    /// dead-letter budget — `admit_copy` re-checks on redelivery, so a
    /// redelivered copy that lost to the live stream in the meantime is
    /// discarded, not re-applied.
    fn handle_copy<'a>(
        &'a self,
        consumer: &Consumer,
        delivery: &Delivery,
        popped_nanos: u64,
        pending: &mut PendingBatch,
        in_flight: &mut Option<RwLockReadGuard<'a, ()>>,
    ) {
        let handle_nanos = mono_nanos();
        let decoded = WriteMessage::decode(&delivery.payload)
            .map_err(|e| ProcessError::Poison(format!("undecodable copy payload: {e}")));
        let outcome = match &decoded {
            Ok(msg) => {
                let apply_start = mono_nanos();
                self.apply_copy_message(msg).map(|_| StageMarks {
                    dep_wait_nanos: 0,
                    apply_nanos: mono_nanos().saturating_sub(apply_start),
                })
            }
            Err(e) => Err(e.clone()),
        };
        match outcome {
            Ok(marks) => {
                pending.tags.push(delivery.tag);
                self.record_visible(
                    delivery,
                    DeliveryMode::Weak,
                    popped_nanos,
                    handle_nanos,
                    marks,
                );
            }
            Err(ProcessError::Poison(_)) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .poison_messages
                    .fetch_add(1, Ordering::Relaxed);
                if consumer.dead_letter(delivery.tag) {
                    self.attempts.lock().remove(&delivery.tag);
                    self.counters.dead_lettered.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(ProcessError::Transient(_)) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                if self.stop.load(Ordering::SeqCst) {
                    consumer.nack(delivery.tag);
                    return;
                }
                let attempts = {
                    let mut map = self.attempts.lock();
                    let entry = map.entry(delivery.tag).or_insert(0);
                    *entry += 1;
                    *entry
                };
                if self.retry.exhausted(attempts) {
                    // A transiently-failing chunk copy never dead-letters:
                    // it is an idempotent, admission-guarded upsert whose
                    // silent loss would break the coverage contract of the
                    // copy watermark it rode behind (resume assumes every
                    // merged copy eventually lands or is refused). Reset
                    // the budget and keep redelivering — the loop ends
                    // when the store or engine heals, typically at the
                    // next bootstrap attempt's revive. Undecodable copies
                    // still dead-letter through the poison arm above.
                    self.counters
                        .retries_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    self.attempts.lock().remove(&delivery.tag);
                } else {
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                }
                // As in the live path: land finished work and release
                // the in-flight marker before sleeping.
                self.flush_pending(consumer, pending);
                *in_flight = None;
                std::thread::sleep(self.retry.backoff(attempts));
                consumer.nack(delivery.tag);
                *in_flight = Some(self.gen_barrier.read());
            }
        }
    }

    /// Applies one decoded chunk-copy message: every operation is admitted
    /// through the version store's strict copy check and persisted as a
    /// replicated upsert. Returns how many records were applied vs.
    /// discarded by admission.
    fn apply_copy_message(&self, msg: &WriteMessage) -> Result<CopyOutcome, ProcessError> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            context::with_scope(|| {
                context::with_replication_flag(|| {
                    let mut load = CopyOutcome::default();
                    for op in &msg.operations {
                        if self.apply_copy_op(msg, op)? {
                            load.applied += 1;
                        } else {
                            load.reconciled += 1;
                        }
                    }
                    Ok::<CopyOutcome, OrmError>(load)
                })
            })
            .0
        }));
        match outcome {
            Ok(Ok(load)) => Ok(load),
            Ok(Err(e)) => Err(classify_apply_error(e)),
            Err(panic) => Err(ProcessError::Poison(format!(
                "bootstrap copy callback panicked: {}",
                panic_message(panic.as_ref())
            ))),
        }
    }

    /// Applies one chunk-copy operation: strict version admission (ties
    /// lose to the live stream — see [`VersionStore::admit_copy`] for why
    /// re-upserting a tying copy can resurrect a deleted row), then the
    /// normal subscription apply under the object's apply slot.
    fn apply_copy_op(&self, msg: &WriteMessage, op: &Operation) -> Result<bool, OrmError> {
        let matching: Vec<Subscription> = {
            let subs = self.subscriptions.read();
            subs.iter()
                .filter(|s| s.from == msg.app && op.types.iter().any(|t| t == &s.model))
                .cloned()
                .collect()
        };
        if matching.is_empty() {
            return Ok(true);
        }
        let key = self
            .dep_space
            .key(&DepName::object(&msg.app, op.model(), op.id));
        let marker = msg.dependencies.get(&key).copied().unwrap_or(0);
        // Copies of bidirectional models carry the publisher's full
        // version vector under the writer-independent mesh key and are
        // admitted by strict vector dominance; single-writer copies keep
        // the scalar marker rule. The slot stripes by the same key the
        // admission runs against.
        let mesh_key = matching.iter().any(|s| s.bidirectional).then(|| {
            self.dep_space
                .key(&crate::deps::mesh_object(op.model(), op.id))
        });
        let mesh_vector = mesh_key.and_then(|mk| msg.vectors.get(&mk).map(|v| (mk, v)));
        let slot_key = mesh_vector.map(|(mk, _)| mk).unwrap_or(key);
        let _slot = self
            .serialize_applies
            .load(Ordering::SeqCst)
            .then(|| self.apply_slots[(slot_key % APPLY_SLOTS as u64) as usize].lock());
        let admitted = match mesh_vector {
            Some((mk, vector)) => self
                .store
                .admit_copy_vector(mk, vector, writer_id(&msg.app)),
            None => self.store.admit_copy(key, marker),
        };
        match admitted {
            Ok(true) => {}
            Ok(false) => {
                self.counters
                    .copies_reconciled
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(false);
            }
            Err(_) => return Err(OrmError::Db(DbError::Unavailable)),
        }
        for sub in matching {
            self.apply_subscription(&sub, op)?;
        }
        self.counters.copies_applied.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Synchronous chunk-copy apply — the bootstrap copier's fallback when
    /// no worker pool is running to drain the queue-merged path. Returns
    /// `Ok(true)` if the record was applied, `Ok(false)` if version
    /// admission discarded it in favor of the live stream.
    pub fn apply_copy_record(
        &self,
        pub_app: &str,
        record: &Record,
        marker: u64,
        vector: Option<synapse_versionstore::VersionVector>,
    ) -> Result<bool, ProcessError> {
        let op = Operation::from_record("create", record);
        let key = self
            .dep_space
            .key(&DepName::object(pub_app, op.model(), op.id));
        let mut dependencies = BTreeMap::new();
        dependencies.insert(key, marker);
        let mut vectors = BTreeMap::new();
        if let Some(v) = vector {
            // A vector-carrying copy is a bidirectional model's: its
            // history lives under the mesh key.
            let mesh = self
                .dep_space
                .key(&crate::deps::mesh_object(op.model(), op.id));
            vectors.insert(mesh, v);
        }
        let msg = WriteMessage {
            app: pub_app.to_owned(),
            operations: vec![op],
            dependencies,
            published_at: 0,
            generation: 1,
            vectors,
        };
        self.apply_copy_message(&msg).map(|load| load.applied > 0)
    }

    /// Processes one delivery end to end (untyped error; see
    /// [`Subscriber::process_classified`] for the retry/dead-letter
    /// classification the worker loop uses).
    pub fn process(&self, delivery: &Delivery) -> Result<(), String> {
        self.process_classified(delivery).map_err(|e| e.to_string())
    }

    /// Processes one delivery end to end, classifying failures as
    /// transient (retryable) or poison (dead-letter). Unlike the batched
    /// worker path, the version-store apply happens immediately.
    pub fn process_classified(&self, delivery: &Delivery) -> Result<(), ProcessError> {
        let popped_nanos = mono_nanos();
        let mut marks = StageMarks::default();
        if delivery.exchange == WATERMARK_EXCHANGE {
            if let Some((session, chunk, high)) = parse_watermark(&delivery.payload) {
                let parts = self.broker.queue_partitions(&self.app).unwrap_or(1).max(1);
                self.gate.note_marker(
                    session,
                    chunk,
                    tag_hint(delivery.tag) as usize % parts,
                    high,
                );
                self.counters
                    .watermarks_noted
                    .fetch_add(1, Ordering::Relaxed);
            }
            return Ok(());
        }
        if delivery.exchange == BOOTSTRAP_EXCHANGE {
            let msg = WriteMessage::decode(&delivery.payload)
                .map_err(|e| ProcessError::Poison(format!("undecodable copy payload: {e}")))?;
            return self.apply_copy_message(&msg).map(|_| ());
        }
        let msg = WriteMessage::decode(&delivery.payload)
            .map_err(|e| ProcessError::Poison(format!("undecodable payload: {e}")))?;
        self.generation_gate(&msg)
            .map_err(ProcessError::Transient)?;
        let _in_flight = self.gen_barrier.read();
        let mode = self.effective_mode(&msg.app);
        match mode {
            DeliveryMode::Causal | DeliveryMode::Global => {
                let wait_start = mono_nanos();
                self.wait_deps(&self.filtered_wait_set(&msg, mode))
                    .map_err(ProcessError::Transient)?;
                marks.dep_wait_nanos = mono_nanos().saturating_sub(wait_start);
            }
            DeliveryMode::Weak => {}
        }
        let apply_start = mono_nanos();
        self.apply_message(&msg, mode)?;
        marks.apply_nanos = mono_nanos().saturating_sub(apply_start);
        let parts = self.broker.queue_partitions(&self.app).unwrap_or(1);
        self.note_live_apply(parts, delivery.tag, &msg);
        // Advance the version store only after successful application: a
        // transient failure must leave versions untouched so the redelivery
        // reprocesses from scratch (applies are idempotent upserts). Dep
        // release for dead-lettered messages happens exactly once, in
        // [`Subscriber::dead_letter`].
        self.store
            .apply(&msg.dep_keys())
            .map_err(|e| ProcessError::Transient(e.to_string()))?;
        self.record_visible(delivery, mode, popped_nanos, popped_nanos, marks);
        Ok(())
    }

    /// Applies a decoded message's operations through the local ORM.
    ///
    /// Application runs inside its own causal scope (like a background
    /// job, §4.2) so that reads made by decorator callbacks become
    /// external dependencies of anything those callbacks publish. A
    /// panicking subscription callback is caught and treated as poison:
    /// it would panic identically on every redelivery.
    fn apply_message(&self, msg: &WriteMessage, mode: DeliveryMode) -> Result<(), ProcessError> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            context::with_scope(|| {
                context::with_replication_flag(|| {
                    for op in &msg.operations {
                        self.apply_op(msg, op, mode)?;
                    }
                    Ok::<(), OrmError>(())
                })
            })
            .0
        }));
        match outcome {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(classify_apply_error(e)),
            Err(panic) => Err(ProcessError::Poison(format!(
                "subscription callback panicked: {}",
                panic_message(panic.as_ref())
            ))),
        }
    }

    /// The effective delivery mode for messages from `pub_app` (§3.2).
    pub fn effective_mode(&self, pub_app: &str) -> DeliveryMode {
        let publisher = self
            .publisher_modes
            .read()
            .get(pub_app)
            .copied()
            .unwrap_or(DeliveryMode::Causal);
        DeliveryMode::effective(publisher, self.subscriber_mode)
    }

    /// Whether `msg` carries a generation newer than the last one seen
    /// from its app (the pre-check before taking the write barrier).
    fn generation_pending(&self, msg: &WriteMessage) -> bool {
        let gens = self.generations.lock();
        msg.generation > gens.get(&msg.app).copied().unwrap_or(1)
    }

    /// §4.4's generation barrier: when a message carries a newer generation,
    /// wait for in-flight messages, flush the version store, advance.
    fn generation_gate(&self, msg: &WriteMessage) -> Result<(), String> {
        if !self.generation_pending(msg) {
            return Ok(());
        }
        let _drain = self.gen_barrier.write();
        let mut gens = self.generations.lock();
        let current = gens.entry(msg.app.clone()).or_insert(1);
        if msg.generation > *current {
            *current = msg.generation;
            self.store.flush().map_err(|e| e.to_string())?;
            self.counters
                .generation_flushes
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The message's dependencies, filtered per the effective mode (a
    /// causal subscriber of a global publisher ignores the global
    /// dependency, §4.2) and routed once into a shard-grouped wait set —
    /// every re-check during the wait loop reuses the routing.
    fn filtered_wait_set(&self, msg: &WriteMessage, mode: DeliveryMode) -> DepWaitSet {
        let mut deps = msg.dep_list();
        if mode == DeliveryMode::Causal {
            let global_key = self.dep_space.key(&DepName::global(&msg.app));
            deps.retain(|(k, _)| *k != global_key);
        }
        let mut set = DepWaitSet::default();
        self.store.prepare_wait(&deps, &mut set);
        set
    }

    /// Waits for a prepared dependency set on the version store.
    fn wait_deps(&self, deps: &DepWaitSet) -> Result<(), String> {
        // Wait in short slices so the stop flag stays responsive; an
        // overall deadline implements the configurable give-up of §6.5
        // (`None` = the paper's strict causal mode: wait forever).
        let deadline = self.dep_wait_timeout.map(|t| std::time::Instant::now() + t);
        loop {
            match self.store.wait_prepared(deps, Duration::from_millis(100)) {
                Ok(WaitOutcome::Ready) => return Ok(()),
                Ok(WaitOutcome::TimedOut) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err("stopped while waiting for dependencies".into());
                    }
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            self.counters.dep_timeouts.fetch_add(1, Ordering::Relaxed);
                            return Ok(()); // give up and process (§6.5)
                        }
                    }
                }
                Err(StoreError::Dead) => {
                    return Err("subscriber version store died".into());
                }
            }
        }
    }

    /// Applies one operation through the local ORM. Returns `Ok(true)` if
    /// the operation was applied and `Ok(false)` if it was discarded as
    /// stale by the freshness check.
    fn apply_op(
        &self,
        msg: &WriteMessage,
        op: &Operation,
        mode: DeliveryMode,
    ) -> Result<bool, OrmError> {
        let matching: Vec<Subscription> = {
            let subs = self.subscriptions.read();
            subs.iter()
                .filter(|s| s.from == msg.app && op.types.iter().any(|t| t == &s.model))
                .cloned()
                .collect()
        };
        if matching.is_empty() {
            return Ok(true);
        }
        // Freshness: update objects only to their latest version (§4.2),
        // discarding out-of-order intermediate updates. Weak mode depends
        // on this for correctness; causal and global modes record versions
        // too so that bootstrap's chunked copy — which reconciles against
        // the live stream by version comparison — can never regress a row
        // a live message already moved past the chunk's snapshot. In the
        // ordered modes the dependency wait already serializes live
        // applies, so the check only ever discards a copy/redelivery that
        // lost the race.
        let key = self
            .dep_space
            .key(&DepName::object(&msg.app, op.model(), op.id));
        // Multi-writer models track their version vectors under the
        // writer-independent mesh key, so every writer's history of the
        // object lands on one entry; the slot is striped by the same key
        // so concurrent applies of one logical object serialize even when
        // they arrive from different publishers.
        let mesh_key = matching.iter().any(|s| s.bidirectional).then(|| {
            self.dep_space
                .key(&crate::deps::mesh_object(op.model(), op.id))
        });
        // Hold this object's apply slot across the freshness check *and*
        // the ORM writes below. Without it, a copier thread and a worker
        // can interleave advance_latest/apply so that the thread carrying
        // the *older* version writes the row last (both pass the check
        // before either applies). One striped mutex per object serializes
        // exactly the racing pair; unrelated objects map to other slots.
        // `serialize_applies(false)` is a test hook that re-exposes the
        // race for the regression test.
        let slot_key = mesh_key.unwrap_or(key);
        let _slot = self
            .serialize_applies
            .load(Ordering::SeqCst)
            .then(|| self.apply_slots[(slot_key % APPLY_SLOTS as u64) as usize].lock());
        // Multi-writer classification by version-vector dominance:
        // dominating histories apply, dominated ones are discarded, and
        // concurrent forks go to the model's conflict resolver. In weak
        // mode this runs at raw apply time; in causal/global mode the dep
        // wait has already completed, so the local row is causally
        // complete when the resolver sees the pair. A bidirectional
        // subscription fed by a pre-vector publisher (no vector on the
        // wire) falls through to the scalar freshness rule below.
        let mut classified = false;
        if let Some(mesh) = mesh_key {
            let writer = writer_id(&msg.app);
            if let Some(vector) = msg.vector_for(mesh, writer) {
                classified = true;
                match self.store.advance_vector(mesh, &vector, writer) {
                    Ok(VectorAdmit::Fresh) => {}
                    Ok(VectorAdmit::Stale) => {
                        self.counters.ops_stale.fetch_add(1, Ordering::Relaxed);
                        self.conflicts.discarded_dominated.bump();
                        return Ok(false);
                    }
                    Ok(VectorAdmit::Concurrent { lww_wins }) => {
                        return self.resolve_conflict(op, &matching, &vector, writer, lww_wins);
                    }
                    Err(_) => return Err(OrmError::Db(DbError::Unavailable)),
                }
            }
        }
        if !classified {
            let version = match mode {
                DeliveryMode::Weak => Some(msg.dependencies.get(&key).copied().unwrap_or(0)),
                // Ordered modes only check when the message actually carries
                // the object's dependency (a mismatched dep space on the
                // publisher must not silently drop writes).
                DeliveryMode::Causal | DeliveryMode::Global => msg.dependencies.get(&key).copied(),
            };
            if let Some(version) = version {
                match self.store.advance_latest(key, version) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.counters.ops_stale.fetch_add(1, Ordering::Relaxed);
                        return Ok(false);
                    }
                    // A dead store is transient (revival or bootstrap heals
                    // it); surface it as the transient db error class.
                    Err(_) => return Err(OrmError::Db(DbError::Unavailable)),
                }
            }
        }
        for sub in matching {
            self.apply_subscription(&sub, op)?;
        }
        self.counters.ops_applied.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Resolves one concurrent incoming write (still under the object's
    /// apply slot, so the read-modify-write of a merge cannot interleave
    /// with another apply of the same object). Each matching subscription
    /// consults its model's registered resolver; the operation counts as
    /// applied when any resolution wrote the row.
    fn resolve_conflict(
        &self,
        op: &Operation,
        matching: &[Subscription],
        vector: &synapse_versionstore::VersionVector,
        writer: u64,
        lww_wins: bool,
    ) -> Result<bool, OrmError> {
        self.conflicts.detected.bump();
        let start = mono_nanos();
        let mut applied = false;
        let (mut used_lww, mut used_merge) = (false, false);
        for sub in matching {
            let resolver = Arc::clone(self.resolvers.get(&sub.model));
            // Project the incoming attributes to local names — the map the
            // apply path would upsert if the incoming side wins.
            let incoming: BTreeMap<String, Value> = sub
                .fields
                .iter()
                .filter_map(|f| {
                    op.attributes
                        .get(f)
                        .map(|v| (sub.local_field(f).to_owned(), v.clone()))
                })
                .collect();
            let local = self.orm.find(&sub.model, op.id)?;
            let ctx = ConflictCtx {
                model: &sub.model,
                id: op.id,
                operation: &op.operation,
                incoming: &incoming,
                local: local.as_ref().map(|r| &r.attrs),
                incoming_vector: vector,
                incoming_writer: writer,
                lww_wins,
            };
            let resolution = resolver.resolve(&ctx);
            if resolver.name() == "lww" {
                used_lww = true;
            } else {
                used_merge = true;
            }
            match resolution {
                Resolution::KeepLocal => {}
                Resolution::TakeIncoming => {
                    self.apply_subscription(sub, op)?;
                    applied = true;
                }
                Resolution::Merge(attrs) => {
                    self.upsert_resolved(sub, op, attrs)?;
                    applied = true;
                }
            }
        }
        self.telemetry
            .record_resolution(mono_nanos().saturating_sub(start));
        if used_lww {
            self.conflicts.resolved_lww.bump();
        }
        if used_merge {
            self.conflicts.resolved_merge.bump();
        }
        if applied {
            self.counters.ops_applied.fetch_add(1, Ordering::Relaxed);
        }
        Ok(true)
    }

    /// Upserts a resolver's merged attributes as the conflicted row's new
    /// content (a replicated write: nothing republishes).
    fn upsert_resolved(
        &self,
        sub: &Subscription,
        op: &Operation,
        attrs: BTreeMap<String, Value>,
    ) -> Result<(), OrmError> {
        if sub.observer {
            return Ok(());
        }
        match self.orm.find(&sub.model, op.id)? {
            Some(_) => self
                .orm
                .update(&sub.model, op.id, Value::Map(attrs))
                .map(|_| ()),
            None => match self
                .orm
                .create_with_id(&sub.model, op.id, Value::Map(attrs.clone()))
            {
                Err(OrmError::Db(DbError::DuplicateKey { .. })) => self
                    .orm
                    .update(&sub.model, op.id, Value::Map(attrs))
                    .map(|_| ()),
                other => other.map(|_| ()),
            },
        }
    }

    fn apply_subscription(&self, sub: &Subscription, op: &Operation) -> Result<(), OrmError> {
        // Project the incoming attributes to this subscription, splitting
        // plain fields from virtual-attribute setters.
        let mut plain: BTreeMap<String, Value> = BTreeMap::new();
        let mut virtuals: Vec<(String, Value)> = Vec::new();
        for field in &sub.fields {
            if let Some(value) = op.attributes.get(field) {
                let local = sub.local_field(field);
                if self.orm.virtuals().get_setter(&sub.model, local).is_some() {
                    virtuals.push((local.to_owned(), value.clone()));
                } else {
                    plain.insert(local.to_owned(), value.clone());
                }
            }
        }

        if sub.observer {
            // Observers run callbacks without persisting (§3.1).
            let mut record = Record::with_attrs(sub.model.clone(), op.id, plain);
            let (before, after) = callback_points(&op.operation);
            self.orm
                .run_model_callbacks(&sub.model, before, &mut record)?;
            self.orm
                .run_model_callbacks(&sub.model, after, &mut record)?;
            return Ok(());
        }

        let existing = self.orm.find(&sub.model, op.id)?;
        let mut stored: Option<Record> = None;
        match op.operation.as_str() {
            "destroy" => {
                if existing.is_some() {
                    self.orm.destroy(&sub.model, op.id)?;
                }
            }
            // Create and update share upsert semantics: redeliveries and
            // weak-mode reordering make either arrive first.
            _ => {
                let record = match existing {
                    Some(_) => self.orm.update(&sub.model, op.id, Value::Map(plain))?,
                    None => {
                        match self
                            .orm
                            .create_with_id(&sub.model, op.id, Value::Map(plain.clone()))
                        {
                            // Lost a create/create race between the find and
                            // the insert — a live worker and the bootstrap
                            // copier can apply the same row concurrently. The
                            // row exists now, so finish as the update path
                            // would have instead of poisoning the delivery
                            // (or failing the bootstrap attempt).
                            Err(OrmError::Db(DbError::DuplicateKey { .. })) => {
                                self.orm.update(&sub.model, op.id, Value::Map(plain))?
                            }
                            other => other?,
                        }
                    }
                };
                stored = Some(record);
            }
        }
        if let Some(mut record) = stored {
            for (local, value) in virtuals {
                if let Some(setter) = self.orm.virtuals().get_setter(&sub.model, &local) {
                    setter(&self.orm, &mut record, value)?;
                }
            }
        }
        Ok(())
    }

    /// Bootstrap step 1: bulk-load the publisher's version snapshot (§4.4).
    pub fn load_version_snapshot(&self, snapshot: &[(u64, u64)]) -> Result<(), String> {
        self.store
            .load_snapshot(snapshot)
            .map_err(|e| e.to_string())
    }
}

/// Outcome of applying one bootstrap chunk-copy message.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CopyOutcome {
    /// Records admitted and persisted.
    pub applied: u64,
    /// Records discarded because the live stream had already applied an
    /// equal-or-newer write for the object (ties included — re-upserting a
    /// tying copy could resurrect a deleted row).
    pub reconciled: u64,
}

/// Classifies an application-layer failure: a briefly unavailable engine
/// (injected fault, dead store) is transient; everything else — schema
/// violations, callback aborts, ownership restrictions — is deterministic
/// and poisons the delivery.
fn classify_apply_error(e: OrmError) -> ProcessError {
    match e {
        OrmError::Db(DbError::Unavailable) => ProcessError::Transient(e.to_string()),
        other => ProcessError::Poison(other.to_string()),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn callback_points(operation: &str) -> (CallbackPoint, CallbackPoint) {
    match operation {
        "create" => (CallbackPoint::BeforeCreate, CallbackPoint::AfterCreate),
        "destroy" => (CallbackPoint::BeforeDestroy, CallbackPoint::AfterDestroy),
        _ => (CallbackPoint::BeforeUpdate, CallbackPoint::AfterUpdate),
    }
}
