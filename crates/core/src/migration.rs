//! Live schema migration rules (§4.3).
//!
//! "When deploying new features or refactoring code, it may happen that the
//! local DB schema must be changed, or new data must be published or
//! subscribed. A few rules must be respected": publisher-internal changes
//! must stay invisible to subscribers, published attribute semantics must
//! never change, and new attributes deploy publisher-first. This module
//! checks a proposed migration plan against the current publication before
//! it is applied — the deploy-time counterpart of the §4.5 static checks.

use crate::api::Publication;

/// One step of a proposed schema migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationStep {
    /// Remove a column from the local DB schema.
    DropLocalColumn {
        /// Model name.
        model: String,
        /// Column name.
        column: String,
        /// Whether a virtual attribute of the same name is being added to
        /// keep the publication observable (rule 1's escape hatch).
        replaced_by_virtual: bool,
    },
    /// Change the meaning/type of an attribute in place.
    ChangeAttributeSemantics {
        /// Model name.
        model: String,
        /// Attribute name.
        attribute: String,
    },
    /// Start publishing a new attribute.
    PublishNewAttribute {
        /// Model name.
        model: String,
        /// Attribute name.
        attribute: String,
        /// `true` when the publisher deploys before any subscriber
        /// subscribes to the attribute (rule 3).
        publisher_deploys_first: bool,
    },
    /// Stop publishing an attribute (the end of rule 2's
    /// publish-new-then-retire-old dance).
    RetireAttribute {
        /// Model name.
        model: String,
        /// Attribute name.
        attribute: String,
    },
}

/// Validates `steps` against the model's current `publication`; returns the
/// rule violations (empty = safe to deploy).
pub fn check_migration(publication: &Publication, steps: &[MigrationStep]) -> Vec<String> {
    let mut violations = Vec::new();
    for step in steps {
        match step {
            MigrationStep::DropLocalColumn {
                model,
                column,
                replaced_by_virtual,
            } => {
                // Rule 1: dropping a *published* column exposes the internal
                // change unless a virtual attribute replaces it.
                if model == &publication.model
                    && publication.fields.contains(column)
                    && !replaced_by_virtual
                {
                    violations.push(format!(
                        "rule 1: dropping published column {model}.{column} requires a \
                         virtual attribute of the same name"
                    ));
                }
            }
            MigrationStep::ChangeAttributeSemantics { model, attribute } => {
                // Rule 2: semantics of a published attribute must not change;
                // publish a new attribute instead.
                if model == &publication.model && publication.fields.contains(attribute) {
                    violations.push(format!(
                        "rule 2: cannot change semantics of published attribute \
                         {model}.{attribute}; publish a new attribute and retire this one"
                    ));
                }
            }
            MigrationStep::PublishNewAttribute {
                model,
                attribute,
                publisher_deploys_first,
            } => {
                if !publisher_deploys_first {
                    violations.push(format!(
                        "rule 3: new attribute {model}.{attribute} must be deployed on the \
                         publisher before any subscriber"
                    ));
                }
            }
            MigrationStep::RetireAttribute { model, attribute } => {
                if model == &publication.model && !publication.fields.contains(attribute) {
                    violations.push(format!(
                        "retire step names unpublished attribute {model}.{attribute}"
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publication() -> Publication {
        Publication::model("User").fields(&["name", "email"])
    }

    #[test]
    fn dropping_published_column_requires_virtual_replacement() {
        let bad = check_migration(
            &publication(),
            &[MigrationStep::DropLocalColumn {
                model: "User".into(),
                column: "name".into(),
                replaced_by_virtual: false,
            }],
        );
        assert_eq!(bad.len(), 1);
        let good = check_migration(
            &publication(),
            &[MigrationStep::DropLocalColumn {
                model: "User".into(),
                column: "name".into(),
                replaced_by_virtual: true,
            }],
        );
        assert!(good.is_empty());
    }

    #[test]
    fn dropping_unpublished_column_is_free() {
        let ok = check_migration(
            &publication(),
            &[MigrationStep::DropLocalColumn {
                model: "User".into(),
                column: "internal_flag".into(),
                replaced_by_virtual: false,
            }],
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn changing_published_semantics_is_rejected() {
        let bad = check_migration(
            &publication(),
            &[MigrationStep::ChangeAttributeSemantics {
                model: "User".into(),
                attribute: "email".into(),
            }],
        );
        assert!(bad[0].contains("rule 2"));
    }

    #[test]
    fn new_attributes_deploy_publisher_first() {
        let bad = check_migration(
            &publication(),
            &[MigrationStep::PublishNewAttribute {
                model: "User".into(),
                attribute: "avatar".into(),
                publisher_deploys_first: false,
            }],
        );
        assert!(bad[0].contains("rule 3"));
    }

    #[test]
    fn retiring_unknown_attribute_is_flagged() {
        let bad = check_migration(
            &publication(),
            &[MigrationStep::RetireAttribute {
                model: "User".into(),
                attribute: "ghost".into(),
            }],
        );
        assert_eq!(bad.len(), 1);
    }
}
