//! Dependency names and the fixed-size effective dependency space.
//!
//! A dependency names one object version-tracked by the version store. The
//! paper writes them as `app/model/id/…` paths (Fig. 6(b):
//! `"pub3/users/id/100"`), then hashes them "with a stable hash function at
//! the publisher" into a fixed space so version stores consume O(1) memory.
//! A hash collision merely serializes two unrelated objects — and "using a
//! 1-entry dependency hash space is equivalent to using global ordering"
//! (§4.2), a property the tests pin down.
//!
//! Names are interned: a [`DepName`] holds an `Arc<str>` plus its stable
//! 64-bit FNV-1a pre-hash, computed once at construction. Cloning a name on
//! the publisher hot path is a pointer bump, equality is a hash compare
//! (falling back to the strings only on a 64-bit collision), and
//! [`DepSpace::key`] is a single modulo over the cached pre-hash. One
//! [`DepInterner`] lives per node so repeated writes to the same objects
//! reuse the same allocations.

use parking_lot::RwLock;
use std::borrow::Borrow;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use synapse_model::Id;
use synapse_versionstore::DepKey;

/// Stable FNV-1a over the name bytes — the paper's "stable hash function
/// at the publisher". The full 64-bit value is cached in the name;
/// [`DepSpace::key`] reduces it modulo the space cardinality, which yields
/// byte-for-byte the same keys as hashing at lookup time.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The stable writer id of an application — the version-vector component
/// key its writes bump. Derived from the app name with the same FNV-1a
/// hash as dependency names, so every node computes identical ids without
/// coordination. Id 0 is reserved for scalar-era (unattributed) versions
/// ([`synapse_versionstore::LEGACY_WRITER`]); the hash of a non-empty app
/// name is never 0, and an empty name maps to 1.
pub fn writer_id(app: &str) -> u64 {
    match fnv1a(app) {
        0 => 1,
        id => id,
    }
}

/// The writer-independent namespace version vectors of bidirectional
/// (multi-writer) models live under. Ordinary dependency names are
/// namespaced by the *publishing* app (`app/model/id/N`), which is exactly
/// right for single-writer replication but would split a multi-writer
/// object's history across one key per writer — concurrent writes would
/// never meet for comparison. Mesh names (`~mesh/model/id/N`) give every
/// writer of an object the *same* key; the `~` prefix keeps them out of
/// any real app's namespace (app names do not start with `~`).
pub const MESH_NAMESPACE: &str = "~mesh";

/// The mesh dependency name of one multi-writer object:
/// `~mesh/model/id/<id>` — identical on every node that publishes or
/// subscribes to the model bidirectionally.
pub fn mesh_object(model: &str, id: Id) -> DepName {
    DepName::object(MESH_NAMESPACE, model, id)
}

/// A human-readable dependency name with its cached stable pre-hash.
#[derive(Debug, Clone)]
pub struct DepName {
    name: Arc<str>,
    hash: u64,
}

impl DepName {
    fn from_str_uncached(name: &str) -> Self {
        DepName {
            hash: fnv1a(name),
            name: Arc::from(name),
        }
    }

    /// The dependency of one object: `app/model/id/<id>`.
    pub fn object(app: &str, model: &str, id: Id) -> Self {
        NAME_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            format_object_name(&mut buf, app, model, id);
            DepName::from_str_uncached(&buf)
        })
    }

    /// The single global dependency used to enforce global ordering.
    pub fn global(app: &str) -> Self {
        NAME_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            buf.push_str(app);
            buf.push_str("/__global__");
            DepName::from_str_uncached(&buf)
        })
    }

    /// An explicitly named dependency (`add_read_deps`/`add_write_deps`).
    pub fn named(name: &str) -> Self {
        DepName::from_str_uncached(name)
    }

    /// The bootstrap-copy watermark of one (publisher, model) pair:
    /// `pub_app/model/__bootstrap__`. The `__bootstrap__` leaf keeps it
    /// from colliding with any `…/id/<id>` object name, so the watermark
    /// rides in the subscriber's version store alongside ordinary
    /// dependencies.
    pub fn bootstrap_watermark(pub_app: &str, model: &str) -> Self {
        NAME_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            buf.push_str(pub_app);
            buf.push('/');
            for c in model.chars() {
                for lc in c.to_lowercase() {
                    buf.push(lc);
                }
            }
            buf.push_str("/__bootstrap__");
            DepName::from_str_uncached(&buf)
        })
    }

    /// The name path, e.g. `pub3/user/id/100`.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// The cached full-width stable hash of the name.
    pub fn stable_hash(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for DepName {
    fn eq(&self, other: &Self) -> bool {
        // Hash inequality decides almost every comparison without touching
        // the bytes; the string check keeps semantics exact under a 64-bit
        // collision.
        self.hash == other.hash && (Arc::ptr_eq(&self.name, &other.name) || self.name == other.name)
    }
}

impl Eq for DepName {}

impl Hash for DepName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for DepName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DepName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl fmt::Display for DepName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

thread_local! {
    static NAME_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Formats `app/model/id/<id>` into `buf` without allocating: the model is
/// lowercased char-by-char instead of via `str::to_lowercase`.
fn format_object_name(buf: &mut String, app: &str, model: &str, id: Id) {
    buf.clear();
    buf.push_str(app);
    buf.push('/');
    for c in model.chars() {
        for lc in c.to_lowercase() {
            buf.push(lc);
        }
    }
    buf.push_str("/id/");
    let _ = write!(buf, "{id}");
}

/// Past this many distinct names the interner stops caching and hands out
/// uncached names — a backstop against unbounded growth when an app uses
/// high-cardinality explicit dependency names.
const INTERNER_CAP: usize = 65_536;

/// Interns dependency names so the hot path reuses one `Arc<str>` (and its
/// pre-hash) per distinct name. One interner lives per node; lookups take a
/// read lock, first-sightings upgrade to a write lock.
#[derive(Debug, Default)]
pub struct DepInterner {
    names: RwLock<HashMap<Arc<str>, u64>>,
}

impl DepInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct names currently interned.
    pub fn len(&self) -> usize {
        self.names.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.read().is_empty()
    }

    fn lookup(&self, name: &str) -> DepName {
        {
            let names = self.names.read();
            if let Some((arc, &hash)) = names.get_key_value(name) {
                return DepName {
                    name: Arc::clone(arc),
                    hash,
                };
            }
            if names.len() >= INTERNER_CAP {
                return DepName::from_str_uncached(name);
            }
        }
        let dep = DepName::from_str_uncached(name);
        let mut names = self.names.write();
        if names.len() < INTERNER_CAP {
            names.entry(Arc::clone(&dep.name)).or_insert(dep.hash);
        }
        dep
    }

    /// Interned equivalent of [`DepName::object`].
    pub fn object(&self, app: &str, model: &str, id: Id) -> DepName {
        NAME_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            format_object_name(&mut buf, app, model, id);
            self.lookup(&buf)
        })
    }

    /// Interned equivalent of [`DepName::named`].
    pub fn named(&self, name: &str) -> DepName {
        self.lookup(name)
    }
}

impl Borrow<str> for DepName {
    fn borrow(&self) -> &str {
        &self.name
    }
}

/// Order-preserving normalization of a write/read dependency pair: drops
/// duplicate names within each list (first occurrence wins) and removes
/// from `read_deps` every name that also appears in `write_deps` — a write
/// dependency subsumes the read. Equivalent to the old quadratic
/// `dedup + retain(!contains)` passes but linear in the number of deps
/// (`tests/properties.rs` pins the equivalence).
pub fn normalize_dep_sets(write_deps: &mut Vec<DepName>, read_deps: &mut Vec<DepName>) {
    let mut seen = HashSet::new();
    normalize_dep_sets_with(&mut seen, write_deps, read_deps);
}

/// [`normalize_dep_sets`] with a caller-owned scratch set (the publisher
/// keeps one per thread).
pub fn normalize_dep_sets_with(
    seen: &mut HashSet<DepName>,
    write_deps: &mut Vec<DepName>,
    read_deps: &mut Vec<DepName>,
) {
    seen.clear();
    write_deps.retain(|d| seen.insert(d.clone()));
    read_deps.retain(|d| seen.insert(d.clone()));
}

/// The effective dependency space: dependency names hash into
/// `cardinality` buckets ("the number of effective dependencies that
/// Synapse uses is the cardinal of the hashing function output space").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepSpace {
    cardinality: u64,
}

impl DepSpace {
    /// A space with the given number of effective dependencies.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    pub fn new(cardinality: u64) -> Self {
        assert!(cardinality > 0, "dependency space must be non-empty");
        DepSpace { cardinality }
    }

    /// The paper's sizing example: a 1 GB version store holds ~10 M
    /// dependencies at ~100 bytes each.
    pub fn default_production() -> Self {
        DepSpace::new(10_000_000)
    }

    /// Number of effective dependencies.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Reduces a name's cached stable hash into the space.
    pub fn key(&self, name: &DepName) -> DepKey {
        name.hash % self.cardinality
    }
}

impl Default for DepSpace {
    fn default() -> Self {
        Self::default_production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_names_match_fig6b_shape() {
        let d = DepName::object("pub3", "User", Id(100));
        assert_eq!(d.as_str(), "pub3/user/id/100");
    }

    #[test]
    fn bootstrap_watermark_names_cannot_collide_with_objects() {
        let wm = DepName::bootstrap_watermark("pub3", "User");
        assert_eq!(wm.as_str(), "pub3/user/__bootstrap__");
        assert_ne!(wm, DepName::object("pub3", "User", Id(1)));
        assert_ne!(wm, DepName::bootstrap_watermark("pub3", "Comment"));
    }

    #[test]
    fn hashing_is_stable_and_bounded() {
        let space = DepSpace::new(1000);
        let d = DepName::object("app", "Post", Id(1));
        let k1 = space.key(&d);
        let k2 = space.key(&d);
        assert_eq!(k1, k2);
        assert!(k1 < 1000);
    }

    #[test]
    fn cached_hash_matches_direct_fnv1a() {
        // DepSpace::key must equal hashing the bytes at lookup time —
        // interning must not change any routed key.
        let space = DepSpace::new(997);
        for name in ["pub3/user/id/100", "a/__global__", "x", ""] {
            let d = DepName::named(name);
            assert_eq!(space.key(&d), fnv1a(name) % 997);
        }
    }

    #[test]
    fn one_entry_space_maps_everything_to_one_key() {
        // The global-ordering equivalence of §4.2.
        let space = DepSpace::new(1);
        for i in 0..100 {
            assert_eq!(space.key(&DepName::object("a", "M", Id(i))), 0);
        }
    }

    #[test]
    fn distinct_objects_rarely_collide_in_a_large_space() {
        let space = DepSpace::new(1 << 32);
        let mut keys: Vec<DepKey> = (0..1000)
            .map(|i| space.key(&DepName::object("app", "User", Id(i))))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn interner_reuses_allocations_and_matches_uninterned_names() {
        let interner = DepInterner::new();
        let a = interner.object("app", "User", Id(9));
        let b = interner.object("app", "User", Id(9));
        assert!(Arc::ptr_eq(&a.name, &b.name));
        assert_eq!(a, DepName::object("app", "User", Id(9)));
        assert_eq!(interner.len(), 1);
        assert_eq!(interner.named("app/x").as_str(), "app/x");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn interner_caps_growth_but_stays_correct() {
        let interner = DepInterner::new();
        for i in 0..(INTERNER_CAP as u64 + 10) {
            let d = interner.object("app", "User", Id(i));
            assert_eq!(d.as_str(), format!("app/user/id/{i}"));
        }
        assert!(interner.len() <= INTERNER_CAP);
    }

    #[test]
    fn normalize_preserves_order_and_subsumes_reads() {
        let n = |s: &str| DepName::named(s);
        let mut writes = vec![n("w1"), n("w2"), n("w1"), n("w3")];
        let mut reads = vec![n("r1"), n("w2"), n("r1"), n("r2"), n("w3")];
        normalize_dep_sets(&mut writes, &mut reads);
        assert_eq!(writes, vec![n("w1"), n("w2"), n("w3")]);
        assert_eq!(reads, vec![n("r1"), n("r2")]);
    }
}
