//! Dependency names and the fixed-size effective dependency space.
//!
//! A dependency names one object version-tracked by the version store. The
//! paper writes them as `app/model/id/…` paths (Fig. 6(b):
//! `"pub3/users/id/100"`), then hashes them "with a stable hash function at
//! the publisher" into a fixed space so version stores consume O(1) memory.
//! A hash collision merely serializes two unrelated objects — and "using a
//! 1-entry dependency hash space is equivalent to using global ordering"
//! (§4.2), a property the tests pin down.

use std::fmt;
use synapse_model::Id;
use synapse_versionstore::DepKey;

/// A human-readable dependency name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepName(pub String);

impl DepName {
    /// The dependency of one object: `app/model/id/<id>`.
    pub fn object(app: &str, model: &str, id: Id) -> Self {
        DepName(format!("{}/{}/id/{}", app, model.to_lowercase(), id))
    }

    /// The single global dependency used to enforce global ordering.
    pub fn global(app: &str) -> Self {
        DepName(format!("{app}/__global__"))
    }

    /// An explicitly named dependency (`add_read_deps`/`add_write_deps`).
    pub fn named(name: &str) -> Self {
        DepName(name.to_owned())
    }
}

impl fmt::Display for DepName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The effective dependency space: dependency names hash into
/// `cardinality` buckets ("the number of effective dependencies that
/// Synapse uses is the cardinal of the hashing function output space").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepSpace {
    cardinality: u64,
}

impl DepSpace {
    /// A space with the given number of effective dependencies.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    pub fn new(cardinality: u64) -> Self {
        assert!(cardinality > 0, "dependency space must be non-empty");
        DepSpace { cardinality }
    }

    /// The paper's sizing example: a 1 GB version store holds ~10 M
    /// dependencies at ~100 bytes each.
    pub fn default_production() -> Self {
        DepSpace::new(10_000_000)
    }

    /// Number of effective dependencies.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Hashes a dependency name into the space (stable FNV-1a).
    pub fn key(&self, name: &DepName) -> DepKey {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.0.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h % self.cardinality
    }
}

impl Default for DepSpace {
    fn default() -> Self {
        Self::default_production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_names_match_fig6b_shape() {
        let d = DepName::object("pub3", "User", Id(100));
        assert_eq!(d.0, "pub3/user/id/100");
    }

    #[test]
    fn hashing_is_stable_and_bounded() {
        let space = DepSpace::new(1000);
        let d = DepName::object("app", "Post", Id(1));
        let k1 = space.key(&d);
        let k2 = space.key(&d);
        assert_eq!(k1, k2);
        assert!(k1 < 1000);
    }

    #[test]
    fn one_entry_space_maps_everything_to_one_key() {
        // The global-ordering equivalence of §4.2.
        let space = DepSpace::new(1);
        for i in 0..100 {
            assert_eq!(space.key(&DepName::object("a", "M", Id(i))), 0);
        }
    }

    #[test]
    fn distinct_objects_rarely_collide_in_a_large_space() {
        let space = DepSpace::new(1 << 32);
        let mut keys: Vec<DepKey> = (0..1000)
            .map(|i| space.key(&DepName::object("app", "User", Id(i))))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 1000);
    }
}
