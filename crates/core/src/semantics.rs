//! Delivery semantics (§3.2).

/// Update delivery semantics, selectable per publisher and per subscriber
/// with the `delivery_mode` directive (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeliveryMode {
    /// Per-object latest-version delivery: updates to the same object are
    /// ordered, intermediate versions may be skipped, lost messages are
    /// tolerated. Best scaling and availability.
    Weak,
    /// The paper's recommended default: updates to the same object, within
    /// the same controller, and within the same user session are serialized,
    /// and read-dependency snapshots hold across services.
    Causal,
    /// Every update totally ordered. "Limits horizontal scaling and is
    /// rarely if ever used in production."
    Global,
}

impl DeliveryMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DeliveryMode::Weak => "weak",
            DeliveryMode::Causal => "causal",
            DeliveryMode::Global => "global",
        }
    }

    /// A subscriber "can only select delivery semantics that are at most as
    /// strong as the publisher supports" (§3.2): the effective subscriber
    /// mode is the weaker of the two.
    pub fn effective(publisher: DeliveryMode, subscriber: DeliveryMode) -> DeliveryMode {
        publisher.min(subscriber)
    }

    /// The telemetry slice this mode's latencies are recorded under.
    pub fn slice(self) -> synapse_telemetry::ModeSlice {
        match self {
            DeliveryMode::Weak => synapse_telemetry::ModeSlice::Weak,
            DeliveryMode::Causal => synapse_telemetry::ModeSlice::Causal,
            DeliveryMode::Global => synapse_telemetry::ModeSlice::Global,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_order_by_strength() {
        assert!(DeliveryMode::Weak < DeliveryMode::Causal);
        assert!(DeliveryMode::Causal < DeliveryMode::Global);
    }

    #[test]
    fn slices_mirror_mode_names() {
        for mode in [
            DeliveryMode::Weak,
            DeliveryMode::Causal,
            DeliveryMode::Global,
        ] {
            assert_eq!(mode.slice().name(), mode.name());
        }
    }

    #[test]
    fn effective_mode_is_the_weaker_side() {
        use DeliveryMode::*;
        assert_eq!(DeliveryMode::effective(Causal, Weak), Weak);
        assert_eq!(DeliveryMode::effective(Causal, Global), Causal);
        assert_eq!(DeliveryMode::effective(Global, Global), Global);
        assert_eq!(DeliveryMode::effective(Weak, Causal), Weak);
    }
}
