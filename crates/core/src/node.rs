//! One service's Synapse runtime and the ecosystem wiring harness.

use crate::api::{Publication, Subscription};
use crate::config::SynapseConfig;
use crate::context::{self, TxBuffer};
use crate::deps::DepName;
use crate::durability::{NodeSnapshot, SnapshotStore};
use crate::message::{Operation, WriteMessage};
use crate::publisher::{Publisher, PublisherStats};
use crate::semantics::DeliveryMode;
use crate::subscriber::{ProcessError, Subscriber, SubscriberStats};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_broker::{
    Broker, Delivery, QueueConfig, QueueState, RecoveryReport, SharedStr, WalConfig,
    BOOTSTRAP_EXCHANGE,
};
use synapse_db::DbError;
use synapse_model::{Id, Record};
use synapse_orm::{Adapter, Orm, OrmError};
use synapse_telemetry::{mono_nanos, Telemetry, TelemetrySnapshot};
use synapse_versionstore::{DepKey, GenerationStore, VersionStore, VersionVector};

/// How long [`SynapseNode::bootstrap_from`]'s finalize step waits for the
/// subscriber to account for the merged chunk copies before going Live
/// anyway. This bounds only the *caller's* blocking time — workers keep
/// draining live traffic throughout — and on expiry the node still goes
/// Live safely: the copies are durably enqueued and version-store
/// admission makes their late application a no-op or an upsert, never a
/// regression.
const FINALIZE_SETTLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Outcome of one committed chunk copy.
struct ChunkCopy {
    /// Last id selected (the new watermark, already committed).
    last: u64,
    /// Copies merged into the delivery queue (zero on the sync path).
    merged: u64,
}

/// Coarse phase of the bootstrap state machine — `Copy`-cheap so it can
/// ride in [`NodeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BootstrapPhase {
    /// No bootstrap running (and none has completed since the last reset).
    #[default]
    Idle,
    /// Step 1: bulk version-snapshot transfer.
    Snapshot,
    /// Step 2a: selecting a chunk between its lo/hi watermarks.
    Copying,
    /// Step 2b: reconciling a selected chunk against the live writes
    /// observed inside its watermark window, then merging the survivors
    /// into the delivery queue.
    Reconciling,
    /// All chunks merged; waiting (without pausing delivery) for the
    /// subscriber to account for them, then clearing resume watermarks.
    Finalizing,
    /// Bootstrap completed; the node serves live traffic.
    Live,
}

/// The bootstrap state machine: Idle → Snapshot → (Copying{model, chunk} →
/// Reconciling{model, chunk})* → Finalizing → Live, falling back to Idle
/// when an attempt fails. The rich variants carry which model/chunk the
/// copier is on; tests hook [`SynapseNode::set_bootstrap_probe`] on
/// transitions to inject faults at exact phases. There is no drain state:
/// chunk copies merge into the partitioned delivery queue behind the live
/// stream, so delivery never pauses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BootstrapState {
    /// No bootstrap running.
    #[default]
    Idle,
    /// Step 1: bulk version-snapshot transfer.
    Snapshot,
    /// Step 2a: selecting chunk `chunk` (0-based) of `model` between its
    /// lo and hi watermark markers.
    Copying {
        /// Model being copied.
        model: String,
        /// 0-based chunk index within this attempt.
        chunk: u64,
    },
    /// Step 2b: reconciling chunk `chunk` of `model` against the live
    /// writes its watermark window observed, then merging the survivors.
    Reconciling {
        /// Model being reconciled.
        model: String,
        /// 0-based chunk index within this attempt.
        chunk: u64,
    },
    /// All chunks merged; settling the merged copies and clearing resume
    /// watermarks. Live delivery continues throughout.
    Finalizing,
    /// Bootstrap completed.
    Live,
}

impl BootstrapState {
    /// The coarse phase of this state.
    pub fn phase(&self) -> BootstrapPhase {
        match self {
            BootstrapState::Idle => BootstrapPhase::Idle,
            BootstrapState::Snapshot => BootstrapPhase::Snapshot,
            BootstrapState::Copying { .. } => BootstrapPhase::Copying,
            BootstrapState::Reconciling { .. } => BootstrapPhase::Reconciling,
            BootstrapState::Finalizing => BootstrapPhase::Finalizing,
            BootstrapState::Live => BootstrapPhase::Live,
        }
    }
}

/// Bootstrap attempt/retry/resume accounting, surfaced through
/// [`NodeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BootstrapStats {
    /// Current coarse phase.
    pub phase: BootstrapPhase,
    /// `bootstrap_from` invocations (completed or not).
    pub attempts: u64,
    /// Completed bootstraps (same counter as [`NodeStats::bootstraps`]).
    pub completions: u64,
    /// Transient step failures absorbed by the retry policy (chunk copies,
    /// snapshot transfers) rather than failing the attempt.
    pub retries: u64,
    /// Models whose copy resumed from a surviving watermark instead of
    /// starting over.
    pub resumes: u64,
    /// Chunks committed (watermark advanced) across all attempts.
    pub chunks_copied: u64,
    /// Records persisted by the copier.
    pub records_copied: u64,
    /// Copied records discarded because the live stream had already
    /// delivered an equal-or-newer version — either dropped by the
    /// watermark-window pre-filter or refused by version-store admission.
    pub records_reconciled: u64,
    /// Chunk copies merged into the partitioned delivery queue (the
    /// pause-free path; the synchronous no-worker fallback applies
    /// directly and leaves this at zero).
    pub copies_merged: u64,
    /// Watermark windows that timed out before both markers were observed
    /// (the copy proceeded on version-store admission alone).
    pub windows_timed_out: u64,
    /// Post-convergence watermark cleanups that failed and were deferred
    /// to the next attempt instead of failing an otherwise-complete
    /// bootstrap.
    pub cleanup_deferred: u64,
}

/// Observer of bootstrap state transitions (fault-injection hook).
type BootstrapProbe = Box<dyn Fn(&BootstrapState) + Send + Sync>;

/// Shared bootstrap bookkeeping: the state machine, its transition probe,
/// and the attempt/retry/resume counters.
#[derive(Default)]
struct BootstrapTracker {
    state: RwLock<BootstrapState>,
    probe: RwLock<Option<BootstrapProbe>>,
    attempts: AtomicU64,
    retries: AtomicU64,
    resumes: AtomicU64,
    chunks_copied: AtomicU64,
    records_copied: AtomicU64,
    records_reconciled: AtomicU64,
    copies_merged: AtomicU64,
    cleanup_deferred: AtomicU64,
    /// Set when a post-convergence watermark cleanup failed: the next
    /// attempt must clear the stale watermarks *before* trusting any
    /// resume state.
    watermarks_dirty: AtomicBool,
    /// Lineage floor: the queue's cumulative `(discarded, dropped)` pair
    /// as of the last bootstrap attempt. Movement between attempts means
    /// the live stream lost coverage, so committed copy watermarks can no
    /// longer be resumed from. (Queue-refused publishes are deliberately
    /// not part of the signal: a refused message stays in the publisher's
    /// journal and is republished, so coverage is delayed, not broken.)
    lineage: Mutex<Option<(u64, u64)>>,
    /// Armed chunk-copy failures (fault hook): the next N `copy_chunk`
    /// invocations fail transiently before doing any work.
    copy_fail_next: AtomicU64,
}

impl BootstrapTracker {
    /// Moves the state machine and notifies the probe (outside the state
    /// lock, so a probe may read the state or inject faults freely).
    fn transition(&self, next: BootstrapState) {
        *self.state.write() = next.clone();
        if let Some(probe) = self.probe.read().as_ref() {
            probe(&next);
        }
    }
}

/// RAII guard around one bootstrap attempt: sets the ORM bootstrap flag on
/// entry and clears it on *every* exit path — the `?` early-returns in
/// steps 1–2 used to leak the flag and permanently wedge the node in
/// bootstrap mode. A drop without [`BootstrapGuard::complete`] also walks
/// the state machine back to Idle, so a failed attempt leaves the node
/// writable and re-enterable.
struct BootstrapGuard<'a> {
    node: &'a SynapseNode,
    completed: bool,
}

impl<'a> BootstrapGuard<'a> {
    fn new(node: &'a SynapseNode) -> Self {
        node.orm.set_bootstrap(true);
        BootstrapGuard {
            node,
            completed: false,
        }
    }

    /// Marks the attempt successful: the flag still clears on drop, but
    /// the state machine is left to the caller (which moves it to Live).
    fn complete(mut self) {
        self.completed = true;
    }
}

impl Drop for BootstrapGuard<'_> {
    fn drop(&mut self) {
        self.node.orm.set_bootstrap(false);
        if !self.completed {
            self.node.bootstrap.transition(BootstrapState::Idle);
        }
    }
}

/// One application's Synapse runtime: its ORM, publisher, subscriber, and
/// version stores, bound to the shared broker.
pub struct SynapseNode {
    config: SynapseConfig,
    orm: Arc<Orm>,
    broker: Broker,
    pub_store: Arc<VersionStore>,
    sub_store: Arc<VersionStore>,
    generations: GenerationStore,
    publications: Arc<RwLock<BTreeMap<String, Publication>>>,
    subscriptions: Arc<RwLock<Vec<Subscription>>>,
    publisher: Arc<Publisher>,
    subscriber: Arc<Subscriber>,
    publisher_modes: Arc<RwLock<HashMap<String, DeliveryMode>>>,
    /// The node's telemetry plane: staged latency histograms, counters,
    /// and the structured event ring, shared by publisher and subscriber.
    telemetry: Arc<Telemetry>,
    /// Completed (re-)bootstraps — the recovery counter of §4.4.
    bootstraps: AtomicU64,
    /// Bootstrap state machine, probe, and counters.
    bootstrap: BootstrapTracker,
    /// Version-store snapshot store, when the durability plane is on.
    snapshots: Option<SnapshotStore>,
    /// Subscriber-processed count at the last persisted snapshot — the
    /// reference point of the driver-clocked snapshot cadence.
    snapshot_marker: AtomicU64,
}

/// One node's counters across the whole pipeline, aggregated for fault
/// accounting: everything a soak test needs to prove zero silent loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Publisher-side counters (publishes, retries, journal exhaustions,
    /// generation bumps).
    pub publisher: PublisherStats,
    /// Subscriber-side counters (processed, retries, redeliveries,
    /// dead-lettered, poison).
    pub subscriber: SubscriberStats,
    /// Payloads journaled but not yet confirmed at the broker.
    pub journaled: usize,
    /// Deliveries in this node's dead-letter store.
    pub dead_lettered: usize,
    /// Completed (re-)bootstraps.
    pub bootstraps: u64,
    /// Bootstrap state-machine phase and attempt/retry/resume counters.
    pub bootstrap: BootstrapStats,
}

impl SynapseNode {
    /// Creates a node for `config.app` over `adapter`, attached to
    /// `broker`. Declares the app's queue and installs the publisher as a
    /// query observer on the ORM.
    pub fn new(config: SynapseConfig, adapter: Arc<dyn Adapter>, broker: Broker) -> Arc<Self> {
        let orm = Arc::new(Orm::new(config.app.clone(), adapter));
        let pub_store = Arc::new(VersionStore::new(config.version_store_shards));
        let sub_store = Arc::new(VersionStore::new(config.version_store_shards));
        let generations = GenerationStore::new();
        let publications = Arc::new(RwLock::new(BTreeMap::new()));
        let subscriptions = Arc::new(RwLock::new(Vec::new()));
        let publisher_modes = Arc::new(RwLock::new(HashMap::new()));
        let telemetry = Arc::new(Telemetry::new(config.telemetry_enabled));

        // Recover version state *before* any traffic: with the durability
        // plane on, load the latest snapshot into both stores so causal
        // waits and bootstrap watermarks see pre-crash state. The broker
        // has already replayed its WAL by this point (Broker::open_durable
        // runs before nodes are built), so this pass completes the node's
        // half of recovery. Store errors degrade to a memory-only node
        // with a counter raised, never a panic.
        let snapshots = config.durability.dir.as_ref().and_then(|root| {
            let t0 = mono_nanos();
            let counters = telemetry.counters();
            let store = match SnapshotStore::open(root.join("snapshots")) {
                Ok(store) => store,
                Err(_) => {
                    counters.counter("recovery.snapshot_open_errors").bump();
                    return None;
                }
            };
            match store.load_latest() {
                Ok(Some(snapshot)) => {
                    let entries = (snapshot.pub_entries.len() + snapshot.sub_entries.len()) as u64;
                    let _ = pub_store.load_dump(&snapshot.pub_entries);
                    let _ = sub_store.load_dump(&snapshot.sub_entries);
                    counters.counter("recovery.snapshots_loaded").bump();
                    counters.counter("recovery.snapshot_entries").add(entries);
                }
                Ok(None) => {}
                Err(_) => counters.counter("recovery.snapshot_load_errors").bump(),
            }
            let skipped = store.stats().skipped_corrupt;
            if skipped > 0 {
                counters
                    .counter("recovery.snapshots_skipped_corrupt")
                    .add(skipped);
            }
            telemetry.record_recovery(mono_nanos().saturating_sub(t0));
            Some(store)
        });
        if let Some(report) = broker.recovery_report() {
            let counters = telemetry.counters();
            counters
                .counter("recovery.wal_replayed_entries")
                .add(report.replayed_entries);
            counters
                .counter("recovery.wal_torn_entries_dropped")
                .add(report.torn_entries_dropped);
            counters
                .counter("recovery.queues_recovered")
                .add(report.queues_recovered);
            counters
                .counter("recovery.messages_recovered")
                .add(report.messages_recovered);
        }

        broker.declare_queue(
            &config.app,
            QueueConfig {
                max_len: config.queue_max_len,
                partitions: config.queue_partitions,
            },
        );

        let publisher = Arc::new(Publisher::new(
            config.app.clone(),
            config.publisher_mode,
            config.dep_space,
            pub_store.clone(),
            sub_store.clone(),
            broker.clone(),
            generations.clone(),
            publications.clone(),
            subscriptions.clone(),
            config.retry,
            telemetry.clone(),
        ));
        orm.observe(publisher.clone());

        let subscriber = Arc::new(Subscriber::new(
            &config,
            orm.clone(),
            sub_store.clone(),
            subscriptions.clone(),
            publisher_modes.clone(),
            broker.clone(),
            telemetry.clone(),
        ));

        Arc::new(SynapseNode {
            config,
            orm,
            broker,
            pub_store,
            sub_store,
            generations,
            publications,
            subscriptions,
            publisher,
            subscriber,
            publisher_modes,
            telemetry,
            bootstraps: AtomicU64::new(0),
            bootstrap: BootstrapTracker::default(),
            snapshots,
            snapshot_marker: AtomicU64::new(0),
        })
    }

    /// The application name.
    pub fn app(&self) -> &str {
        &self.config.app
    }

    /// The node's configuration.
    pub fn config(&self) -> &SynapseConfig {
        &self.config
    }

    /// The node's ORM (models, CRUD, callbacks, virtual attributes).
    pub fn orm(&self) -> &Arc<Orm> {
        &self.orm
    }

    /// The publisher runtime (stats, failure injection, recovery).
    pub fn publisher(&self) -> &Arc<Publisher> {
        &self.publisher
    }

    /// The subscriber runtime (stats, manual processing).
    pub fn subscriber(&self) -> &Arc<Subscriber> {
        &self.subscriber
    }

    /// The publisher-side version store.
    pub fn pub_store(&self) -> &Arc<VersionStore> {
        &self.pub_store
    }

    /// The subscriber-side version store.
    pub fn sub_store(&self) -> &Arc<VersionStore> {
        &self.sub_store
    }

    /// The publisher's generation store.
    pub fn generations(&self) -> &GenerationStore {
        &self.generations
    }

    /// Declares a publication (the `publish do … end` block).
    ///
    /// Enforces the decorator rule of §3.1: a service cannot publish
    /// attributes it subscribes to. Bidirectional models are exempt — a
    /// multi-writer mesh publishes and subscribes the *same* attributes by
    /// design, with concurrent writes handled by conflict resolution.
    pub fn publish(&self, publication: Publication) -> Result<(), OrmError> {
        let subs = self.subscriptions.read();
        if let Some(sub) = subs.iter().find(|s| {
            s.model == publication.model && !(s.bidirectional && publication.bidirectional)
        }) {
            for f in &publication.fields {
                if sub.local_fields().contains(&f.as_str()) {
                    return Err(OrmError::Restriction(format!(
                        "decorator {} cannot publish subscribed attribute {}.{}",
                        self.app(),
                        publication.model,
                        f
                    )));
                }
            }
        }
        drop(subs);
        self.publications
            .write()
            .insert(publication.model.clone(), publication);
        Ok(())
    }

    /// Declares a subscription (the `subscribe from: … do … end` block) and
    /// binds this app's queue to the publisher's exchange.
    pub fn subscribe(&self, subscription: Subscription) -> Result<(), OrmError> {
        // Decorator rule, checked from the other side (bidirectional
        // models are exempt, as in [`SynapseNode::publish`]).
        let pubs = self.publications.read();
        if let Some(publication) = pubs
            .get(&subscription.model)
            .filter(|p| !(p.bidirectional && subscription.bidirectional))
        {
            for f in subscription.local_fields() {
                if publication.fields.iter().any(|pf| pf == f) {
                    return Err(OrmError::Restriction(format!(
                        "decorator {} cannot subscribe to attribute {}.{} it publishes",
                        self.app(),
                        subscription.model,
                        f
                    )));
                }
            }
        }
        drop(pubs);
        self.broker.bind(&subscription.from, self.app());
        self.publisher_modes
            .write()
            .entry(subscription.from.clone())
            .or_insert(DeliveryMode::Causal);
        self.subscriptions.write().push(subscription);
        Ok(())
    }

    /// Records the delivery mode `pub_app` supports (done automatically by
    /// [`Ecosystem::connect`]).
    pub fn set_publisher_mode(&self, pub_app: &str, mode: DeliveryMode) {
        self.publisher_modes
            .write()
            .insert(pub_app.to_owned(), mode);
    }

    /// All declared publications.
    pub fn publications(&self) -> Vec<Publication> {
        self.publications.read().values().cloned().collect()
    }

    /// All declared subscriptions.
    pub fn subscriptions(&self) -> Vec<Subscription> {
        self.subscriptions.read().clone()
    }

    /// Starts the subscriber worker pool.
    pub fn start(&self) {
        self.subscriber.start(self.config.subscriber_workers);
    }

    /// Stops the subscriber workers.
    pub fn stop(&self) {
        self.subscriber.stop();
    }

    /// Runs `f` with all its writes combined into a single message (§4.2:
    /// "all writes within a single transaction are combined into a single
    /// message").
    pub fn transaction<R>(&self, f: impl FnOnce() -> R) -> R {
        let opened_scope = !context::in_scope();
        let run = || {
            context::scope_mut(|s| s.tx_buffer = Some(TxBuffer::default()));
            let out = f();
            let buffer = context::scope_mut(|s| s.tx_buffer.take()).flatten();
            if let Some(buffer) = buffer {
                self.publisher.flush_transaction(buffer);
            }
            out
        };
        if opened_scope {
            context::with_scope(run).0
        } else {
            run()
        }
    }

    /// Publisher counters.
    pub fn publisher_stats(&self) -> PublisherStats {
        self.publisher.stats()
    }

    /// Subscriber counters.
    pub fn subscriber_stats(&self) -> SubscriberStats {
        self.subscriber.stats()
    }

    /// The node's telemetry plane (staged latency histograms, counters,
    /// event ring, controller-overhead table).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// One coherent export of the telemetry plane: the staged
    /// visibility-latency histograms and delivered counts per mode, plus
    /// every layer's counters folded into the counter list — publisher and
    /// subscriber pipeline counters, ORM intercept counts, and the version
    /// stores' apply/wait timing — so a single snapshot answers both "how
    /// late" and "how much" for this node.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        let stats = self.stats();
        let mut extra: Vec<(String, u64)> = vec![
            (
                "publisher.messages_published".into(),
                stats.publisher.messages_published,
            ),
            ("publisher.operations".into(), stats.publisher.operations),
            (
                "publisher.publish_retries".into(),
                stats.publisher.publish_retries,
            ),
            (
                "publisher.publish_failures".into(),
                stats.publisher.publish_failures,
            ),
            ("publisher.journaled".into(), stats.journaled as u64),
            (
                "subscriber.messages_processed".into(),
                stats.subscriber.messages_processed,
            ),
            (
                "subscriber.ops_applied".into(),
                stats.subscriber.ops_applied,
            ),
            ("subscriber.ops_stale".into(), stats.subscriber.ops_stale),
            (
                "subscriber.dep_timeouts".into(),
                stats.subscriber.dep_timeouts,
            ),
            ("subscriber.retries".into(), stats.subscriber.retries),
            (
                "subscriber.dead_lettered".into(),
                stats.subscriber.dead_lettered,
            ),
            ("subscriber.steals".into(), stats.subscriber.steals),
            (
                "subscriber.messages_stolen".into(),
                stats.subscriber.messages_stolen,
            ),
            (
                "orm.writes_intercepted".into(),
                self.orm.writes_intercepted(),
            ),
            ("orm.reads_observed".into(), self.orm.reads_observed()),
        ];
        // Delivery-plane gauges and counters: the queue-depth reads are
        // lock-free (relaxed atomics maintained by the partitions), so this
        // poll never contends with the publish/pop hot path.
        let app = &self.config.app;
        if let Some(depth) = self.broker.queue_len(app) {
            extra.push(("broker.queue_depth".into(), depth as u64));
        }
        if let Some(unacked) = self.broker.queue_unacked_len(app) {
            extra.push(("broker.queue_unacked".into(), unacked as u64));
        }
        if let Some(depths) = self.broker.partition_depths(app) {
            for (i, d) in depths.iter().enumerate() {
                extra.push((format!("broker.partition_depth.{i}"), *d as u64));
            }
        }
        let broker_stats = self.broker.stats();
        extra.push(("broker.wakeups".into(), broker_stats.wakeups));
        extra.push(("broker.steals".into(), broker_stats.steals));
        extra.push(("broker.stolen".into(), broker_stats.stolen));
        for (store, name) in [
            (&self.pub_store, "pub_store"),
            (&self.sub_store, "sub_store"),
        ] {
            let timing = store.timing();
            extra.push((format!("{name}.applies"), timing.applies));
            extra.push((format!("{name}.apply_nanos"), timing.apply_nanos));
            extra.push((format!("{name}.waits"), timing.waits));
            extra.push((format!("{name}.wait_nanos"), timing.wait_nanos));
        }
        // Durability-plane counters: live WAL accounting from the broker
        // and the snapshot store's lifetime counters. (The `recovery.*`
        // counters were bumped into the registry at construction, so they
        // ride in through the registry snapshot.)
        if let Some(ws) = self.broker.wal_stats() {
            extra.push(("wal.appends".into(), ws.appends));
            extra.push(("wal.bytes_appended".into(), ws.bytes_appended));
            extra.push(("wal.fsyncs".into(), ws.fsyncs));
            extra.push(("wal.segments_rolled".into(), ws.segments_rolled));
            extra.push(("wal.segments_removed".into(), ws.segments_removed));
            extra.push(("wal.group_commits".into(), ws.group_commits));
        }
        if let Some(gs) = self.broker.wal_group_size() {
            extra.push(("wal.group_size_p50".into(), gs.p50()));
            extra.push(("wal.group_size_p99".into(), gs.p99()));
        }
        if let Some(cw) = self.broker.wal_commit_wait() {
            extra.push(("wal.commit_wait_p50_nanos".into(), cw.p50()));
            extra.push(("wal.commit_wait_p99_nanos".into(), cw.p99()));
        }
        if let Some(store) = &self.snapshots {
            let s = store.stats();
            extra.push(("durability.snapshots_persisted".into(), s.persisted));
            extra.push(("durability.snapshots_interrupted".into(), s.interrupted));
        }
        snap.counters.extend(extra);
        snap.counters.sort();
        snap
    }

    /// The version-store snapshot store, when the durability plane is on
    /// (fault hooks and lifetime counters live there).
    pub fn snapshot_store(&self) -> Option<&SnapshotStore> {
        self.snapshots.as_ref()
    }

    /// Persists a [`NodeSnapshot`] of both version stores — including the
    /// bootstrap watermarks riding in the subscriber store — plus the
    /// broker's current WAL position. Returns the assigned sequence, or
    /// `Ok(0)` as a no-op when durability is off (mirroring
    /// [`Broker::checkpoint`]).
    pub fn persist_snapshot(&self) -> io::Result<u64> {
        let Some(store) = &self.snapshots else {
            return Ok(0);
        };
        let pub_entries = self
            .pub_store
            .dump()
            .map_err(|e| io::Error::other(format!("pub store dump failed: {e:?}")))?;
        let sub_entries = self
            .sub_store
            .dump()
            .map_err(|e| io::Error::other(format!("sub store dump failed: {e:?}")))?;
        let snapshot = NodeSnapshot {
            seq: 0, // assigned by the store
            wal_pos: self.broker.wal_position().unwrap_or_default(),
            pub_entries,
            sub_entries,
        };
        store.persist(&snapshot)
    }

    /// Driver-clocked snapshot cadence: persists a snapshot once the
    /// subscriber has processed `durability.snapshot_every` more messages
    /// since the last one. Message-count-based rather than wall-clock, so
    /// seeded runs snapshot at identical points (see DESIGN.md). Returns
    /// the persisted sequence, if one was taken; persist errors raise a
    /// counter and leave the marker unmoved, so the next call retries.
    pub fn maybe_snapshot(&self) -> Option<u64> {
        let every = self.config.durability.snapshot_every?;
        self.snapshots.as_ref()?;
        let processed = self.subscriber.stats().messages_processed;
        let marker = self.snapshot_marker.load(Ordering::Relaxed);
        if processed.saturating_sub(marker) < every.max(1) {
            return None;
        }
        match self.persist_snapshot() {
            Ok(seq) => {
                self.snapshot_marker.store(processed, Ordering::Relaxed);
                Some(seq)
            }
            Err(_) => {
                self.telemetry
                    .counters()
                    .counter("durability.snapshot_errors")
                    .bump();
                None
            }
        }
    }

    /// Aggregated pipeline counters for fault accounting.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            publisher: self.publisher.stats(),
            subscriber: self.subscriber.stats(),
            journaled: self.publisher.journal_len(),
            dead_lettered: self.broker.dead_letter_len(self.app()).unwrap_or(0),
            bootstraps: self.bootstraps.load(Ordering::Relaxed),
            bootstrap: self.bootstrap_stats(),
        }
    }

    /// Bootstrap state-machine phase and counters.
    pub fn bootstrap_stats(&self) -> BootstrapStats {
        BootstrapStats {
            phase: self.bootstrap.state.read().phase(),
            attempts: self.bootstrap.attempts.load(Ordering::Relaxed),
            completions: self.bootstraps.load(Ordering::Relaxed),
            retries: self.bootstrap.retries.load(Ordering::Relaxed),
            resumes: self.bootstrap.resumes.load(Ordering::Relaxed),
            chunks_copied: self.bootstrap.chunks_copied.load(Ordering::Relaxed),
            records_copied: self.bootstrap.records_copied.load(Ordering::Relaxed),
            // Reconciliation happens in two places: the copier's
            // watermark-window pre-filter (tallied here) and version-store
            // admission in the subscriber's copy path (tallied there);
            // fold both in so the stat means "copies the live stream won".
            records_reconciled: self
                .bootstrap
                .records_reconciled
                .load(Ordering::Relaxed)
                .saturating_add(self.subscriber.stats().copies_reconciled),
            copies_merged: self.bootstrap.copies_merged.load(Ordering::Relaxed),
            windows_timed_out: self.subscriber.watermark_gate().windows_timed_out(),
            cleanup_deferred: self.bootstrap.cleanup_deferred.load(Ordering::Relaxed),
        }
    }

    /// The current bootstrap state (rich variant, with model/chunk).
    pub fn bootstrap_state(&self) -> BootstrapState {
        self.bootstrap.state.read().clone()
    }

    /// Installs a probe called on every bootstrap state transition — the
    /// fault plane's bootstrap-phase hook: a test can kill a shard or
    /// restart the broker exactly when the copier enters a given chunk.
    pub fn set_bootstrap_probe(&self, probe: impl Fn(&BootstrapState) + Send + Sync + 'static) {
        *self.bootstrap.probe.write() = Some(Box::new(probe));
    }

    /// Removes the bootstrap transition probe.
    pub fn clear_bootstrap_probe(&self) {
        *self.bootstrap.probe.write() = None;
    }

    /// Arms the copy-failure fault hook: the next `n` chunk copies fail
    /// with a transient error before doing any work, exercising the
    /// copier's retry/resume path exactly as a flaky engine or store
    /// would (the chunk-level analogue of
    /// `Broker::inject_publish_failures`).
    pub fn inject_copy_failures(&self, n: u64) {
        self.bootstrap.copy_fail_next.fetch_add(n, Ordering::SeqCst);
    }

    /// Snapshot of this node's dead-letter store (consumed-but-unapplied
    /// deliveries, §6.5 hardening).
    pub fn dead_letters(&self) -> Vec<Delivery> {
        self.broker.dead_letters(self.app()).unwrap_or_default()
    }

    /// Whether this node's queue has been decommissioned (§4.4).
    pub fn is_decommissioned(&self) -> bool {
        self.broker.queue_state(self.app()) == Some(QueueState::Decommissioned)
    }

    /// Sets the bootstrap flag *before* starting the workers, then runs the
    /// three-step bootstrap — the ordering a fresh subscriber needs so that
    /// no backlog message is processed outside bootstrap mode (Fig. 2's
    /// `Synapse.bootstrap?` contract).
    pub fn start_and_bootstrap_from(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        self.orm.set_bootstrap(true);
        self.start();
        self.bootstrap_from(publisher)
    }

    /// Pause-free bootstrap from a publisher node (§4.4), rebuilt as
    /// DBLog-style watermark interleaving: each chunk is selected between
    /// a lo and a hi watermark marker injected into the live stream, rows
    /// the live stream touched inside that window are discarded in favor
    /// of the live messages, and the surviving copies are merged into the
    /// partitioned delivery queue behind the live traffic. There is no
    /// drain phase — delivery never pauses. Also used for *partial*
    /// bootstrap after a decommission or subscriber version-store loss —
    /// the queue is reinstated and the store revived first. Workers must
    /// already be running (or use
    /// [`SynapseNode::start_and_bootstrap_from`]); without workers the
    /// copier falls back to applying chunks synchronously, since nothing
    /// would consume the merged queue.
    ///
    /// Fault posture:
    /// - The ORM bootstrap flag is held by an RAII guard, so every exit
    ///   path — including transient-fault exhaustion mid-copy — leaves the
    ///   node writable.
    /// - Step 2 copies in chunks of `config.bootstrap_chunk_size` records,
    ///   committing a per-model watermark (last copied id) to the
    ///   subscriber version store after each chunk. A transient engine or
    ///   store fault retries the *chunk* under `config.retry` instead of
    ///   aborting the bootstrap; if the attempt still fails, the
    ///   watermarks survive and the next `bootstrap_from` resumes after
    ///   the last committed chunk — but only while the queue's discard
    ///   lineage shows the live stream stayed gap-free in between.
    /// - Concurrent writes are reconciled twice: the watermark window
    ///   pre-filters rows the live stream touched mid-chunk, and
    ///   version-store admission ([`VersionStore::admit_copy`]) refuses
    ///   any copy whose marker does not strictly beat the locally known
    ///   version — including destroy tombstones, so a row deleted
    ///   mid-chunk cannot be resurrected by its in-flight copy.
    pub fn bootstrap_from(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        let guard = BootstrapGuard::new(self);
        // The attempt counter doubles as the watermark session id: markers
        // from an abandoned attempt carry a stale session and are ignored
        // by the gate.
        let session = self.bootstrap.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        let reinstated = if self.is_decommissioned() {
            self.broker.reinstate_queue(self.app())
        } else {
            false
        };
        if self.sub_store.is_dead() {
            self.sub_store.revive();
        }
        // Committed copy watermarks are resume state, but only while the
        // live stream stayed gap-free since they were written: every
        // copied chunk relies on later live messages to carry the writes
        // it raced with. Any movement in the queue's cumulative loss
        // counters since the last attempt — a decommission sweeping the
        // backlog, injected drops — breaks that marker lineage and forces
        // the copy to restart. Refused publishes do NOT break lineage:
        // they stay in the publisher's journal and are republished. A
        // reinstate with no recorded floor (fresh process) is
        // conservatively treated as broken; a reinstate whose
        // decommission swept nothing keeps its watermarks.
        let lineage_now = self.lineage_signal();
        let lineage_broken = {
            let mut floor = self.bootstrap.lineage.lock();
            let broken = match (floor.as_ref(), lineage_now.as_ref()) {
                (Some(prev), Some(now)) => prev != now,
                _ => reinstated,
            };
            *floor = lineage_now;
            broken
        };
        if lineage_broken || self.bootstrap.watermarks_dirty.load(Ordering::SeqCst) {
            self.clear_bootstrap_watermarks(publisher)?;
            self.bootstrap
                .watermarks_dirty
                .store(false, Ordering::SeqCst);
        }

        // Step 1: bulk-load the publisher's current versions.
        self.bootstrap.transition(BootstrapState::Snapshot);
        let snapshot = self.retry_transient(|| {
            publisher
                .pub_store
                .snapshot()
                .map_err(|_| OrmError::Db(DbError::Unavailable))
        })?;
        self.retry_transient(|| {
            self.subscriber
                .load_version_snapshot(&snapshot)
                .map_err(|_| OrmError::Db(DbError::Unavailable))
        })?;

        // Step 2: watermark-interleaved chunked copy of all currently
        // published objects. The subscription/publication locks are held
        // only long enough to collect the matching pairs — not across the
        // paged reads and marshalling.
        let pairs: Vec<(String, Publication)> = {
            let subs = self.subscriptions.read();
            let pubs = publisher.publications.read();
            subs.iter()
                .filter(|s| s.from == publisher.app())
                .filter_map(|s| pubs.get(&s.model).map(|p| (s.model.clone(), p.clone())))
                .collect()
        };
        let workers_live = self.subscriber.workers_running();
        let gate = self.subscriber.watermark_gate().clone();
        let sub_baseline = self.subscriber.stats();
        if workers_live {
            gate.activate();
        }
        let copied = self.copy_models(publisher, &pairs, session, workers_live);
        if workers_live {
            gate.deactivate();
        }
        let merged = copied?;

        // Finalize: there is no drain pause. The merged copies ride the
        // partitioned queue behind live traffic; wait (bounded, without
        // stopping the workers) until the subscriber has accounted for
        // them, so a caller returning from bootstrap sees the copied rows.
        self.bootstrap.transition(BootstrapState::Finalizing);
        if merged > 0 {
            self.await_copy_convergence(merged, &sub_baseline);
        }
        // Watermarks are resume state for *failed* attempts only: a future
        // bootstrap must re-copy from the start (rows copied this time may
        // change again before then). A cleanup failure here must not fail
        // an otherwise-complete bootstrap — defer it: mark the watermarks
        // dirty so the next attempt clears them before trusting any
        // resume state, and go Live.
        if self.clear_bootstrap_watermarks(publisher).is_err() {
            self.bootstrap
                .cleanup_deferred
                .fetch_add(1, Ordering::Relaxed);
            self.bootstrap
                .watermarks_dirty
                .store(true, Ordering::SeqCst);
            self.telemetry
                .counters()
                .counter("bootstrap.cleanup_deferred")
                .bump();
        }
        *self.bootstrap.lineage.lock() = self.lineage_signal();
        guard.complete();
        self.bootstrap.transition(BootstrapState::Live);
        self.bootstraps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Step 2 driver: copies every non-ephemeral pair in
    /// watermark-interleaved chunks, resuming each model from any
    /// surviving watermark. Returns how many copies were merged into the
    /// delivery queue (zero on the synchronous no-worker path).
    fn copy_models(
        &self,
        publisher: &SynapseNode,
        pairs: &[(String, Publication)],
        session: u64,
        workers_live: bool,
    ) -> Result<u64, OrmError> {
        let mut merged = 0u64;
        // Gate windows are numbered across models so every (session,
        // window) pair in this attempt is unique.
        let mut window = 0u64;
        for (model, publication) in pairs {
            if publication.ephemeral {
                continue;
            }
            let wm_key = self
                .config
                .dep_space
                .key(&DepName::bootstrap_watermark(publisher.app(), model));
            let mut after = self.retry_transient(|| {
                self.sub_store
                    .latest_version(wm_key)
                    .map_err(|_| OrmError::Db(DbError::Unavailable))
            })?;
            if after > 0 {
                self.bootstrap.resumes.fetch_add(1, Ordering::Relaxed);
            }
            let mut chunk = 0u64;
            loop {
                self.bootstrap.transition(BootstrapState::Copying {
                    model: model.clone(),
                    chunk,
                });
                let copied = self.retry_transient(|| {
                    self.copy_chunk(
                        publisher,
                        model,
                        publication,
                        wm_key,
                        after,
                        session,
                        window,
                        chunk,
                        workers_live,
                    )
                })?;
                window += 1;
                match copied {
                    Some(outcome) => {
                        after = outcome.last;
                        merged += outcome.merged;
                        chunk += 1;
                        self.bootstrap.chunks_copied.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        Ok(merged)
    }

    /// Bounded, delivery-neutral wait for the subscriber to account for
    /// `merged` chunk copies enqueued this attempt — applied, reconciled
    /// away, or dead-lettered — measured as counter deltas against
    /// `baseline`. Only the bootstrap caller blocks; the workers keep
    /// draining live traffic the whole time. On deadline the node still
    /// goes Live: the copies are durably enqueued and version-store
    /// admission makes late application safe at any point.
    fn await_copy_convergence(&self, merged: u64, baseline: &SubscriberStats) {
        let deadline = Instant::now() + FINALIZE_SETTLE_TIMEOUT;
        let mut pause = Duration::from_micros(50);
        loop {
            let now = self.subscriber.stats();
            let accounted = now
                .copies_applied
                .saturating_sub(baseline.copies_applied)
                .saturating_add(
                    now.copies_reconciled
                        .saturating_sub(baseline.copies_reconciled),
                )
                .saturating_add(now.dead_lettered.saturating_sub(baseline.dead_lettered));
            if accounted >= merged {
                return;
            }
            if Instant::now() >= deadline {
                self.telemetry
                    .counters()
                    .counter("bootstrap.finalize_timeouts")
                    .bump();
                return;
            }
            std::thread::sleep(pause);
            pause = (pause * 2).min(Duration::from_millis(5));
        }
    }

    /// Copies the next chunk of `model` after id `after`, interleaved with
    /// the live stream under a DBLog-style watermark window. Returns the
    /// committed [`ChunkCopy`], or `None` when the table is exhausted.
    ///
    /// The sequence per chunk: open a gate window and inject the lo
    /// marker into every partition of the live queue, select the chunk,
    /// inject the hi marker, wait (bounded) for the window, then drop
    /// every selected row the live stream wrote to inside the window —
    /// those rows' current state is already in flight as live messages.
    /// Survivors are encoded as real [`WriteMessage`]s and merged into the
    /// partitioned queue, key-routed so each copy lands in the same
    /// partition (and therefore behind) the live traffic for its object.
    ///
    /// Each record's publisher-side ops count is captured *before* the row
    /// is re-read for marshalling, and the carried marker is `ops - 1` —
    /// the same write-dependency convention live messages use. The marker
    /// is therefore never newer than the copied data: a concurrent write
    /// lands with a strictly higher version and overwrites the copy, while
    /// a copy racing behind the live stream loses version-store admission
    /// (ties included — see [`VersionStore::admit_copy`]) and is
    /// discarded. Capturing the marker after reading the row would allow
    /// the fatal inverse: stale data carrying a marker that beats a newer
    /// live write, regressing the replica permanently.
    #[allow(clippy::too_many_arguments)]
    fn copy_chunk(
        &self,
        publisher: &SynapseNode,
        model: &str,
        publication: &Publication,
        wm_key: DepKey,
        after: u64,
        session: u64,
        window: u64,
        chunk: u64,
        workers_live: bool,
    ) -> Result<Option<ChunkCopy>, OrmError> {
        // Armed copy-failure hook: fail before any work, as a flaky
        // engine mid-chunk would.
        if self
            .bootstrap
            .copy_fail_next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(OrmError::Db(DbError::Unavailable));
        }
        // A partially-dead subscriber store can neither admit this chunk's
        // copies nor keep a trustworthy resume watermark (§4.2: a partial
        // store has no complete dependency picture), so fail the chunk
        // transiently — the retry policy absorbs a racing revive, and a
        // failed attempt's re-entry revives the store itself.
        if self.sub_store.is_dead() {
            return Err(OrmError::Db(DbError::Unavailable));
        }
        let chunk_size = self.config.bootstrap_chunk_size.max(1);
        let gate = self.subscriber.watermark_gate();
        // Interleave only while workers consume the queue: markers and
        // merged copies ride the delivery plane, and with no workers
        // nothing would ever drain them. The gate window must exist
        // *before* the lo marker is published, or a fast worker would
        // observe the marker against a stale window and drop it.
        let mut interleave = false;
        if workers_live {
            let partitions = self.broker.queue_partitions(self.app()).unwrap_or(1);
            gate.begin_chunk(session, window, partitions);
            interleave = self
                .broker
                .publish_watermark(self.app(), session, window, false)
                > 0;
        }
        let page = publisher.orm.all_after(model, Id(after), chunk_size)?;
        let last = match page.last() {
            Some(record) => record.id.raw(),
            None => {
                if interleave {
                    // Close the empty window so its lo markers don't
                    // dangle unmatched in the stream.
                    self.broker
                        .publish_watermark(self.app(), session, window, true);
                }
                return Ok(None);
            }
        };
        let mut batch: Vec<(DepKey, u64, Option<VersionVector>, Record)> =
            Vec::with_capacity(page.len());
        for record in &page {
            let key =
                publisher
                    .config
                    .dep_space
                    .key(&DepName::object(publisher.app(), model, record.id));
            let ops = publisher
                .pub_store
                .ops(key)
                .map_err(|_| OrmError::Db(DbError::Unavailable))?;
            let marker = ops.saturating_sub(1);
            // Bidirectional copies carry the publisher's full version
            // vector (captured before the re-read, like the marker):
            // scalar markers on the legacy floor could wrongly dominate a
            // remote writer's component, so admission must compare the
            // real vector instead. The vector lives under the
            // writer-independent mesh key in the publisher's sub store —
            // the entry its own stamps and every remote writer's applied
            // writes fold into.
            let vector = if publication.bidirectional {
                let mesh = publisher
                    .config
                    .dep_space
                    .key(&crate::deps::mesh_object(model, record.id));
                Some(
                    publisher
                        .sub_store
                        .latest_vector(mesh)
                        .map_err(|_| OrmError::Db(DbError::Unavailable))?,
                )
            } else {
                None
            };
            // Re-read the row now that its marker floor is pinned; a row
            // deleted meanwhile is skipped (its destroy message is in the
            // live stream, and the tombstone it leaves in the version
            // store refuses any copy of this row from a *later* chunk).
            let Some(fresh) = publisher.orm.find(model, record.id)? else {
                continue;
            };
            // Marshal through the publisher so only published (and
            // virtual) attributes cross, exactly as live updates do.
            let marshalled =
                publisher
                    .publisher
                    .marshal_for_bootstrap(&publisher.orm, publication, &fresh);
            batch.push((key, marker, vector, marshalled));
        }
        let mut merged = 0u64;
        if interleave {
            self.broker
                .publish_watermark(self.app(), session, window, true);
            self.bootstrap.transition(BootstrapState::Reconciling {
                model: model.to_owned(),
                chunk,
            });
            // The window wait is an optimization, not a correctness gate:
            // on timeout the un-filtered copies still face version-store
            // admission, which refuses anything the live stream beat.
            let _ = gate.await_window(session, window, self.config.bootstrap_window_timeout);
            let touched = gate.take_touched();
            if !touched.is_empty() {
                let before = batch.len();
                batch.retain(|(key, _, _, _)| !touched.contains(key));
                self.bootstrap
                    .records_reconciled
                    .fetch_add((before - batch.len()) as u64, Ordering::Relaxed);
            }
            if !batch.is_empty() {
                let origin = mono_nanos();
                let mut payloads = Vec::with_capacity(batch.len());
                for (key, marker, vector, record) in &batch {
                    let op = Operation::from_record("create", record);
                    let mut dependencies = BTreeMap::new();
                    dependencies.insert(*key, *marker);
                    let mut vectors = BTreeMap::new();
                    if let Some(v) = vector {
                        let mesh = publisher
                            .config
                            .dep_space
                            .key(&crate::deps::mesh_object(model, record.id));
                        vectors.insert(mesh, v.clone());
                    }
                    let msg = WriteMessage {
                        app: publisher.app().to_owned(),
                        operations: vec![op],
                        dependencies,
                        published_at: 0,
                        generation: 1,
                        vectors,
                    };
                    payloads.push((SharedStr::from(msg.encode().as_str()), origin, *key));
                }
                let want = payloads.len();
                let sent = self
                    .broker
                    .publish_to_queue(self.app(), BOOTSTRAP_EXCHANGE, payloads);
                if sent != want {
                    // Short count: the WAL refused the frame or the queue
                    // vanished. The watermark was not committed, so the
                    // retry re-selects and re-reconciles this chunk;
                    // duplicates of the copies that did land are refused
                    // by admission.
                    return Err(OrmError::Db(DbError::Unavailable));
                }
                merged = want as u64;
                self.bootstrap
                    .copies_merged
                    .fetch_add(merged, Ordering::Relaxed);
                self.bootstrap
                    .records_copied
                    .fetch_add(merged, Ordering::Relaxed);
            }
        } else {
            // Synchronous fallback: no workers, so apply each survivor
            // directly through the subscriber's copy-admission path.
            for (_, marker, vector, record) in &batch {
                let applied = self
                    .subscriber
                    .apply_copy_record(publisher.app(), record, *marker, vector.clone())
                    .map_err(|e| match e {
                        ProcessError::Transient(_) => OrmError::Db(DbError::Unavailable),
                        ProcessError::Poison(msg) => OrmError::Restriction(msg),
                    })?;
                // A refusal is counted by the subscriber's
                // `copies_reconciled` (bootstrap_stats folds it in), so
                // only admissions are tallied here.
                if applied {
                    self.bootstrap
                        .records_copied
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.sub_store
            .load_watermark(wm_key, last)
            .map_err(|_| OrmError::Db(DbError::Unavailable))?;
        Ok(Some(ChunkCopy { last, merged }))
    }

    /// Drops the per-model bootstrap watermarks for `publisher`'s models.
    fn clear_bootstrap_watermarks(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        let models: Vec<String> = self
            .subscriptions
            .read()
            .iter()
            .filter(|s| s.from == publisher.app())
            .map(|s| s.model.clone())
            .collect();
        for model in models {
            let key = self
                .config
                .dep_space
                .key(&DepName::bootstrap_watermark(publisher.app(), &model));
            self.retry_transient(|| {
                self.sub_store
                    .clear_watermark(key)
                    .map_err(|_| OrmError::Db(DbError::Unavailable))
            })?;
        }
        Ok(())
    }

    /// Runs one bootstrap step, retrying transient failures (dead store,
    /// unavailable engine) under the node's [`RetryPolicy`] with its
    /// deterministic backoff; deterministic errors fail immediately.
    ///
    /// [`RetryPolicy`]: crate::config::RetryPolicy
    /// The subset of the queue's cumulative counters whose movement means
    /// real live-stream loss: `(discarded, dropped)`. Refused publishes
    /// are excluded — the publisher journal republishes them.
    fn lineage_signal(&self) -> Option<(u64, u64)> {
        self.broker
            .queue_discard_stats(self.app())
            .map(|(discarded, _refused, dropped)| (discarded, dropped))
    }

    fn retry_transient<T>(
        &self,
        mut step: impl FnMut() -> Result<T, OrmError>,
    ) -> Result<T, OrmError> {
        let mut failures = 0u32;
        loop {
            match step() {
                Ok(v) => return Ok(v),
                Err(e @ OrmError::Db(DbError::Unavailable)) => {
                    failures += 1;
                    if self.config.retry.exhausted(failures) {
                        return Err(e);
                    }
                    self.bootstrap.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.config.retry.backoff(failures));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The deployment harness: a shared broker and a set of nodes, with static
/// cross-service checks (§4.5).
#[derive(Default)]
pub struct Ecosystem {
    broker: Broker,
    nodes: RwLock<BTreeMap<String, Arc<SynapseNode>>>,
}

impl Ecosystem {
    /// Creates an empty ecosystem with its own broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an ecosystem whose broker logs to a durable WAL rooted at
    /// `cfg.dir`, replaying any existing log first — the restart entry
    /// point of the durability plane. Returns the recovery report so
    /// callers can assert exactly what the restart recovered.
    pub fn new_durable(cfg: WalConfig) -> io::Result<(Ecosystem, RecoveryReport)> {
        let (broker, report) = Broker::open_durable(cfg)?;
        Ok((Ecosystem::with_broker(broker), report))
    }

    /// Creates an ecosystem around an existing broker (one opened durable
    /// by the caller, or shared with another harness).
    pub fn with_broker(broker: Broker) -> Ecosystem {
        Ecosystem {
            broker,
            nodes: RwLock::new(BTreeMap::new()),
        }
    }

    /// The shared broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Creates and registers a node.
    pub fn add_node(&self, config: SynapseConfig, adapter: Arc<dyn Adapter>) -> Arc<SynapseNode> {
        let node = SynapseNode::new(config, adapter, self.broker.clone());
        self.nodes
            .write()
            .insert(node.app().to_owned(), node.clone());
        node
    }

    /// Looks up a node by app name.
    pub fn node(&self, app: &str) -> Option<Arc<SynapseNode>> {
        self.nodes.read().get(app).cloned()
    }

    /// Propagates publisher delivery modes to subscribers and runs the
    /// static checks; returns the list of violations (empty = ok).
    ///
    /// This is the paper's static checking: "Synapse statically checks that
    /// subscribers don't attempt to subscribe to models and attributes that
    /// are unpublished, providing warnings immediately" (§4.5).
    pub fn connect(&self) -> Vec<String> {
        let nodes = self.nodes.read();
        let mut violations = Vec::new();
        for node in nodes.values() {
            for sub in node.subscriptions() {
                match nodes.get(&sub.from) {
                    None => violations.push(format!(
                        "{}: subscribes to {} from unknown app {}",
                        node.app(),
                        sub.model,
                        sub.from
                    )),
                    Some(publisher) => {
                        node.set_publisher_mode(
                            sub.from.clone().as_str(),
                            publisher.config().publisher_mode,
                        );
                        let pubs = publisher.publications();
                        match pubs.iter().find(|p| p.model == sub.model) {
                            None => violations.push(format!(
                                "{}: subscribes to unpublished model {}/{}",
                                node.app(),
                                sub.from,
                                sub.model
                            )),
                            Some(publication) => {
                                for f in &sub.fields {
                                    if !publication.fields.contains(f) {
                                        violations.push(format!(
                                            "{}: subscribes to unpublished attribute {}/{}.{}",
                                            node.app(),
                                            sub.from,
                                            sub.model,
                                            f
                                        ));
                                    }
                                }
                                // Multi-writer mesh consistency: a
                                // bidirectional subscription only works
                                // against a publication that stamps its
                                // writes with version vectors, and vice
                                // versa — a mismatch silently degrades to
                                // last-apply-wins on one side.
                                if sub.bidirectional && !publication.bidirectional {
                                    violations.push(format!(
                                        "{}: bidirectional subscription to {}/{} but the publication is not bidirectional",
                                        node.app(),
                                        sub.from,
                                        sub.model
                                    ));
                                }
                                if publication.bidirectional && !sub.bidirectional {
                                    violations.push(format!(
                                        "{}: subscription to bidirectional {}/{} must itself be bidirectional",
                                        node.app(),
                                        sub.from,
                                        sub.model
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        violations
    }

    /// Starts every node's subscriber workers.
    pub fn start_all(&self) {
        for node in self.nodes.read().values() {
            node.start();
        }
    }

    /// Stops every node's subscriber workers.
    pub fn stop_all(&self) {
        for node in self.nodes.read().values() {
            node.stop();
        }
    }
}
